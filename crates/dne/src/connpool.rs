//! Elastic RC connection pooling with shadow-QP activation.
//!
//! §3.3: connection setup costs tens of milliseconds, so the DNE maintains
//! a pool of pre-established connections per `(tenant, peer node)` pair.
//! Following RoGUE's "shadow QP" mechanism, pooled QPs are *active* only
//! while they have work queued; inactive QPs consume no RNIC cache, so the
//! node only has to bound the number of simultaneously active QPs to avoid
//! cache thrashing.
//!
//! Under elastic multi-tenancy (Swift: the control plane, not the data
//! plane, is what collapses) the pool additionally:
//!
//! - keeps O(1) activation bookkeeping per pick — membership lives on the
//!   connection's metadata (`active_slot`), and reaping swap-removes from
//!   the active set, so pick cost never grows with the active population;
//! - deduplicates handles on insert: the same QP registered under two
//!   `(tenant, peer)` keys would otherwise be visited twice by audits and
//!   double-counted by the deactivation counters;
//! - bounds the active set (`ElasticConfig::active_capacity`) with LRU
//!   eviction of drained connections, modeling an RNIC QP cache that the
//!   engine refuses to thrash;
//! - lazily tears down connections idle past an age threshold
//!   (`ElasticConfig::idle_teardown_age`), releasing fabric state instead
//!   of holding a million tenants' QPs forever.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

use membuf::tenant::TenantId;
use rdma_sim::fabric::QpHandle;
use rdma_sim::{Fabric, NodeId};
use simcore::{SimDuration, SimTime};

/// Elastic lifecycle knobs for a [`ConnPool`]. The defaults (`0`/`None`)
/// reproduce the pre-elastic behavior exactly: unbounded active set, no
/// teardown.
#[derive(Debug, Clone, Copy, Default)]
pub struct ElasticConfig {
    /// Maximum simultaneously active (cache-charged) QPs; `0` = unbounded.
    /// When an activation would exceed the bound, the least-recently-used
    /// *drained* active QP is returned to shadow state (an eviction). Busy
    /// QPs are never evicted, so the bound can be transiently overshot
    /// rather than strand an in-flight send.
    pub active_capacity: usize,
    /// Tear down pooled connections that have sat in shadow state longer
    /// than this (`None` = keep forever). Teardown destroys the QP pair in
    /// the fabric — the next use pays a claim or a cold connect.
    pub idle_teardown_age: Option<SimDuration>,
    /// Adaptive teardown (`None` = off, the default): when the eviction
    /// rate between two teardown sweeps spikes, the effective teardown age
    /// shrinks for that sweep, shedding cold fabric state faster while the
    /// RNIC cache is thrashing. Purely a function of the pool's own
    /// deterministic counters — same workload, same shrink decisions.
    pub adaptive: Option<AdaptiveTeardown>,
}

/// Knobs for eviction-rate-adaptive idle teardown.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveTeardown {
    /// Evictions observed since the previous teardown sweep at or above
    /// which the pool treats the active set as thrashing.
    pub eviction_spike: u64,
    /// Divisor applied to `idle_teardown_age` while spiking (clamped to
    /// at least 1).
    pub shrink_factor: u64,
}

impl Default for AdaptiveTeardown {
    fn default() -> Self {
        AdaptiveTeardown {
            eviction_spike: 8,
            shrink_factor: 4,
        }
    }
}

/// Per-connection metadata: the activation slot (O(1) membership — bugfix
/// for the old per-pick linear `active.contains` scan) and recency marks
/// for LRU eviction and idle-age teardown.
#[derive(Debug, Clone, Copy)]
struct ConnMeta<K> {
    key: (K, NodeId),
    /// Index into the active vec while activated; `None` in shadow state.
    active_slot: Option<usize>,
    /// Last pick (or drain) instant — the idle-age clock.
    last_used: SimTime,
    /// Monotone pick counter — the LRU ordering key (strictly increasing,
    /// so eviction order is deterministic even within one instant).
    last_tick: u64,
}

/// A pool of established RC connections keyed by `(tenant, peer node)`.
///
/// Generic over the tenant key so the million-tenant churn model (whose
/// population exceeds the engine's on-wire `u16` tenant ids) can reuse the
/// exact same machinery with a wider key; the engine uses the default.
#[derive(Debug, Default)]
pub struct ConnPool<K: Copy + Eq + Hash + Ord = TenantId> {
    conns: HashMap<(K, NodeId), Vec<QpHandle>>,
    /// Pool-wide per-connection metadata; also the dedupe set for `add`.
    meta: RefCell<HashMap<QpHandle, ConnMeta<K>>>,
    /// QPs this pool has activated and not yet reaped. Unordered (reaping
    /// swap-removes); each entry's position is mirrored in its meta slot.
    active: RefCell<Vec<QpHandle>>,
    /// Shadow-state recency queue for idle-age teardown: `(idle-since,
    /// handle)` appended on add and on every deactivation. Entries are
    /// validated lazily against `meta.last_used` when popped, so a QP
    /// re-used after going idle just leaves a stale entry behind.
    idle_queue: RefCell<VecDeque<(SimTime, QpHandle)>>,
    /// Monotone pick counter backing the LRU marks.
    tick: Cell<u64>,
    /// Picks that found the chosen QP already active (no RNIC-cache charge).
    hits: Cell<u64>,
    /// Picks that had to activate a shadow QP (a potential cache thrash).
    misses: Cell<u64>,
    /// Shadow QPs this pool transitioned to active.
    activations: Cell<u64>,
    /// Idle QPs returned to shadow state by the completion reaper or an
    /// LRU eviction. Counts only pool-tracked activations, so
    /// `deactivations <= activations` always holds.
    deactivations: Cell<u64>,
    /// QPs deactivated by the full-sweep audit that the pool never
    /// activated itself (direct fabric access behind the pool's back).
    untracked_reaps: Cell<u64>,
    /// Active QPs demoted to shadow state by the capacity bound.
    evictions: Cell<u64>,
    /// Connections destroyed by idle-age teardown.
    teardowns: Cell<u64>,
    /// Eviction counter snapshot at the previous teardown sweep — the
    /// baseline for the adaptive eviction-rate window.
    evictions_at_sweep: Cell<u64>,
    /// Teardown sweeps that ran with the adaptively shrunk age.
    adaptive_shrinks: Cell<u64>,
    /// Membership probes performed across all picks. Each pick does exactly
    /// one O(1) probe; the pre-fix code scanned the whole active set, so
    /// this counter is the regression guard for the quadratic-pick bug.
    membership_probes: Cell<u64>,
    /// Per-tenant `(hits, misses)` split of the pick counters.
    per_tenant: RefCell<HashMap<K, (u64, u64)>>,
    cfg: ElasticConfig,
}

impl<K: Copy + Eq + Hash + Ord> ConnPool<K> {
    /// Creates an empty pool with pre-elastic defaults (unbounded active
    /// set, no teardown).
    pub fn new() -> Self {
        ConnPool {
            conns: HashMap::new(),
            meta: RefCell::new(HashMap::new()),
            active: RefCell::new(Vec::new()),
            idle_queue: RefCell::new(VecDeque::new()),
            tick: Cell::new(0),
            hits: Cell::new(0),
            misses: Cell::new(0),
            activations: Cell::new(0),
            deactivations: Cell::new(0),
            untracked_reaps: Cell::new(0),
            evictions: Cell::new(0),
            teardowns: Cell::new(0),
            evictions_at_sweep: Cell::new(0),
            adaptive_shrinks: Cell::new(0),
            membership_probes: Cell::new(0),
            per_tenant: RefCell::new(HashMap::new()),
            cfg: ElasticConfig::default(),
        }
    }

    /// Creates an empty pool with the given elastic lifecycle config.
    pub fn with_config(cfg: ElasticConfig) -> Self {
        let mut pool = ConnPool::new();
        pool.cfg = cfg;
        pool
    }

    /// Replaces the elastic lifecycle config.
    pub fn set_config(&mut self, cfg: ElasticConfig) {
        self.cfg = cfg;
    }

    /// Returns the elastic lifecycle config in force.
    pub fn config(&self) -> ElasticConfig {
        self.cfg
    }

    /// Adds an established connection for `(tenant, peer)`, idle as of
    /// `now` (a never-picked connection ages toward teardown from its add
    /// instant).
    ///
    /// A handle already pooled — under this key or any other — is rejected
    /// (returns `false`): one QP endpoint has exactly one owner, and
    /// duplicates would make the full-sweep audit visit it twice and
    /// double-count deactivations.
    pub fn add(&mut self, tenant: K, peer: NodeId, qp: QpHandle, now: SimTime) -> bool {
        let mut meta = self.meta.borrow_mut();
        if meta.contains_key(&qp) {
            return false;
        }
        meta.insert(
            qp,
            ConnMeta {
                key: (tenant, peer),
                active_slot: None,
                last_used: now,
                last_tick: 0,
            },
        );
        drop(meta);
        self.conns.entry((tenant, peer)).or_default().push(qp);
        self.idle_queue.borrow_mut().push_back((now, qp));
        true
    }

    /// Returns the connections for `(tenant, peer)`.
    pub fn conns(&self, tenant: K, peer: NodeId) -> &[QpHandle] {
        self.conns
            .get(&(tenant, peer))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Returns the number of pooled connections for `(tenant, peer)`.
    pub fn count(&self, tenant: K, peer: NodeId) -> usize {
        self.conns(tenant, peer).len()
    }

    /// Returns the total number of pooled connections.
    pub fn pooled_total(&self) -> usize {
        self.meta.borrow().len()
    }

    /// Returns the number of QPs this pool currently tracks as active.
    pub fn active_total(&self) -> usize {
        self.active.borrow().len()
    }

    /// Returns `true` when `qp` is pooled under any key.
    pub fn contains(&self, qp: QpHandle) -> bool {
        self.meta.borrow().contains_key(&qp)
    }

    /// Picks the least-congested ready connection (smallest SQ backlog) and
    /// marks it active.
    ///
    /// Returns `None` when no connection to the peer is ready yet.
    pub fn pick_least_congested(
        &self,
        fabric: &Fabric,
        now: SimTime,
        tenant: K,
        peer: NodeId,
    ) -> Option<QpHandle> {
        self.pick_least_congested_excluding(fabric, now, tenant, peer, None)
    }

    /// Like [`ConnPool::pick_least_congested`] but avoids `avoid` — the
    /// shadow-QP failover path: a retry should ride a different connection
    /// than the one whose send just failed. Falls back to `avoid` when it is
    /// the only ready connection left.
    pub fn pick_least_congested_excluding(
        &self,
        fabric: &Fabric,
        now: SimTime,
        tenant: K,
        peer: NodeId,
        avoid: Option<rdma_sim::QpId>,
    ) -> Option<QpHandle> {
        let list = self.conns(tenant, peer);
        let best = list
            .iter()
            .filter(|&&qp| fabric.qp_ready(qp) && Some(qp.qp) != avoid)
            .min_by_key(|&&qp| fabric.sq_depth(qp))
            .copied()
            .or_else(|| {
                list.iter()
                    .find(|&&qp| Some(qp.qp) == avoid && fabric.qp_ready(qp))
                    .copied()
            })?;
        let mut per_tenant = self.per_tenant.borrow_mut();
        let entry = per_tenant.entry(tenant).or_insert((0, 0));
        if fabric.qp_is_active(best) {
            self.hits.set(self.hits.get() + 1);
            entry.0 += 1;
        } else {
            self.misses.set(self.misses.get() + 1);
            entry.1 += 1;
        }
        drop(per_tenant);
        // Activation is what charges the QP against the RNIC cache.
        let _ = fabric.set_qp_active(best, true);
        self.touch_active(fabric, now, best);
        Some(best)
    }

    /// Tracks `best` as active, refreshing its recency marks. One O(1)
    /// metadata probe per pick — never a scan of the active set.
    fn touch_active(&self, fabric: &Fabric, now: SimTime, best: QpHandle) {
        let tick = self.tick.get() + 1;
        self.tick.set(tick);
        self.membership_probes.set(self.membership_probes.get() + 1);
        let mut meta = self.meta.borrow_mut();
        let Some(m) = meta.get_mut(&best) else {
            return; // picked from a list the pool no longer tracks
        };
        m.last_used = now;
        m.last_tick = tick;
        if m.active_slot.is_some() {
            return;
        }
        let mut active = self.active.borrow_mut();
        m.active_slot = Some(active.len());
        active.push(best);
        self.activations.set(self.activations.get() + 1);
        let cap = self.cfg.active_capacity;
        if cap > 0 && active.len() > cap {
            self.evict_lru(fabric, now, &mut meta, &mut active, best);
        }
    }

    /// Returns the least-recently-used *drained* active QP to shadow state.
    /// Scans the active set (bounded by `active_capacity + 1`), skipping
    /// busy QPs and the just-activated one — eviction never strands an
    /// in-flight send.
    fn evict_lru(
        &self,
        fabric: &Fabric,
        now: SimTime,
        meta: &mut HashMap<QpHandle, ConnMeta<K>>,
        active: &mut Vec<QpHandle>,
        keep: QpHandle,
    ) {
        let victim = active
            .iter()
            .filter(|&&qp| qp != keep && fabric.sq_depth(qp) == 0)
            .min_by_key(|&&qp| meta.get(&qp).map(|m| m.last_tick).unwrap_or(0))
            .copied();
        let Some(victim) = victim else {
            return; // every other active QP is busy: overshoot the bound
        };
        let slot = meta
            .get(&victim)
            .and_then(|m| m.active_slot)
            .expect("victim came from the active set");
        Self::swap_remove_active(meta, active, slot);
        let _ = fabric.set_qp_active(victim, false);
        if let Some(m) = meta.get_mut(&victim) {
            m.active_slot = None;
            m.last_used = now;
        }
        self.idle_queue.borrow_mut().push_back((now, victim));
        self.evictions.set(self.evictions.get() + 1);
        self.deactivations.set(self.deactivations.get() + 1);
    }

    /// Swap-removes `slot` from the active vec, fixing the moved entry's
    /// mirrored slot index.
    fn swap_remove_active(
        meta: &mut HashMap<QpHandle, ConnMeta<K>>,
        active: &mut Vec<QpHandle>,
        slot: usize,
    ) {
        active.swap_remove(slot);
        if let Some(&moved) = active.get(slot) {
            if let Some(m) = meta.get_mut(&moved) {
                m.active_slot = Some(slot);
            }
        }
    }

    /// Returns `(hits, misses)`: picks that found the chosen QP already
    /// active vs. picks that had to activate one. A low hit rate under load
    /// signals shadow-QP churn (QP-cache thrash).
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// Returns how many shadow QPs this pool has transitioned to active.
    pub fn activations(&self) -> u64 {
        self.activations.get()
    }

    /// Returns how many pool-activated QPs have been returned to shadow
    /// state (reaped idle or LRU-evicted). Never exceeds
    /// [`ConnPool::activations`].
    pub fn deactivations(&self) -> u64 {
        self.deactivations.get()
    }

    /// Returns how many active-but-untracked QPs the full-sweep audit has
    /// deactivated (connections activated behind the pool's back).
    pub fn untracked_reaps(&self) -> u64 {
        self.untracked_reaps.get()
    }

    /// Returns how many activations were demoted by the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Returns how many connections idle-age teardown has destroyed.
    pub fn teardowns(&self) -> u64 {
        self.teardowns.get()
    }

    /// Returns how many teardown sweeps ran with the adaptively shrunk
    /// age (eviction-rate spike detected). Always `0` with
    /// [`ElasticConfig::adaptive`] unset.
    pub fn adaptive_shrinks(&self) -> u64 {
        self.adaptive_shrinks.get()
    }

    /// Returns how many O(1) membership probes picks have performed —
    /// exactly one per successful pick. The pre-fix implementation scanned
    /// the whole active set per pick instead.
    pub fn membership_probes(&self) -> u64 {
        self.membership_probes.get()
    }

    /// Returns `(hits, misses)` for one tenant's picks.
    pub fn hit_miss_of(&self, tenant: K) -> (u64, u64) {
        self.per_tenant
            .borrow()
            .get(&tenant)
            .copied()
            .unwrap_or((0, 0))
    }

    /// Deactivates every active QP whose send queue has drained, returning
    /// how many were deactivated. The DNE calls this when reaping send
    /// completions; the sweep walks only the tracked active set, not every
    /// pooled QP of every tenant.
    pub fn deactivate_idle(&self, fabric: &Fabric, now: SimTime) -> usize {
        let mut meta = self.meta.borrow_mut();
        let mut active = self.active.borrow_mut();
        let mut idle_queue = self.idle_queue.borrow_mut();
        let mut deactivated = 0;
        let mut slot = 0;
        while slot < active.len() {
            let qp = active[slot];
            if !fabric.qp_is_active(qp) {
                // Deactivated behind our back (e.g. an injected QP error
                // released the cache charge): untrack without counting.
                Self::swap_remove_active(&mut meta, &mut active, slot);
                if let Some(m) = meta.get_mut(&qp) {
                    m.active_slot = None;
                    m.last_used = now;
                }
                idle_queue.push_back((now, qp));
                continue;
            }
            if fabric.sq_depth(qp) == 0 {
                let _ = fabric.set_qp_active(qp, false);
                Self::swap_remove_active(&mut meta, &mut active, slot);
                if let Some(m) = meta.get_mut(&qp) {
                    m.active_slot = None;
                    m.last_used = now;
                }
                idle_queue.push_back((now, qp));
                deactivated += 1;
                continue;
            }
            slot += 1;
        }
        if deactivated > 0 {
            self.deactivations
                .set(self.deactivations.get() + deactivated as u64);
        }
        deactivated
    }

    /// Full-sweep reap: deactivates every drained active QP in the pool,
    /// tracked or not. Unlike [`ConnPool::deactivate_idle`] this walks
    /// every pooled QP, catching connections activated behind the pool's
    /// back (a tenant abusing direct fabric access); the DNE runs it as a
    /// periodic audit rather than on every completion. Untracked reaps are
    /// counted separately from deactivations — the pool never activated
    /// them, so counting them together would break the
    /// `deactivations <= activations` invariant.
    pub fn reap_all_idle(&self, fabric: &Fabric, now: SimTime) -> usize {
        let tracked = self.deactivate_idle(fabric, now);
        let mut untracked = 0;
        for qp in self.conns.values().flatten() {
            if fabric.qp_is_active(*qp) && fabric.sq_depth(*qp) == 0 {
                let _ = fabric.set_qp_active(*qp, false);
                untracked += 1;
            }
        }
        if untracked > 0 {
            self.untracked_reaps
                .set(self.untracked_reaps.get() + untracked as u64);
        }
        tracked + untracked
    }

    /// Lazy teardown: destroys pooled connections that have sat in shadow
    /// state past `ElasticConfig::idle_teardown_age`, releasing their
    /// fabric QP state. Amortized O(expired): the idle queue is consumed
    /// front-first and entries stale-checked against the connection's
    /// recency mark, so re-used QPs cost one pop, not a sweep. Returns how
    /// many connections were destroyed.
    pub fn teardown_idle(&mut self, fabric: &Fabric, now: SimTime) -> usize {
        let Some(age) = self.cfg.idle_teardown_age else {
            return 0;
        };
        // Adaptive shrink: a burst of LRU evictions since the last sweep
        // means the active bound is thrashing — shed shadow state faster
        // this sweep so cold connections stop crowding the pool.
        let age = match self.cfg.adaptive {
            Some(ad) => {
                let delta = self.evictions.get() - self.evictions_at_sweep.get();
                self.evictions_at_sweep.set(self.evictions.get());
                if delta >= ad.eviction_spike {
                    self.adaptive_shrinks.set(self.adaptive_shrinks.get() + 1);
                    age / ad.shrink_factor.max(1)
                } else {
                    age
                }
            }
            None => age,
        };
        let mut torn = 0;
        loop {
            let front = self.idle_queue.borrow().front().copied();
            let Some((idle_since, qp)) = front else { break };
            if now.saturating_since(idle_since) < age {
                break; // queue is append-ordered: the rest is younger
            }
            self.idle_queue.borrow_mut().pop_front();
            let meta_entry = self.meta.borrow().get(&qp).copied();
            let Some(m) = meta_entry else {
                continue; // already removed under another entry
            };
            // Stale entry: the QP was used (or re-idled) after this entry
            // was queued; a fresher entry exists or it is active again.
            if m.active_slot.is_some() || m.last_used != idle_since {
                continue;
            }
            // Defensive: never strand an in-flight send.
            if fabric.sq_depth(qp) != 0 {
                continue;
            }
            self.remove_conn(qp, m.key);
            let _ = fabric.destroy_qp(qp);
            torn += 1;
        }
        if torn > 0 {
            self.teardowns.set(self.teardowns.get() + torn as u64);
        }
        torn
    }

    /// Drops every connection pooled for `(tenant, peer)`, deactivating any
    /// still-active ones, and returns the handles (the caller owns the
    /// fabric-side teardown — e.g. a departing tenant destroying its QPs).
    pub fn remove_peer(&mut self, fabric: &Fabric, tenant: K, peer: NodeId) -> Vec<QpHandle> {
        let Some(list) = self.conns.remove(&(tenant, peer)) else {
            return Vec::new();
        };
        let mut meta = self.meta.borrow_mut();
        let mut active = self.active.borrow_mut();
        let mut deactivated = 0;
        for &qp in &list {
            if let Some(m) = meta.remove(&qp) {
                if let Some(slot) = m.active_slot {
                    Self::swap_remove_active(&mut meta, &mut active, slot);
                    if fabric.qp_is_active(qp) {
                        let _ = fabric.set_qp_active(qp, false);
                        deactivated += 1;
                    }
                }
            }
        }
        if deactivated > 0 {
            self.deactivations
                .set(self.deactivations.get() + deactivated as u64);
        }
        list
    }

    /// Removes one connection from the pool's bookkeeping (teardown path;
    /// the handle is already known to be inactive).
    fn remove_conn(&mut self, qp: QpHandle, key: (K, NodeId)) {
        self.meta.borrow_mut().remove(&qp);
        if let Some(list) = self.conns.get_mut(&key) {
            if let Some(pos) = list.iter().position(|&h| h == qp) {
                list.swap_remove(pos);
            }
            if list.is_empty() {
                self.conns.remove(&key);
            }
        }
    }

    /// Returns all distinct peers this pool reaches for `tenant`.
    pub fn peers_of(&self, tenant: K) -> Vec<NodeId> {
        let mut peers: Vec<NodeId> = self
            .conns
            .keys()
            .filter(|(t, _)| *t == tenant)
            .map(|(_, p)| *p)
            .collect();
        peers.sort();
        peers
    }

    /// Debug/test view of the tracked active set.
    #[cfg(test)]
    fn active_snapshot(&self) -> Vec<QpHandle> {
        self.active.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membuf::pool::{BufferPool, PoolConfig};
    use rdma_sim::RdmaCosts;
    use simcore::Sim;

    fn mk_pool(tenant: u16) -> BufferPool {
        let mut cfg = PoolConfig::new(TenantId(tenant), 0, 1024, 32);
        cfg.segment_size = 32 * 1024;
        BufferPool::new(cfg).unwrap()
    }

    /// Builds a fabric with two nodes and `n` ready connections.
    fn setup(n: usize) -> (Fabric, Sim, ConnPool, TenantId, NodeId, BufferPool) {
        let fabric = Fabric::new(RdmaCosts::default());
        let mut sim = Sim::new();
        let a = fabric.add_node();
        let b = fabric.add_node();
        let tenant = TenantId(1);
        let pool_a = mk_pool(1);
        let pool_b = mk_pool(1);
        fabric.register_pool(a, pool_a.clone()).unwrap();
        fabric.register_pool(b, pool_b.clone()).unwrap();
        let cq_a = fabric.create_cq(a).unwrap();
        let cq_b = fabric.create_cq(b).unwrap();
        let rq_a = fabric.create_rq(a, tenant).unwrap();
        let rq_b = fabric.create_rq(b, tenant).unwrap();
        let mut pool = ConnPool::new();
        for _ in 0..n {
            let (ha, _) = fabric
                .connect(&mut sim, tenant, a, cq_a, rq_a, b, cq_b, rq_b)
                .unwrap();
            assert!(pool.add(tenant, b, ha, sim.now()));
        }
        sim.run();
        (fabric, sim, pool, tenant, b, pool_a)
    }

    #[test]
    fn empty_pool_returns_none() {
        let (fabric, sim, pool, tenant, peer, _) = setup(0);
        assert!(pool
            .pick_least_congested(&fabric, sim.now(), tenant, peer)
            .is_none());
    }

    #[test]
    fn pick_prefers_least_congested() {
        use rdma_sim::WrId;
        let (fabric, mut sim, pool, tenant, peer, pool_a) = setup(2);
        let now = sim.now();
        let first = pool
            .pick_least_congested(&fabric, now, tenant, peer)
            .unwrap();
        // Load up the first connection with a send (no recv posted: it
        // lingers in RNR retry, keeping sq_outstanding > 0).
        let buf = pool_a.get().unwrap();
        fabric.post_send(&mut sim, first, WrId(0), buf, 0).unwrap();
        let second = pool
            .pick_least_congested(&fabric, now, tenant, peer)
            .unwrap();
        assert_ne!(first.qp, second.qp, "picker avoids the loaded QP");
    }

    #[test]
    fn picking_activates_and_idle_drain_deactivates() {
        let (fabric, sim, pool, tenant, peer, _) = setup(3);
        let now = sim.now();
        let qp = pool
            .pick_least_congested(&fabric, now, tenant, peer)
            .unwrap();
        assert!(fabric.qp_is_active(qp));
        assert_eq!(fabric.active_qp_count(qp.node), 1);
        // No traffic outstanding: the reaper deactivates it.
        let n = pool.deactivate_idle(&fabric, now);
        assert_eq!(n, 1);
        assert_eq!(fabric.active_qp_count(qp.node), 0);
    }

    #[test]
    fn hit_miss_tracks_shadow_qp_churn() {
        let (fabric, sim, pool, tenant, peer, _) = setup(2);
        let now = sim.now();
        assert_eq!(pool.hit_miss(), (0, 0));
        // First pick activates a shadow QP: a miss.
        let qp = pool
            .pick_least_congested(&fabric, now, tenant, peer)
            .unwrap();
        assert_eq!(pool.hit_miss(), (0, 1));
        // Re-picking while still active (sq_depth 0 on both, so the picker
        // may choose either; force the hit by deactivating the other).
        let _ = fabric.set_qp_active(qp, true);
        let again = pool
            .pick_least_congested(&fabric, now, tenant, peer)
            .unwrap();
        let (h, m) = pool.hit_miss();
        assert_eq!(h + m, 2);
        let _ = again;
        // The reaper deactivates the drained QPs and counts them.
        let n = pool.deactivate_idle(&fabric, now);
        assert_eq!(pool.deactivations(), n as u64);
    }

    /// What the pre-optimization reaper would count: a full scan over every
    /// pooled QP for active-and-drained ones.
    fn full_scan_idle(pool: &ConnPool, fabric: &Fabric) -> usize {
        pool.conns
            .values()
            .flatten()
            .filter(|&&qp| fabric.qp_is_active(qp) && fabric.sq_depth(qp) == 0)
            .count()
    }

    #[test]
    fn active_set_reap_matches_full_scan_counters() {
        use rdma_sim::WrId;
        let (fabric, mut sim, pool, tenant, peer, pool_a) = setup(4);
        let now = sim.now();
        // Round 1: a drained active QP → reaped, matching the full scan.
        let _q1 = pool
            .pick_least_congested(&fabric, now, tenant, peer)
            .unwrap();
        let expect = full_scan_idle(&pool, &fabric);
        assert_eq!(expect, 1);
        assert_eq!(pool.deactivate_idle(&fabric, now), expect);
        assert_eq!(pool.deactivations(), expect as u64);
        // Round 2: one busy QP (send stuck in RNR retry) and one drained;
        // only the drained one is reaped.
        let busy = pool
            .pick_least_congested(&fabric, now, tenant, peer)
            .unwrap();
        let buf = pool_a.get().unwrap();
        fabric.post_send(&mut sim, busy, WrId(0), buf, 0).unwrap();
        let idle = pool
            .pick_least_congested_excluding(&fabric, now, tenant, peer, Some(busy.qp))
            .unwrap();
        assert_ne!(busy.qp, idle.qp);
        let expect2 = full_scan_idle(&pool, &fabric);
        assert_eq!(expect2, 1, "only the drained QP is reapable");
        let before = pool.deactivations();
        assert_eq!(pool.deactivate_idle(&fabric, now), expect2);
        assert_eq!(pool.deactivations(), before + expect2 as u64);
        // Round 3: a killed QP loses its active flag externally; the reaper
        // untracks it without counting, exactly like the full scan.
        let killed = pool
            .pick_least_congested_excluding(&fabric, now, tenant, peer, Some(busy.qp))
            .unwrap();
        fabric.inject_qp_error(killed).unwrap();
        let expect3 = full_scan_idle(&pool, &fabric);
        assert_eq!(expect3, 0);
        let before = pool.deactivations();
        assert_eq!(pool.deactivate_idle(&fabric, now), expect3);
        assert_eq!(pool.deactivations(), before + expect3 as u64);
        assert_eq!(
            pool.active_snapshot().as_slice(),
            &[busy],
            "only the still-busy QP stays tracked"
        );
    }

    #[test]
    fn excluding_avoids_failed_qp_unless_it_is_the_only_one() {
        let (fabric, sim, pool, tenant, peer, _) = setup(2);
        let now = sim.now();
        let first = pool
            .pick_least_congested(&fabric, now, tenant, peer)
            .unwrap();
        let other = pool
            .pick_least_congested_excluding(&fabric, now, tenant, peer, Some(first.qp))
            .unwrap();
        assert_ne!(first.qp, other.qp, "failover avoids the failed QP");
        // Break the alternative: the avoided QP is the only ready one left,
        // so the picker falls back to it rather than returning None.
        fabric.inject_qp_error(other).unwrap();
        let fallback = pool
            .pick_least_congested_excluding(&fabric, now, tenant, peer, Some(first.qp))
            .unwrap();
        assert_eq!(fallback.qp, first.qp);
        // Nothing ready at all → None.
        fabric.inject_qp_error(first).unwrap();
        assert!(pool
            .pick_least_congested_excluding(&fabric, now, tenant, peer, Some(first.qp))
            .is_none());
    }

    #[test]
    fn peers_listing() {
        let (_fabric, _sim, mut pool, tenant, peer, _) = setup(1);
        assert_eq!(pool.peers_of(tenant), vec![peer]);
        // Re-registering the SAME handle under another key is rejected:
        // one endpoint has one owner (dedupe bugfix), so the phantom peer
        // never appears in the listing.
        let qp = pool.conns(tenant, peer)[0];
        assert!(!pool.add(TenantId(9), NodeId(5), qp, SimTime::ZERO));
        assert_eq!(pool.peers_of(TenantId(9)), Vec::<NodeId>::new());
        assert_eq!(pool.count(tenant, peer), 1);
    }

    /// Regression (dedupe bugfix): before deduplication, the same handle
    /// registered under two keys was visited twice by the full-sweep audit
    /// and `deactivations` could exceed `activations`.
    #[test]
    fn duplicate_handle_cannot_double_count_deactivations() {
        let (fabric, sim, mut pool, tenant, peer, _) = setup(1);
        let now = sim.now();
        let qp = pool.conns(tenant, peer)[0];
        assert!(
            !pool.add(TenantId(9), NodeId(5), qp, SimTime::ZERO),
            "duplicate rejected"
        );
        let picked = pool
            .pick_least_congested(&fabric, now, tenant, peer)
            .unwrap();
        assert_eq!(picked, qp);
        assert_eq!(pool.activations(), 1);
        pool.reap_all_idle(&fabric, now);
        assert_eq!(pool.deactivations(), 1, "counted exactly once");
        assert!(
            pool.deactivations() <= pool.activations(),
            "invariant: deactivations <= activations"
        );
    }

    /// Regression (quadratic-pick bugfix): membership is one O(1) probe
    /// per pick, independent of how many QPs are active.
    #[test]
    fn pick_membership_is_constant_work() {
        let (fabric, sim, pool, tenant, peer, _) = setup(64);
        let now = sim.now();
        // Activate the whole pool, then keep re-picking: probes track picks
        // 1:1 even with 64 QPs active (the old code scanned all 64 each
        // time).
        let mut picks = 0u64;
        for _ in 0..256 {
            pool.pick_least_congested(&fabric, now, tenant, peer)
                .unwrap();
            picks += 1;
        }
        assert_eq!(pool.membership_probes(), picks);
        assert!(pool.active_total() <= 64);
    }

    #[test]
    fn capacity_bound_evicts_lru_drained_qp() {
        use rdma_sim::WrId;
        let (fabric, mut sim, mut pool, tenant, peer, pool_a) = setup(4);
        pool.set_config(ElasticConfig {
            active_capacity: 2,
            idle_teardown_age: None,
            adaptive: None,
        });
        let now = sim.now();
        let q1 = pool
            .pick_least_congested(&fabric, now, tenant, peer)
            .unwrap();
        let q2 = pool
            .pick_least_congested_excluding(&fabric, now, tenant, peer, Some(q1.qp))
            .unwrap();
        assert_ne!(q1, q2);
        assert_eq!(pool.active_total(), 2);
        // Make q1 busy (send with no recv posted lingers in RNR retry),
        // then force a third activation by excluding q2: the picker takes
        // a fresh drained QP, and the bound evicts the LRU *drained*
        // active QP — q2, never the busy q1.
        let buf = pool_a.get().unwrap();
        fabric.post_send(&mut sim, q1, WrId(0), buf, 0).unwrap();
        let q3 = pool
            .pick_least_congested_excluding(&fabric, now, tenant, peer, Some(q2.qp))
            .unwrap();
        assert!(q3 != q1 && q3 != q2, "picker found a fresh QP");
        assert_eq!(pool.active_total(), 2, "bound held");
        assert_eq!(pool.evictions(), 1);
        assert!(!fabric.qp_is_active(q2), "drained LRU evicted");
        assert!(fabric.qp_is_active(q1), "busy QP untouched");
        assert!(fabric.qp_is_active(q3));
        // Now make q3 busy too: with every active QP busy, the next
        // activation overshoots the bound rather than strand a send.
        let buf = pool_a.get().unwrap();
        fabric.post_send(&mut sim, q3, WrId(1), buf, 0).unwrap();
        let q4 = pool
            .pick_least_congested(&fabric, now, tenant, peer)
            .unwrap();
        assert!(q4 != q1 && q4 != q3);
        assert_eq!(pool.active_total(), 3, "overshoot rather than strand");
        assert_eq!(pool.evictions(), 1, "no busy QP was evicted");
    }

    #[test]
    fn idle_age_teardown_destroys_shadow_connections() {
        let (fabric, sim, mut pool, tenant, peer, _) = setup(3);
        pool.set_config(ElasticConfig {
            active_capacity: 0,
            idle_teardown_age: Some(SimDuration::from_millis(5)),
            adaptive: None,
        });
        // Connections were added at t=0; the connect delay puts t0 at 20ms,
        // so the two never-picked QPs are already past the 5ms idle age.
        // The picked-and-drained one is only idle since t0.
        let t0 = sim.now();
        let qp = pool
            .pick_least_congested(&fabric, t0, tenant, peer)
            .unwrap();
        pool.deactivate_idle(&fabric, t0);
        assert_eq!(
            pool.teardown_idle(&fabric, t0 + SimDuration::from_millis(1)),
            2,
            "never-used connections age out from their add instant"
        );
        assert!(fabric.qp_ready(qp), "recently drained QP survives");
        // Past the age since its drain: the last one goes too.
        let torn = pool.teardown_idle(&fabric, t0 + SimDuration::from_millis(6));
        assert_eq!(torn, 1);
        assert_eq!(pool.teardowns(), 3);
        assert_eq!(pool.pooled_total(), 0);
        assert_eq!(pool.count(tenant, peer), 0);
        assert!(!fabric.qp_ready(qp), "fabric state released");
        assert!(pool
            .pick_least_congested(&fabric, t0, tenant, peer)
            .is_none());
    }

    /// Satellite: eviction-rate-adaptive teardown. A burst of LRU
    /// evictions between two sweeps shrinks the effective teardown age
    /// for the next sweep only; with `adaptive: None` (the default) the
    /// same schedule tears nothing down.
    #[test]
    fn eviction_spike_shrinks_teardown_age() {
        let (fabric, sim, mut pool, tenant, peer, _) = setup(3);
        pool.set_config(ElasticConfig {
            active_capacity: 1,
            idle_teardown_age: Some(SimDuration::from_millis(100)),
            adaptive: Some(AdaptiveTeardown {
                eviction_spike: 2,
                shrink_factor: 50,
            }),
        });
        let t0 = sim.now();
        // Thrash the bound: each activation past capacity evicts the
        // drained LRU. Two evictions = the spike threshold.
        let q1 = pool
            .pick_least_congested(&fabric, t0, tenant, peer)
            .unwrap();
        let q2 = pool
            .pick_least_congested_excluding(&fabric, t0, tenant, peer, Some(q1.qp))
            .unwrap();
        pool.pick_least_congested_excluding(&fabric, t0, tenant, peer, Some(q2.qp))
            .unwrap();
        assert_eq!(pool.evictions(), 2);
        pool.deactivate_idle(&fabric, t0);
        // 2ms idle is far under the configured 10ms age, but the spike
        // shrinks it to 1ms for this sweep: everything idle goes.
        let t1 = t0 + SimDuration::from_millis(2);
        let torn = pool.teardown_idle(&fabric, t1);
        assert_eq!(torn, 3, "shrunk age tears down the 2ms-idle pool");
        assert_eq!(pool.adaptive_shrinks(), 1);
        // No new evictions since: the next sweep runs at the full age.
        assert_eq!(
            pool.teardown_idle(&fabric, t1 + SimDuration::from_millis(1)),
            0
        );
        assert_eq!(
            pool.adaptive_shrinks(),
            1,
            "shrink is per-spike, not sticky"
        );
    }

    /// Control for the adaptive satellite: identical thrash schedule with
    /// `adaptive: None` leaves every connection pooled — the feature is
    /// strictly opt-in.
    #[test]
    fn adaptive_off_by_default_changes_nothing() {
        let (fabric, sim, mut pool, tenant, peer, _) = setup(3);
        pool.set_config(ElasticConfig {
            active_capacity: 1,
            idle_teardown_age: Some(SimDuration::from_millis(100)),
            adaptive: None,
        });
        let t0 = sim.now();
        let q1 = pool
            .pick_least_congested(&fabric, t0, tenant, peer)
            .unwrap();
        let q2 = pool
            .pick_least_congested_excluding(&fabric, t0, tenant, peer, Some(q1.qp))
            .unwrap();
        pool.pick_least_congested_excluding(&fabric, t0, tenant, peer, Some(q2.qp))
            .unwrap();
        assert_eq!(pool.evictions(), 2);
        pool.deactivate_idle(&fabric, t0);
        let t1 = t0 + SimDuration::from_millis(2);
        assert_eq!(pool.teardown_idle(&fabric, t1), 0);
        assert_eq!(pool.adaptive_shrinks(), 0);
        assert_eq!(pool.pooled_total(), 3);
    }

    #[test]
    fn teardown_skips_recently_reused_connections() {
        let (fabric, sim, mut pool, tenant, peer, _) = setup(1);
        pool.set_config(ElasticConfig {
            active_capacity: 0,
            idle_teardown_age: Some(SimDuration::from_millis(5)),
            adaptive: None,
        });
        let t0 = sim.now();
        let qp = pool
            .pick_least_congested(&fabric, t0, tenant, peer)
            .unwrap();
        pool.deactivate_idle(&fabric, t0);
        // Re-used just before the sweep: the stale idle entry must not
        // tear it down.
        let t1 = t0 + SimDuration::from_millis(4);
        assert_eq!(
            pool.pick_least_congested(&fabric, t1, tenant, peer),
            Some(qp)
        );
        assert_eq!(
            pool.teardown_idle(&fabric, t0 + SimDuration::from_millis(6)),
            0
        );
        assert!(fabric.qp_ready(qp));
        assert_eq!(pool.count(tenant, peer), 1);
    }
}
