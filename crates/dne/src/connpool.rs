//! RC connection pooling with shadow-QP activation.
//!
//! §3.3: connection setup costs tens of milliseconds, so the DNE maintains
//! a pool of pre-established connections per `(tenant, peer node)` pair.
//! Following RoGUE's "shadow QP" mechanism, pooled QPs are *active* only
//! while they have work queued; inactive QPs consume no RNIC cache, so the
//! node only has to bound the number of simultaneously active QPs to avoid
//! cache thrashing.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use membuf::tenant::TenantId;
use rdma_sim::fabric::QpHandle;
use rdma_sim::{Fabric, NodeId};

/// A pool of established RC connections keyed by `(tenant, peer node)`.
#[derive(Debug, Default)]
pub struct ConnPool {
    conns: HashMap<(TenantId, NodeId), Vec<QpHandle>>,
    /// Picks that found the chosen QP already active (no RNIC-cache charge).
    hits: Cell<u64>,
    /// Picks that had to activate a shadow QP (a potential cache thrash).
    misses: Cell<u64>,
    /// Idle QPs returned to shadow state by the completion reaper.
    deactivations: Cell<u64>,
    /// Per-tenant `(hits, misses)` split of the pick counters.
    per_tenant: RefCell<HashMap<TenantId, (u64, u64)>>,
}

impl ConnPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        ConnPool::default()
    }

    /// Adds an established connection for `(tenant, peer)`.
    pub fn add(&mut self, tenant: TenantId, peer: NodeId, qp: QpHandle) {
        self.conns.entry((tenant, peer)).or_default().push(qp);
    }

    /// Returns the connections for `(tenant, peer)`.
    pub fn conns(&self, tenant: TenantId, peer: NodeId) -> &[QpHandle] {
        self.conns
            .get(&(tenant, peer))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Returns the number of pooled connections for `(tenant, peer)`.
    pub fn count(&self, tenant: TenantId, peer: NodeId) -> usize {
        self.conns(tenant, peer).len()
    }

    /// Picks the least-congested ready connection (smallest SQ backlog) and
    /// marks it active.
    ///
    /// Returns `None` when no connection to the peer is ready yet.
    pub fn pick_least_congested(
        &self,
        fabric: &Fabric,
        tenant: TenantId,
        peer: NodeId,
    ) -> Option<QpHandle> {
        let best = self
            .conns(tenant, peer)
            .iter()
            .filter(|&&qp| fabric.qp_ready(qp))
            .min_by_key(|&&qp| fabric.sq_depth(qp))
            .copied()?;
        let mut per_tenant = self.per_tenant.borrow_mut();
        let entry = per_tenant.entry(tenant).or_insert((0, 0));
        if fabric.qp_is_active(best) {
            self.hits.set(self.hits.get() + 1);
            entry.0 += 1;
        } else {
            self.misses.set(self.misses.get() + 1);
            entry.1 += 1;
        }
        drop(per_tenant);
        // Activation is what charges the QP against the RNIC cache.
        let _ = fabric.set_qp_active(best, true);
        Some(best)
    }

    /// Returns `(hits, misses)`: picks that found the chosen QP already
    /// active vs. picks that had to activate one. A low hit rate under load
    /// signals shadow-QP churn (QP-cache thrash).
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// Returns how many idle QPs the reaper has deactivated in total.
    pub fn deactivations(&self) -> u64 {
        self.deactivations.get()
    }

    /// Returns `(hits, misses)` for one tenant's picks.
    pub fn hit_miss_of(&self, tenant: TenantId) -> (u64, u64) {
        self.per_tenant
            .borrow()
            .get(&tenant)
            .copied()
            .unwrap_or((0, 0))
    }

    /// Deactivates every pooled QP whose send queue has drained, returning
    /// how many were deactivated. The DNE calls this when reaping send
    /// completions, keeping the active set proportional to load.
    pub fn deactivate_idle(&self, fabric: &Fabric) -> usize {
        let mut deactivated = 0;
        for qps in self.conns.values() {
            for &qp in qps {
                if fabric.qp_is_active(qp) && fabric.sq_depth(qp) == 0 {
                    let _ = fabric.set_qp_active(qp, false);
                    deactivated += 1;
                }
            }
        }
        if deactivated > 0 {
            self.deactivations
                .set(self.deactivations.get() + deactivated as u64);
        }
        deactivated
    }

    /// Returns all distinct peers this pool reaches for `tenant`.
    pub fn peers_of(&self, tenant: TenantId) -> Vec<NodeId> {
        let mut peers: Vec<NodeId> = self
            .conns
            .keys()
            .filter(|(t, _)| *t == tenant)
            .map(|(_, p)| *p)
            .collect();
        peers.sort();
        peers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membuf::pool::{BufferPool, PoolConfig};
    use rdma_sim::RdmaCosts;
    use simcore::Sim;

    fn mk_pool(tenant: u16) -> BufferPool {
        let mut cfg = PoolConfig::new(TenantId(tenant), 0, 1024, 32);
        cfg.segment_size = 32 * 1024;
        BufferPool::new(cfg).unwrap()
    }

    /// Builds a fabric with two nodes and `n` ready connections.
    fn setup(n: usize) -> (Fabric, Sim, ConnPool, TenantId, NodeId, BufferPool) {
        let fabric = Fabric::new(RdmaCosts::default());
        let mut sim = Sim::new();
        let a = fabric.add_node();
        let b = fabric.add_node();
        let tenant = TenantId(1);
        let pool_a = mk_pool(1);
        let pool_b = mk_pool(1);
        fabric.register_pool(a, pool_a.clone()).unwrap();
        fabric.register_pool(b, pool_b.clone()).unwrap();
        let cq_a = fabric.create_cq(a).unwrap();
        let cq_b = fabric.create_cq(b).unwrap();
        let rq_a = fabric.create_rq(a, tenant).unwrap();
        let rq_b = fabric.create_rq(b, tenant).unwrap();
        let mut pool = ConnPool::new();
        for _ in 0..n {
            let (ha, _) = fabric
                .connect(&mut sim, tenant, a, cq_a, rq_a, b, cq_b, rq_b)
                .unwrap();
            pool.add(tenant, b, ha);
        }
        sim.run();
        (fabric, sim, pool, tenant, b, pool_a)
    }

    #[test]
    fn empty_pool_returns_none() {
        let (fabric, _sim, pool, tenant, peer, _) = setup(0);
        assert!(pool.pick_least_congested(&fabric, tenant, peer).is_none());
    }

    #[test]
    fn pick_prefers_least_congested() {
        use rdma_sim::WrId;
        let (fabric, mut sim, pool, tenant, peer, pool_a) = setup(2);
        let first = pool.pick_least_congested(&fabric, tenant, peer).unwrap();
        // Load up the first connection with a send (no recv posted: it
        // lingers in RNR retry, keeping sq_outstanding > 0).
        let buf = pool_a.get().unwrap();
        fabric.post_send(&mut sim, first, WrId(0), buf, 0).unwrap();
        let second = pool.pick_least_congested(&fabric, tenant, peer).unwrap();
        assert_ne!(first.qp, second.qp, "picker avoids the loaded QP");
    }

    #[test]
    fn picking_activates_and_idle_drain_deactivates() {
        let (fabric, _sim, pool, tenant, peer, _) = setup(3);
        let qp = pool.pick_least_congested(&fabric, tenant, peer).unwrap();
        assert!(fabric.qp_is_active(qp));
        assert_eq!(fabric.active_qp_count(qp.node), 1);
        // No traffic outstanding: the reaper deactivates it.
        let n = pool.deactivate_idle(&fabric);
        assert_eq!(n, 1);
        assert_eq!(fabric.active_qp_count(qp.node), 0);
    }

    #[test]
    fn hit_miss_tracks_shadow_qp_churn() {
        let (fabric, _sim, pool, tenant, peer, _) = setup(2);
        assert_eq!(pool.hit_miss(), (0, 0));
        // First pick activates a shadow QP: a miss.
        let qp = pool.pick_least_congested(&fabric, tenant, peer).unwrap();
        assert_eq!(pool.hit_miss(), (0, 1));
        // Re-picking while still active (sq_depth 0 on both, so the picker
        // may choose either; force the hit by deactivating the other).
        let _ = fabric.set_qp_active(qp, true);
        let again = pool.pick_least_congested(&fabric, tenant, peer).unwrap();
        let (h, m) = pool.hit_miss();
        assert_eq!(h + m, 2);
        let _ = again;
        // The reaper deactivates the drained QPs and counts them.
        let n = pool.deactivate_idle(&fabric);
        assert_eq!(pool.deactivations(), n as u64);
    }

    #[test]
    fn peers_listing() {
        let (_fabric, _sim, mut pool, tenant, peer, _) = setup(1);
        assert_eq!(pool.peers_of(tenant), vec![peer]);
        pool.add(TenantId(9), NodeId(5), pool.conns(tenant, peer)[0]);
        assert_eq!(pool.peers_of(TenantId(9)), vec![NodeId(5)]);
        assert_eq!(pool.count(tenant, peer), 1);
    }
}
