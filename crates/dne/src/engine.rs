//! The run-to-completion network engine.
//!
//! One [`Dne`] instance runs per worker node. Work items — TX descriptors
//! arriving from host functions over IPC, and RX/send completions polled
//! from the node's single shared CQ — are dispatched one at a time onto the
//! engine's processor, reproducing the paper's non-blocking
//! run-to-completion loop (Fig. 8). Dispatch order is: completions first
//! (they recycle buffers), then TX descriptors in the order chosen by the
//! tenant scheduler (DWRR or FCFS).
//!
//! The engine is processor-agnostic: configured with
//! [`ProcessorKind::DpuArm`] and Comch IPC it is NADINO (DNE); with
//! [`ProcessorKind::HostCpu`] and SK_MSG IPC it is NADINO (CNE); with
//! [`OffloadMode::OnPath`] it stages payloads through the SoC DMA engine.
//!
//! [`ProcessorKind::DpuArm`]: dpu_sim::soc::ProcessorKind::DpuArm
//! [`ProcessorKind::HostCpu`]: dpu_sim::soc::ProcessorKind::HostCpu
//! [`OffloadMode::OnPath`]: crate::types::OffloadMode::OnPath

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::{Rc, Weak};

use dpu_sim::dma::SocDma;
use dpu_sim::soc::Processor;
use membuf::descriptor::BufferDesc;
use membuf::export::MappedPool;
use membuf::pool::{BufferPool, OwnedBuf};
use membuf::tenant::TenantId;
use obs::{Stage, Tracer};
use rdma_sim::fabric::{CqId, QpHandle, RqId};
use rdma_sim::types::{Cqe, CqeOpcode, CqeStatus, QpId};
use rdma_sim::{Fabric, NodeId, RdmaError};
use simcore::{Sim, SimDuration, SimTime, Ticker, TimerHandle};

use crate::connpool::{ConnPool, ElasticConfig};
use crate::rbr::ReceiveBufferRegistry;
use crate::routing::{RouteError, RoutingTable};
use crate::sched::{DwrrScheduler, FcfsScheduler, TenantScheduler};
use crate::types::{
    DeliveryFailure, DneConfig, DneStats, FailureReason, IpcCosts, OffloadMode, SchedPolicy,
    TenantFailureStats,
};

/// Callback by which the engine delivers a descriptor to a host function.
pub type FnEndpoint = Rc<dyn Fn(&mut Sim, BufferDesc)>;

/// Callback by which the engine reports a delivery failure upstream once
/// recovery (retry, failover, reconnect) is exhausted.
pub type DeliveryFailureHandler = Rc<dyn Fn(&mut Sim, DeliveryFailure)>;

/// Errors surfaced by engine control-plane calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DneError {
    /// The tenant was not registered with this engine.
    UnknownTenant(TenantId),
    /// The tenant is already registered.
    TenantExists(TenantId),
    /// An underlying RDMA verb failed.
    Rdma(RdmaError),
}

impl fmt::Display for DneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DneError::UnknownTenant(t) => write!(f, "tenant {t} not registered"),
            DneError::TenantExists(t) => write!(f, "tenant {t} already registered"),
            DneError::Rdma(e) => write!(f, "rdma error: {e}"),
        }
    }
}

impl std::error::Error for DneError {}

impl From<RdmaError> for DneError {
    fn from(e: RdmaError) -> Self {
        DneError::Rdma(e)
    }
}

/// Packs `(tenant, dst_fn)` into send immediate data.
fn pack_imm(tenant: TenantId, dst_fn: u16) -> u64 {
    ((tenant.0 as u64) << 16) | dst_fn as u64
}

/// Unpacks send immediate data into `(tenant, dst_fn)`.
fn unpack_imm(imm: u64) -> (TenantId, u16) {
    (TenantId((imm >> 16) as u16), imm as u16)
}

/// Reads the request id convention (first eight payload bytes, LE).
fn req_id_of(bytes: &[u8]) -> u64 {
    if bytes.len() >= 8 {
        u64::from_le_bytes(bytes[..8].try_into().expect("checked length"))
    } else {
        0
    }
}

/// Reads the absolute deadline stamped in a payload (see `obs::ctx`), if
/// the payload carries one.
fn deadline_of(bytes: &[u8]) -> Option<SimTime> {
    obs::ctx::read_deadline_ns(bytes).map(SimTime::from_nanos)
}

struct TenantState {
    pool: BufferPool,
    rq: RqId,
    weight: u32,
    tx_count: u64,
    rx_count: u64,
    failures: TenantFailureStats,
}

enum WorkItem {
    Tx(TenantId, BufferDesc),
    Rx(Cqe),
}

/// A TX descriptor queued in the tenant scheduler, stamped with its
/// enqueue instant so dequeue can attribute the queueing delay, plus the
/// trace identity read once at submit (request id and the ingress-decided
/// sampling bit) so the dequeue path never peeks the payload again.
struct TxItem {
    desc: BufferDesc,
    enqueued_at: SimTime,
    req_id: u64,
    sampled: bool,
}

/// Bookkeeping for an in-flight RNIC send, keyed by WR id, so the send
/// completion can close the fabric span and the post-to-completion
/// histogram, and — on an error CQE — drive the retry pipeline.
struct PostedSend {
    at: SimTime,
    /// When the *first* attempt of this send was posted (retry latency).
    first_at: SimTime,
    req_id: u64,
    tenant: TenantId,
    dst_fn: u16,
    /// Attempts already completed before this post (0 for the first).
    attempts: u32,
    /// The node this WR was posted toward. Failure blame must target this
    /// node, not a fresh route lookup — after a failover the lookup points
    /// at the (healthy) backup.
    peer: NodeId,
    /// The ingress sampling decision, cached from the payload's on-wire
    /// bit when the WR was posted: the send completion records its Fabric
    /// span from this without touching the (already recycled) buffer.
    sampled: bool,
}

/// A failed (or not-yet-postable) send parked for a later retry, holding
/// its payload buffer so nothing leaks while the backoff timer runs or a
/// background reconnect brings a connection up.
struct PendingRetry {
    buf: OwnedBuf,
    tenant: TenantId,
    dst_fn: u16,
    peer: NodeId,
    req_id: u64,
    first_at: SimTime,
    /// Attempts already made (0 when parked before any post succeeded).
    attempts: u32,
    /// When the send was first parked, so the eventual repost can record
    /// the whole backoff/reconnect wait as a `RetryBackoff` span.
    parked_at: SimTime,
    /// The QP whose send failed; the failover pick steers around it.
    avoid: Option<QpId>,
}

/// What `connect_pair` recorded about the remote engine so a background
/// reconnect can re-establish a `(tenant, peer)` pool that ran dry.
struct PeerLink {
    cq: CqId,
    rq: RqId,
    engine: Weak<RefCell<Inner>>,
}

/// What the engine decided about an errored send completion.
enum FailedSendOutcome {
    /// Parked under `id`; arm a backoff timer for it.
    Retry { id: u64, backoff: SimDuration },
    /// Recovery exhausted; surface the typed failure.
    Fail(DeliveryFailure),
}

/// Optional exemplar-carrying fleet histogram sinks the cluster may
/// register so the engine's latency sites feed the windowed rollup
/// directly, alongside the always-on [`DneStats`] histograms. Sampled
/// requests attach `(trace_id, span_id)` exemplars to the bucket their
/// observation lands in.
#[derive(Clone, Default)]
pub struct DneObsSink {
    /// DWRR queue wait (submit → dequeue).
    pub tx_queue_wait: Option<obs::HistogramHandle>,
    /// First post → final successful completion, for retried sends.
    pub retry_latency: Option<obs::HistogramHandle>,
    /// RNIC post → CQE.
    pub post_to_completion: Option<obs::HistogramHandle>,
}

struct Inner {
    node: NodeId,
    fabric: Fabric,
    cq: CqId,
    processor: Processor,
    cfg: DneConfig,
    ipc: IpcCosts,
    tenants: HashMap<TenantId, TenantState>,
    routing: RoutingTable,
    endpoints: HashMap<u16, FnEndpoint>,
    txq: Box<dyn TenantScheduler<TxItem>>,
    conns: ConnPool,
    rbr: ReceiveBufferRegistry,
    soc_dma: SocDma,
    in_flight: usize,
    stats: DneStats,
    next_send_wr: u64,
    tracer: Tracer,
    posted: HashMap<u64, PostedSend>,
    /// Periodic idle-QP reaper, when armed (see [`Dne::start_conn_reaper`]).
    conn_reaper: Option<Ticker>,
    /// Sends parked for retry, keyed by retry id.
    retries: HashMap<u64, PendingRetry>,
    /// Pending backoff timers per retry id (absent for retries parked on a
    /// reconnect, which fire when the connection comes up instead).
    retry_timers: HashMap<u64, TimerHandle>,
    next_retry_id: u64,
    /// `(tenant, peer)` pairs with a background reconnect in flight.
    reconnecting: HashSet<(TenantId, NodeId)>,
    /// Remote-engine wiring recorded at `connect_pair` time, so reconnects
    /// know where to point the new QP.
    peer_links: HashMap<(TenantId, NodeId), PeerLink>,
    failure_handler: Option<DeliveryFailureHandler>,
    obs_sink: DneObsSink,
    /// Per-peer negotiated CTX wire versions, announced by the control
    /// plane during rolling upgrades. Absent ⇒ assume the peer runs the
    /// current version (the homogeneous-fleet fast path).
    peer_versions: HashMap<NodeId, u8>,
}

impl Inner {
    fn queued(&self) -> usize {
        self.txq.len() + self.fabric.cq_depth(self.cq)
    }

    /// The CTX version to stamp toward `peer`: the minimum of this
    /// engine's own version and the peer's announced version, so the
    /// receiver's parser owns every byte it reads (negotiation rule of the
    /// versioned wire region — see `obs::ctx`).
    fn effective_wire_version(&self, peer: NodeId) -> u8 {
        let peer_v = self
            .peer_versions
            .get(&peer)
            .copied()
            .unwrap_or(obs::ctx::CTX_CURRENT);
        self.cfg.wire_version.min(peer_v)
    }

    /// Reads the payload deadline — but only when this engine's wire
    /// version includes the deadline region. A v1 engine predates
    /// deadlines entirely: during a rolling upgrade it neither cancels nor
    /// drops expired work (the request still terminates upstream, typed,
    /// at a deadline-aware hop or the gateway).
    fn deadline_if_enforced(&self, bytes: &[u8]) -> Option<SimTime> {
        if self.cfg.wire_version < obs::ctx::CTX_V2 {
            return None;
        }
        deadline_of(bytes)
    }

    /// Reads the request id and the ingress-decided sampling bit out of a
    /// still-pooled descriptor (tracing only): one peek of the payload's
    /// ctx-bearing prefix at the submit boundary, cached on the queue item
    /// so no later stage peeks again.
    fn trace_meta_of_desc(&self, tenant: TenantId, desc: BufferDesc) -> (u64, bool) {
        let mut head = [0u8; obs::CTX_REGION];
        self.tenants
            .get(&tenant)
            .and_then(|s| s.pool.peek_payload_into(desc, &mut head))
            .map(|n| (req_id_of(&head[..n]), obs::ctx::sampled(&head[..n])))
            .unwrap_or((0, false))
    }

    fn next_item(&mut self, now: SimTime) -> Option<WorkItem> {
        if let Some(cqe) = self.fabric.poll_cq(self.cq, 1).pop() {
            return Some(WorkItem::Rx(cqe));
        }
        let (tenant, item) = self.txq.dequeue()?;
        let wait = now.saturating_since(item.enqueued_at);
        self.stats.tx_queue_wait.record(wait);
        let mut ctx = None;
        if item.sampled {
            let span_id = self.tracer.span(
                item.req_id,
                tenant.0,
                self.node.0 as u32,
                Stage::DwrrQueue,
                item.enqueued_at,
                now,
            );
            ctx = Some((item.req_id, span_id));
        }
        if let Some(h) = &self.obs_sink.tx_queue_wait {
            h.record_traced(wait, ctx);
        }
        Some(WorkItem::Tx(tenant, item.desc))
    }

    fn service_for(&self, item: &WorkItem) -> SimDuration {
        let endpoints = self.endpoints.len();
        let queued = self.queued();
        let ipc = self.ipc.engine_service(endpoints, queued);
        let on_path_extra = match self.cfg.offload {
            OffloadMode::OnPath => self.cfg.dma_program,
            OffloadMode::OffPath => SimDuration::ZERO,
        };
        match item {
            WorkItem::Tx(..) => self.cfg.tx_stage + ipc + self.cfg.extra_per_msg + on_path_extra,
            WorkItem::Rx(cqe) => match cqe.opcode {
                CqeOpcode::Recv => self.cfg.rx_stage + ipc + self.cfg.extra_per_msg + on_path_extra,
                _ => self.cfg.send_completion,
            },
        }
    }

    fn fresh_wr(&mut self) -> rdma_sim::WrId {
        let wr = rdma_sim::WrId(u64::MAX - self.next_send_wr);
        self.next_send_wr += 1;
        wr
    }

    /// Replenishes one receive buffer for `tenant` (§3.5.2: the core thread
    /// posts as many buffers as were consumed).
    fn replenish(&mut self, tenant: TenantId) {
        let Some(state) = self.tenants.get(&tenant) else {
            return;
        };
        let rq = state.rq;
        match state.pool.get() {
            Ok(buf) => {
                let wr = self.rbr.register(tenant);
                if self.fabric.post_recv(rq, wr, buf).is_err() {
                    self.rbr.consume(wr);
                    self.stats.replenish_failures += 1;
                } else {
                    self.stats.replenishes += 1;
                }
            }
            Err(_) => self.stats.replenish_failures += 1,
        }
    }

    /// Attributes a drop to `tenant` (the aggregate `stats.drops` counter is
    /// bumped separately by each drop site).
    fn tenant_drop(&mut self, tenant: TenantId) {
        if let Some(st) = self.tenants.get_mut(&tenant) {
            st.failures.drops += 1;
        }
    }

    /// Abandons a send after recovery is exhausted, updating aggregate and
    /// per-tenant counters, and returns the typed failure to surface.
    #[allow(clippy::too_many_arguments)]
    fn give_up(
        &mut self,
        now: SimTime,
        tenant: TenantId,
        dst_fn: u16,
        req_id: u64,
        attempts: u32,
        first_at: SimTime,
        reason: FailureReason,
        dst_node: Option<NodeId>,
    ) -> DeliveryFailure {
        self.stats.drops += 1;
        self.stats.give_ups += 1;
        if attempts > 0 {
            let lat = now.saturating_since(first_at);
            self.stats.retry_latency.record(lat);
            if let Some(h) = &self.obs_sink.retry_latency {
                // No sampling decision survives to this site; the sample
                // still counts, just without an exemplar.
                h.record_traced(lat, None);
            }
        }
        if let Some(st) = self.tenants.get_mut(&tenant) {
            st.failures.drops += 1;
            st.failures.give_ups += 1;
        }
        DeliveryFailure {
            tenant,
            dst_fn,
            req_id,
            attempts,
            reason,
            dst_node,
        }
    }

    /// Cancels a send whose deadline expired before the engine could
    /// (re)post it. Unlike [`Inner::give_up`] this is not a transport
    /// failure — it counts as a deadline drop, not a give-up, so fault
    /// accounting (`give_ups`) stays a pure transport-health signal.
    fn cancel_expired(
        &mut self,
        now: SimTime,
        tenant: TenantId,
        dst_fn: u16,
        req_id: u64,
        attempts: u32,
        dst_node: Option<NodeId>,
    ) -> DeliveryFailure {
        self.stats.drops += 1;
        self.stats.deadline_drops += 1;
        if let Some(st) = self.tenants.get_mut(&tenant) {
            st.failures.drops += 1;
            st.failures.deadline_drops += 1;
        }
        if self.tracer.is_enabled() {
            self.tracer.span(
                req_id,
                tenant.0,
                self.node.0 as u32,
                Stage::DeadlineDrop,
                now,
                now,
            );
        }
        DeliveryFailure {
            tenant,
            dst_fn,
            req_id,
            attempts,
            reason: FailureReason::DeadlineExceeded,
            dst_node,
        }
    }

    /// Decides what to do about an errored send completion: re-park under
    /// the retry budget (the next pick steers around the failed QP), or give
    /// up and surface a typed failure.
    fn on_failed_send(
        &mut self,
        now: SimTime,
        cqe: Cqe,
        posted: Option<PostedSend>,
    ) -> FailedSendOutcome {
        let (imm_tenant, imm_dst) = unpack_imm(cqe.imm);
        let (tenant, dst_fn, first_at, prior, posted_peer) = match posted {
            Some(p) => (p.tenant, p.dst_fn, p.first_at, p.attempts, Some(p.peer)),
            None => (imm_tenant, imm_dst, now, 0, None),
        };
        let attempts = prior + 1; // counting the attempt that just failed
        let Some(buf) = cqe.buf else {
            // No buffer came back with the CQE: nothing left to retry with.
            let dst_node = posted_peer.or_else(|| self.routing.lookup(dst_fn));
            return FailedSendOutcome::Fail(self.give_up(
                now,
                tenant,
                dst_fn,
                0,
                attempts,
                first_at,
                FailureReason::RetryBudgetExhausted,
                dst_node,
            ));
        };
        let req_id = req_id_of(buf.as_slice());
        let peer = match self.routing.resolve(dst_fn) {
            Ok(peer) => peer,
            Err(RouteError::DestinationDown { node, .. }) => {
                // The health monitor marked the destination down and no
                // healthy replica exists: fail fast instead of parking a
                // retry that can only time out against a corpse.
                return FailedSendOutcome::Fail(self.give_up(
                    now,
                    tenant,
                    dst_fn,
                    req_id,
                    attempts,
                    first_at,
                    FailureReason::DestinationDown,
                    Some(node),
                ));
            }
            Err(RouteError::UnknownDestination { .. }) => {
                return FailedSendOutcome::Fail(self.give_up(
                    now,
                    tenant,
                    dst_fn,
                    req_id,
                    attempts,
                    first_at,
                    FailureReason::NoConnection,
                    posted_peer,
                ));
            }
        };
        // Blame the node the failed WR actually targeted; route the retry
        // wherever the (possibly failed-over) table points now.
        let blamed = posted_peer.unwrap_or(peer);
        if attempts > self.cfg.retry_budget {
            // buf drops here → recycled, not leaked.
            return FailedSendOutcome::Fail(self.give_up(
                now,
                tenant,
                dst_fn,
                req_id,
                attempts,
                first_at,
                FailureReason::RetryBudgetExhausted,
                Some(blamed),
            ));
        }
        let backoff = self.cfg.retry_backoff * (1u64 << (attempts - 1).min(16));
        // Deadline-aware park: when the request is already expired — or its
        // backoff timer would only fire after the deadline — parking is
        // pointless, so cancel now instead of burning a timer and a repost.
        if let Some(d) = self.deadline_if_enforced(buf.as_slice()) {
            if now >= d || now + backoff >= d {
                // buf drops here → recycled.
                return FailedSendOutcome::Fail(self.cancel_expired(
                    now,
                    tenant,
                    dst_fn,
                    req_id,
                    attempts,
                    Some(blamed),
                ));
            }
        }
        self.stats.retries += 1;
        if let Some(st) = self.tenants.get_mut(&tenant) {
            st.failures.retries += 1;
        }
        let id = self.park_retry(
            buf,
            tenant,
            dst_fn,
            peer,
            req_id,
            first_at,
            attempts,
            now,
            Some(cqe.qp),
        );
        FailedSendOutcome::Retry { id, backoff }
    }

    /// Parks a send for retry, returning the retry id.
    #[allow(clippy::too_many_arguments)]
    fn park_retry(
        &mut self,
        buf: OwnedBuf,
        tenant: TenantId,
        dst_fn: u16,
        peer: NodeId,
        req_id: u64,
        first_at: SimTime,
        attempts: u32,
        parked_at: SimTime,
        avoid: Option<QpId>,
    ) -> u64 {
        let id = self.next_retry_id;
        self.next_retry_id += 1;
        self.retries.insert(
            id,
            PendingRetry {
                buf,
                tenant,
                dst_fn,
                peer,
                req_id,
                first_at,
                attempts,
                parked_at,
                avoid,
            },
        );
        id
    }
}

/// A node's network engine instance.
///
/// Cloning clones a handle to the same engine.
#[derive(Clone)]
pub struct Dne {
    inner: Rc<RefCell<Inner>>,
}

impl Dne {
    /// Creates an engine on `node`, wiring its shared CQ into the fabric.
    pub fn new(fabric: Fabric, node: NodeId, cfg: DneConfig) -> Result<Dne, DneError> {
        let cq = fabric.create_cq(node)?;
        let processor = match cfg.wimpy_factor {
            Some(f) => Processor::with_factor(cfg.processor, cfg.cores, f),
            None => Processor::new(cfg.processor, cfg.cores),
        };
        let txq: Box<dyn TenantScheduler<TxItem>> = match cfg.sched {
            SchedPolicy::Dwrr { quantum } => Box::new(DwrrScheduler::new(quantum)),
            SchedPolicy::Fcfs => Box::new(FcfsScheduler::new()),
        };
        let ipc = IpcCosts::for_kind(cfg.ipc);
        let inner = Rc::new(RefCell::new(Inner {
            node,
            fabric: fabric.clone(),
            cq,
            processor,
            cfg,
            ipc,
            tenants: HashMap::new(),
            routing: RoutingTable::new(),
            endpoints: HashMap::new(),
            txq,
            conns: ConnPool::new(),
            rbr: ReceiveBufferRegistry::new(),
            soc_dma: SocDma::default(),
            in_flight: 0,
            stats: DneStats::default(),
            next_send_wr: 0,
            tracer: Tracer::disabled(),
            posted: HashMap::new(),
            conn_reaper: None,
            retries: HashMap::new(),
            retry_timers: HashMap::new(),
            next_retry_id: 0,
            reconnecting: HashSet::new(),
            peer_links: HashMap::new(),
            failure_handler: None,
            obs_sink: DneObsSink::default(),
            peer_versions: HashMap::new(),
        }));
        let weak: Weak<RefCell<Inner>> = Rc::downgrade(&inner);
        fabric.set_cq_waker(
            cq,
            Rc::new(move |sim| {
                if let Some(rc) = weak.upgrade() {
                    Dne::kick(&rc, sim);
                }
            }),
        )?;
        Ok(Dne { inner })
    }

    /// Returns the node this engine serves.
    pub fn node(&self) -> NodeId {
        self.inner.borrow().node
    }

    /// Returns the engine's IPC cost model (host functions charge the
    /// host-side component themselves).
    pub fn ipc_costs(&self) -> IpcCosts {
        self.inner.borrow().ipc.clone()
    }

    /// Returns the engine's shared completion queue.
    pub fn cq(&self) -> CqId {
        self.inner.borrow().cq
    }

    /// Registers a tenant: registers its (cross-processor mapped) pool with
    /// the RNIC, creates the tenant's shared RQ, pre-posts receive buffers
    /// and registers the tenant with the TX scheduler.
    pub fn register_tenant(
        &self,
        tenant: TenantId,
        weight: u32,
        mapped: &MappedPool,
    ) -> Result<(), DneError> {
        let mut inner = self.inner.borrow_mut();
        if inner.tenants.contains_key(&tenant) {
            return Err(DneError::TenantExists(tenant));
        }
        let node = inner.node;
        inner.fabric.register_mapped(node, mapped)?;
        let rq = inner.fabric.create_rq(node, tenant)?;
        let pool = mapped.pool().clone();
        inner.tenants.insert(
            tenant,
            TenantState {
                pool,
                rq,
                weight,
                tx_count: 0,
                rx_count: 0,
                failures: TenantFailureStats::default(),
            },
        );
        inner.txq.register(tenant, weight);
        // Pre-post at most half the pool so local senders always have
        // buffers available (the RX path replenishes one-for-one anyway).
        let depth = inner
            .cfg
            .prepost_depth
            .min((mapped.pool().capacity() as usize / 2).max(1));
        for _ in 0..depth {
            inner.replenish(tenant);
        }
        Ok(())
    }

    /// Returns the tenant's shared RQ (used when connecting peers).
    pub fn tenant_rq(&self, tenant: TenantId) -> Result<RqId, DneError> {
        self.inner
            .borrow()
            .tenants
            .get(&tenant)
            .map(|t| t.rq)
            .ok_or(DneError::UnknownTenant(tenant))
    }

    /// Installs a function placement in the routing table.
    pub fn set_route(&self, fn_id: u16, node: NodeId) {
        self.inner.borrow_mut().routing.set(fn_id, node);
    }

    /// Installs a standby replica route for a function (used only after a
    /// health-driven fail-over switches to it).
    pub fn set_backup_route(&self, fn_id: u16, node: NodeId) {
        self.inner.borrow_mut().routing.set_backup(fn_id, node);
    }

    /// Re-points every function routed to `failed` at its backup replica.
    /// Returns the switched function ids (sorted, deterministic).
    pub fn fail_over_node(&self, failed: NodeId) -> Vec<u16> {
        self.inner.borrow_mut().routing.fail_over(failed)
    }

    /// Restores primaries displaced from `node` by an earlier fail-over.
    /// Returns the restored function ids (sorted, deterministic).
    pub fn restore_node(&self, node: NodeId) -> Vec<u16> {
        self.inner.borrow_mut().routing.restore(node)
    }

    /// Function ids stranded at `node` after a fail-over found no healthy
    /// alternative (they resolve `DestinationDown` until a target
    /// recovers). Sorted; empty when the node is up.
    pub fn stranded_on(&self, node: NodeId) -> Vec<u16> {
        self.inner.borrow().routing.stranded_on(node)
    }

    /// The CTX wire version this engine stamps and understands.
    pub fn wire_version(&self) -> u8 {
        self.inner.borrow().cfg.wire_version
    }

    /// Switches the engine to a new CTX wire version — the moment a
    /// rolling upgrade (or rollback) lands on this node. Takes effect from
    /// the next stamp; in-flight payloads keep the version they carry.
    pub fn set_wire_version(&self, version: u8) {
        self.inner.borrow_mut().cfg.wire_version = version;
    }

    /// Records the control-plane-announced CTX version of a peer node.
    /// Sends toward that peer are stamped at `min(own, peer)` so the
    /// receiver's parser owns every byte it reads.
    pub fn set_peer_wire_version(&self, peer: NodeId, version: u8) {
        self.inner.borrow_mut().peer_versions.insert(peer, version);
    }

    /// The negotiated stamp version toward `peer` (`min(own, announced)`;
    /// an unannounced peer is assumed current).
    pub fn effective_wire_version(&self, peer: NodeId) -> u8 {
        self.inner.borrow().effective_wire_version(peer)
    }

    /// Everything the engine still owes work for: queued TX descriptors,
    /// CQEs waiting in the completion queue, worker items on cores, posted
    /// sends awaiting completions, and parked retries. The drain loop of
    /// the fleet controller polls this toward zero before taking the node
    /// out of service.
    pub fn inflight_total(&self) -> usize {
        let inner = self.inner.borrow();
        inner.queued() + inner.in_flight + inner.posted.len() + inner.retries.len()
    }

    /// Registers the delivery endpoint of a local function.
    pub fn register_endpoint(&self, fn_id: u16, endpoint: FnEndpoint) {
        self.inner.borrow_mut().endpoints.insert(fn_id, endpoint);
    }

    /// Establishes `n` pooled RC connections between two engines for a
    /// tenant (both engines must share the same fabric and have the tenant
    /// registered).
    pub fn connect_pair(
        sim: &mut Sim,
        a: &Dne,
        b: &Dne,
        tenant: TenantId,
        n: usize,
    ) -> Result<(), DneError> {
        let (fabric, node_a, cq_a) = {
            let ia = a.inner.borrow();
            (ia.fabric.clone(), ia.node, ia.cq)
        };
        let (node_b, cq_b) = {
            let ib = b.inner.borrow();
            (ib.node, ib.cq)
        };
        let rq_a = a.tenant_rq(tenant)?;
        let rq_b = b.tenant_rq(tenant)?;
        for _ in 0..n {
            let (ha, hb) = fabric.connect(sim, tenant, node_a, cq_a, rq_a, node_b, cq_b, rq_b)?;
            a.inner
                .borrow_mut()
                .conns
                .add(tenant, node_b, ha, sim.now());
            b.inner
                .borrow_mut()
                .conns
                .add(tenant, node_a, hb, sim.now());
        }
        // Record how to reach the peer engine so a pool that later runs dry
        // (every QP errored) can reconnect in the background.
        a.inner.borrow_mut().peer_links.insert(
            (tenant, node_b),
            PeerLink {
                cq: cq_b,
                rq: rq_b,
                engine: Rc::downgrade(&b.inner),
            },
        );
        b.inner.borrow_mut().peer_links.insert(
            (tenant, node_a),
            PeerLink {
                cq: cq_a,
                rq: rq_a,
                engine: Rc::downgrade(&a.inner),
            },
        );
        Ok(())
    }

    /// Accepts a descriptor from a host function (the I/O library's
    /// inter-node path). The descriptor crosses the IPC boundary with the
    /// configured one-way latency before entering the TX scheduler.
    pub fn submit(&self, sim: &mut Sim, tenant: TenantId, desc: BufferDesc) {
        let (latency, req_id, sampled) = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.submitted += 1;
            // One payload peek decides everything trace-related for this
            // descriptor's whole TX life: the ingress-stamped sampling bit
            // and the request id ride on the queue item from here on.
            let (req_id, sampled) = if inner.tracer.is_enabled() {
                inner.trace_meta_of_desc(tenant, desc)
            } else {
                (0, false)
            };
            if sampled {
                inner.tracer.span(
                    req_id,
                    tenant.0,
                    inner.node.0 as u32,
                    Stage::ComchSubmit,
                    sim.now(),
                    sim.now() + inner.ipc.one_way_latency,
                );
            }
            (inner.ipc.one_way_latency, req_id, sampled)
        };
        let rc = self.inner.clone();
        sim.schedule_after(latency, move |sim| {
            let enqueued_at = sim.now();
            rc.borrow_mut().txq.enqueue(
                tenant,
                TxItem {
                    desc,
                    enqueued_at,
                    req_id,
                    sampled,
                },
            );
            Dne::kick(&rc, sim);
        });
    }

    /// Dispatches work onto idle engine cores.
    fn kick(rc: &Rc<RefCell<Inner>>, sim: &mut Sim) {
        loop {
            let now = sim.now();
            let dispatched = {
                let mut inner = rc.borrow_mut();
                if inner.in_flight >= inner.cfg.cores {
                    None
                } else {
                    match inner.next_item(now) {
                        Some(item) => {
                            let service = inner.service_for(&item);
                            let stage = match &item {
                                WorkItem::Tx(..) => "tx_post",
                                WorkItem::Rx(cqe) => match cqe.opcode {
                                    CqeOpcode::Recv => "rx_deliver",
                                    _ => "send_completion",
                                },
                            };
                            let done = inner.processor.run_staged(now, service, stage);
                            inner.in_flight += 1;
                            Some((item, done))
                        }
                        None => None,
                    }
                }
            };
            let Some((item, done)) = dispatched else {
                return;
            };
            let rc2 = rc.clone();
            sim.schedule_at(done, move |sim| {
                Dne::complete(&rc2, sim, item, now);
            });
        }
    }

    /// Finishes processing a work item and re-kicks the loop.
    fn complete(rc: &Rc<RefCell<Inner>>, sim: &mut Sim, item: WorkItem, dispatched_at: SimTime) {
        rc.borrow_mut()
            .stats
            .sched_delay
            .record(sim.now().saturating_since(dispatched_at));
        match item {
            WorkItem::Tx(tenant, desc) => Dne::complete_tx(rc, sim, tenant, desc, dispatched_at),
            WorkItem::Rx(cqe) => Dne::complete_rx(rc, sim, cqe, dispatched_at),
        }
        rc.borrow_mut().in_flight -= 1;
        Dne::kick(rc, sim);
    }

    fn complete_tx(
        rc: &Rc<RefCell<Inner>>,
        sim: &mut Sim,
        tenant: TenantId,
        desc: BufferDesc,
        dispatched_at: SimTime,
    ) {
        // Phase 1 (engine state): redeem, route, pick connection.
        enum Action {
            Local(FnEndpoint, BufferDesc, SimDuration),
            Send {
                fabric: Fabric,
                qp: QpHandle,
                wr: rdma_sim::WrId,
                buf: OwnedBuf,
                imm: u64,
                dma_done: Option<SimTime>,
            },
            /// The `(tenant, peer)` pool is dry: the descriptor was parked
            /// and a background reconnect must be (or already is) underway.
            Reconnect(TenantId, NodeId),
            Fail(DeliveryFailure),
        }
        let action = {
            let mut inner = rc.borrow_mut();
            let dst_fn = desc.dst_fn;
            let Some(state) = inner.tenants.get(&tenant) else {
                inner.stats.drops += 1;
                return;
            };
            let mut buf = match state.pool.redeem(desc) {
                Ok(b) => b,
                Err(_) => {
                    inner.stats.drops += 1;
                    inner.tenant_drop(tenant);
                    return;
                }
            };
            // One bit — the ingress sampling decision carried in the
            // payload's ctx flags — gates every span site on this path.
            // The `is_enabled` guard keeps the ctx bytes application-owned
            // whenever tracing is off: untraced payloads are never
            // interpreted or re-stamped.
            let traced = inner.tracer.is_enabled() && obs::ctx::sampled(buf.as_slice());
            let req_id = req_id_of(buf.as_slice());
            if traced {
                inner.tracer.span(
                    req_id,
                    tenant.0,
                    inner.node.0 as u32,
                    Stage::DneTx,
                    dispatched_at,
                    sim.now(),
                );
            }
            // Cancellation point: a request whose deadline has already
            // passed is dropped here instead of consuming a connection,
            // fabric flight, and remote RX capacity.
            if let Some(d) = inner.deadline_if_enforced(buf.as_slice()) {
                if sim.now() >= d {
                    let dst_node = inner.routing.lookup(dst_fn);
                    let f = inner.cancel_expired(sim.now(), tenant, dst_fn, req_id, 0, dst_node);
                    // buf drops here → recycled.
                    drop(buf);
                    let rc2 = rc.clone();
                    drop(inner);
                    Dne::notify_failure(&rc2, sim, f);
                    return;
                }
            }
            match inner.routing.resolve(dst_fn) {
                Err(RouteError::UnknownDestination { .. }) => {
                    // Unknown destination: the control plane never placed
                    // this function (or removed it). Surface a typed
                    // failure so upstream resolves instead of hanging.
                    let now = sim.now();
                    let f = inner.give_up(
                        now,
                        tenant,
                        dst_fn,
                        req_id,
                        0,
                        now,
                        FailureReason::UnknownDestination,
                        None,
                    );
                    Action::Fail(f) // buf dropped → recycled
                }
                Err(RouteError::DestinationDown { node, .. }) => {
                    // The route exists but its node is down with no
                    // healthy replica: fail fast at the TX stage instead
                    // of posting into a dead peer and burning the retry
                    // budget on it.
                    let now = sim.now();
                    let f = inner.give_up(
                        now,
                        tenant,
                        dst_fn,
                        req_id,
                        0,
                        now,
                        FailureReason::DestinationDown,
                        Some(node),
                    );
                    Action::Fail(f) // buf dropped → recycled
                }
                Ok(peer) if peer == inner.node => {
                    // Local destination: hand straight back over IPC.
                    match inner.endpoints.get(&dst_fn).cloned() {
                        Some(ep) => {
                            let latency = inner.ipc.one_way_latency;
                            inner.stats.rx_delivered += 1;
                            Action::Local(ep, buf.into_desc(dst_fn), latency)
                        }
                        None => {
                            let now = sim.now();
                            let node = inner.node;
                            let f = inner.give_up(
                                now,
                                tenant,
                                dst_fn,
                                req_id,
                                0,
                                now,
                                FailureReason::UnknownDestination,
                                Some(node),
                            );
                            Action::Fail(f)
                        }
                    }
                }
                Ok(peer) => {
                    let fabric = inner.fabric.clone();
                    match inner
                        .conns
                        .pick_least_congested(&fabric, sim.now(), tenant, peer)
                    {
                        Some(qp) => {
                            let wr = inner.fresh_wr();
                            let imm = pack_imm(tenant, dst_fn);
                            let dma_done = match inner.cfg.offload {
                                OffloadMode::OnPath => {
                                    // Stage host → DPU memory over the SoC DMA.
                                    Some(inner.soc_dma.transfer(sim.now(), buf.len()))
                                }
                                OffloadMode::OffPath => None,
                            };
                            inner.stats.tx_posted += 1;
                            if let Some(st) = inner.tenants.get_mut(&tenant) {
                                st.tx_count += 1;
                            }
                            let posted_at = dma_done.unwrap_or_else(|| sim.now());
                            if traced {
                                let node = inner.node.0 as u32;
                                let mut parent = inner.tracer.span(
                                    req_id,
                                    tenant.0,
                                    node,
                                    Stage::ConnPick,
                                    sim.now(),
                                    sim.now(),
                                );
                                if let Some(at) = dma_done {
                                    parent = inner.tracer.span(
                                        req_id,
                                        tenant.0,
                                        node,
                                        Stage::SocDma,
                                        sim.now(),
                                        at,
                                    );
                                }
                                // Stamp the on-wire trace context so the
                                // receiver's spans parent on this node's
                                // causal chain (the freshest span id *is*
                                // the causal cursor). Unsampled requests
                                // skip this entirely: their flags byte is
                                // already zero. The stamp is downgraded to
                                // the peer's negotiated wire version during
                                // mixed-version rollouts.
                                let eff = inner.effective_wire_version(peer);
                                obs::ctx::write_ctx_at(buf.as_mut_slice(), parent, true, eff);
                            }
                            inner.posted.insert(
                                wr.0,
                                PostedSend {
                                    at: posted_at,
                                    first_at: posted_at,
                                    req_id,
                                    tenant,
                                    dst_fn,
                                    attempts: 0,
                                    peer,
                                    sampled: traced,
                                },
                            );
                            Action::Send {
                                fabric,
                                qp,
                                wr,
                                buf,
                                imm,
                                dma_done,
                            }
                        }
                        None => {
                            // Pool dry (every QP errored or still setting
                            // up): park the send and reconnect in the
                            // background instead of dropping it.
                            let rid = req_id_of(buf.as_slice());
                            if inner.peer_links.contains_key(&(tenant, peer)) {
                                let now = sim.now();
                                inner.park_retry(buf, tenant, dst_fn, peer, rid, now, 0, now, None);
                                Action::Reconnect(tenant, peer)
                            } else {
                                let now = sim.now();
                                let f = inner.give_up(
                                    now,
                                    tenant,
                                    dst_fn,
                                    rid,
                                    0,
                                    now,
                                    FailureReason::NoConnection,
                                    Some(peer),
                                );
                                Action::Fail(f)
                            }
                        }
                    }
                }
            }
        };
        // Phase 2 (no engine borrow held): touch fabric / schedule IPC.
        match action {
            Action::Local(ep, desc, latency) => {
                sim.schedule_after(latency, move |sim| ep(sim, desc));
            }
            Action::Send {
                fabric,
                qp,
                wr,
                buf,
                imm,
                dma_done,
            } => match dma_done {
                None => {
                    let rc2 = rc.clone();
                    if fabric.post_send(sim, qp, wr, buf, imm).is_err() {
                        Dne::post_send_failed(&rc2, sim, wr);
                    }
                }
                Some(at) => {
                    let rc2 = rc.clone();
                    sim.schedule_at(at, move |sim| {
                        if fabric.post_send(sim, qp, wr, buf, imm).is_err() {
                            Dne::post_send_failed(&rc2, sim, wr);
                        }
                    });
                }
            },
            Action::Reconnect(tenant, peer) => Dne::start_reconnect(rc, sim, tenant, peer),
            Action::Fail(f) => Dne::notify_failure(rc, sim, f),
        }
    }

    /// A synchronous `post_send` error (QP died between the pick and the
    /// post): the buffer was already recycled by the fabric, so surface a
    /// typed failure rather than silently dropping the bookkeeping.
    fn post_send_failed(rc: &Rc<RefCell<Inner>>, sim: &mut Sim, wr: rdma_sim::WrId) {
        let failure = {
            let mut inner = rc.borrow_mut();
            inner.posted.remove(&wr.0).map(|p| {
                inner.give_up(
                    sim.now(),
                    p.tenant,
                    p.dst_fn,
                    p.req_id,
                    p.attempts,
                    p.first_at,
                    FailureReason::NoConnection,
                    Some(p.peer),
                )
            })
        };
        if let Some(f) = failure {
            Dne::notify_failure(rc, sim, f);
        }
    }

    fn complete_rx(rc: &Rc<RefCell<Inner>>, sim: &mut Sim, cqe: Cqe, dispatched_at: SimTime) {
        enum Action {
            None,
            Deliver(FnEndpoint, BufferDesc, SimDuration),
            Retry { id: u64, backoff: SimDuration },
            Fail(DeliveryFailure),
        }
        let action = {
            let mut inner = rc.borrow_mut();
            match cqe.opcode {
                CqeOpcode::Send | CqeOpcode::Write | CqeOpcode::Read | CqeOpcode::CompareSwap => {
                    inner.stats.send_completions += 1;
                    // Close out the post-to-completion interval opened when
                    // the WR was handed to the RNIC.
                    let posted = inner.posted.remove(&cqe.wr_id.0);
                    if let Some(p) = &posted {
                        let p2c = sim.now().saturating_since(p.at);
                        inner.stats.post_to_completion.record(p2c);
                        let mut ctx = None;
                        if p.sampled {
                            let span_id = inner.tracer.span(
                                p.req_id,
                                p.tenant.0,
                                inner.node.0 as u32,
                                Stage::Fabric,
                                p.at,
                                sim.now(),
                            );
                            ctx = Some((p.req_id, span_id));
                        }
                        if let Some(h) = &inner.obs_sink.post_to_completion {
                            h.record_traced(p2c, ctx);
                        }
                        if cqe.status == CqeStatus::Success && p.attempts > 0 {
                            let lat = sim.now().saturating_since(p.first_at);
                            inner.stats.retry_latency.record(lat);
                            if let Some(h) = &inner.obs_sink.retry_latency {
                                h.record_traced(lat, ctx);
                            }
                        }
                    }
                    // Shadow-QP reaping: idle connections leave the cache.
                    let fabric = inner.fabric.clone();
                    inner.conns.deactivate_idle(&fabric, sim.now());
                    if cqe.status == CqeStatus::Success {
                        // cqe.buf drops here → sender buffer recycled.
                        Action::None
                    } else {
                        match inner.on_failed_send(sim.now(), cqe, posted) {
                            FailedSendOutcome::Retry { id, backoff } => {
                                Action::Retry { id, backoff }
                            }
                            FailedSendOutcome::Fail(f) => Action::Fail(f),
                        }
                    }
                }
                CqeOpcode::Recv => {
                    let tenant = inner.rbr.consume(cqe.wr_id);
                    if cqe.status != CqeStatus::Success {
                        inner.stats.drops += 1;
                        if let Some(t) = tenant {
                            inner.tenant_drop(t);
                            inner.replenish(t);
                        }
                        return;
                    }
                    let (imm_tenant, dst_fn) = unpack_imm(cqe.imm);
                    let tenant = tenant.unwrap_or(imm_tenant);
                    inner.replenish(tenant);
                    let Some(buf) = cqe.buf else {
                        inner.stats.drops += 1;
                        inner.tenant_drop(tenant);
                        return;
                    };
                    // The receive side reads the same one bit the sender
                    // stamped; an unsampled payload costs this branch only.
                    let traced = inner.tracer.is_enabled() && obs::ctx::sampled(buf.as_slice());
                    let req_id = if traced { req_id_of(buf.as_slice()) } else { 0 };
                    if traced {
                        let node = inner.node.0 as u32;
                        // Adopt the sender's causal cursor from the payload
                        // trace context: the RX spans below parent on the
                        // remote send chain instead of starting a new root.
                        if let Some(c) = obs::ctx::read_ctx(buf.as_slice()) {
                            inner.tracer.adopt_parent(req_id, node, c.parent_span);
                        }
                        inner.tracer.span(
                            req_id,
                            tenant.0,
                            node,
                            Stage::RxCompletion,
                            dispatched_at,
                            sim.now(),
                        );
                        // RBR lookup + replenish happen inline within the RX
                        // stage; exported as an instant marker.
                        inner.tracer.span(
                            req_id,
                            tenant.0,
                            node,
                            Stage::RbrRecover,
                            sim.now(),
                            sim.now(),
                        );
                    }
                    match inner.endpoints.get(&dst_fn).cloned() {
                        Some(ep) => {
                            let mut latency = inner.ipc.one_way_latency;
                            if inner.cfg.offload == OffloadMode::OnPath {
                                // Stage DPU → host memory over the SoC DMA.
                                let done = inner.soc_dma.transfer(sim.now(), buf.len());
                                latency += done.saturating_since(sim.now());
                            }
                            inner.stats.rx_delivered += 1;
                            if let Some(st) = inner.tenants.get_mut(&tenant) {
                                st.rx_count += 1;
                            }
                            if traced {
                                inner.tracer.span(
                                    req_id,
                                    tenant.0,
                                    inner.node.0 as u32,
                                    Stage::ComchDeliver,
                                    sim.now(),
                                    sim.now() + latency,
                                );
                            }
                            Action::Deliver(ep, buf.into_desc(dst_fn), latency)
                        }
                        None => {
                            // The payload crossed the wire but no endpoint
                            // is registered here: typed failure (the
                            // sender-side handler never sees this, so the
                            // receiving node's handler reports it).
                            let now = sim.now();
                            let node = inner.node;
                            let rid = req_id_of(buf.as_slice());
                            let f = inner.give_up(
                                now,
                                tenant,
                                dst_fn,
                                rid,
                                0,
                                now,
                                FailureReason::UnknownDestination,
                                Some(node),
                            );
                            Action::Fail(f) // buf drops → recycled
                        }
                    }
                }
            }
        };
        match action {
            Action::None => {}
            Action::Deliver(ep, desc, latency) => {
                sim.schedule_after(latency, move |sim| ep(sim, desc));
            }
            Action::Retry { id, backoff } => {
                let rc2 = rc.clone();
                let handle = sim.schedule_after(backoff, move |sim| Dne::run_retry(&rc2, sim, id));
                rc.borrow_mut().retry_timers.insert(id, handle);
            }
            Action::Fail(f) => Dne::notify_failure(rc, sim, f),
        }
    }

    /// Fires a parked retry: re-picks a pooled QP (steering around the one
    /// that failed — shadow-QP failover) and re-posts. A retry whose id is
    /// no longer parked (already flushed by a reconnect, or the send
    /// ultimately gave up) is a no-op, so a stale backoff timer can never
    /// duplicate a send.
    fn run_retry(rc: &Rc<RefCell<Inner>>, sim: &mut Sim, id: u64) {
        enum Step {
            Post {
                fabric: Fabric,
                qp: QpHandle,
                wr: rdma_sim::WrId,
                buf: OwnedBuf,
                imm: u64,
            },
            Reconnect(TenantId, NodeId),
            Fail(DeliveryFailure),
        }
        let step = {
            let mut inner = rc.borrow_mut();
            inner.retry_timers.remove(&id);
            let Some(mut p) = inner.retries.remove(&id) else {
                return; // cancelled or already flushed: fire as a no-op
            };
            // The deadline may have passed while the retry sat parked
            // (e.g. a reconnect flush arriving late): cancel, don't repost.
            if let Some(d) = inner.deadline_if_enforced(p.buf.as_slice()) {
                if sim.now() >= d {
                    let f = inner.cancel_expired(
                        sim.now(),
                        p.tenant,
                        p.dst_fn,
                        p.req_id,
                        p.attempts,
                        Some(p.peer),
                    );
                    // p.buf drops here → recycled.
                    drop(inner);
                    Dne::notify_failure(rc, sim, f);
                    return;
                }
            }
            let fabric = inner.fabric.clone();
            match inner.conns.pick_least_congested_excluding(
                &fabric,
                sim.now(),
                p.tenant,
                p.peer,
                p.avoid,
            ) {
                Some(qp) => {
                    if p.avoid.is_some() && Some(qp.qp) != p.avoid {
                        inner.stats.failovers += 1;
                    }
                    let wr = inner.fresh_wr();
                    let imm = pack_imm(p.tenant, p.dst_fn);
                    inner.stats.tx_posted += 1;
                    if let Some(st) = inner.tenants.get_mut(&p.tenant) {
                        st.tx_count += 1;
                    }
                    let sampled = inner.tracer.is_enabled() && obs::ctx::sampled(p.buf.as_slice());
                    if sampled {
                        let node = inner.node.0 as u32;
                        // The whole park → repost wait is attributable
                        // retry/backoff time on the critical path.
                        let parent = inner.tracer.span(
                            p.req_id,
                            p.tenant.0,
                            node,
                            Stage::RetryBackoff,
                            p.parked_at,
                            sim.now(),
                        );
                        // Re-stamp the context: the re-sent payload now
                        // parents downstream spans on the backoff span,
                        // downgraded to the peer's negotiated version (the
                        // peer may have changed versions while we backed
                        // off mid-upgrade-wave).
                        let eff = inner.effective_wire_version(p.peer);
                        obs::ctx::write_ctx_at(p.buf.as_mut_slice(), parent, true, eff);
                    }
                    inner.posted.insert(
                        wr.0,
                        PostedSend {
                            at: sim.now(),
                            first_at: p.first_at,
                            req_id: p.req_id,
                            tenant: p.tenant,
                            dst_fn: p.dst_fn,
                            attempts: p.attempts,
                            peer: p.peer,
                            sampled,
                        },
                    );
                    Step::Post {
                        fabric,
                        qp,
                        wr,
                        buf: p.buf,
                        imm,
                    }
                }
                None if inner.peer_links.contains_key(&(p.tenant, p.peer)) => {
                    // Pool still dry: park again (no timer) and wait for the
                    // background reconnect to flush us.
                    let (tenant, peer) = (p.tenant, p.peer);
                    inner.retries.insert(id, p);
                    Step::Reconnect(tenant, peer)
                }
                None => {
                    let f = inner.give_up(
                        sim.now(),
                        p.tenant,
                        p.dst_fn,
                        p.req_id,
                        p.attempts,
                        p.first_at,
                        FailureReason::NoConnection,
                        Some(p.peer),
                    );
                    Step::Fail(f)
                }
            }
        };
        match step {
            Step::Post {
                fabric,
                qp,
                wr,
                buf,
                imm,
            } => {
                if fabric.post_send(sim, qp, wr, buf, imm).is_err() {
                    Dne::post_send_failed(rc, sim, wr);
                }
            }
            Step::Reconnect(tenant, peer) => Dne::start_reconnect(rc, sim, tenant, peer),
            Step::Fail(f) => Dne::notify_failure(rc, sim, f),
        }
    }

    /// Kicks off a background reconnect for a dry `(tenant, peer)` pool,
    /// charging the full connection-setup delay (tens of milliseconds,
    /// §3.3). Idempotent while one is already in flight.
    fn start_reconnect(rc: &Rc<RefCell<Inner>>, sim: &mut Sim, tenant: TenantId, peer: NodeId) {
        let wiring = {
            let mut inner = rc.borrow_mut();
            if inner.reconnecting.contains(&(tenant, peer)) {
                return;
            }
            let Some(rq) = inner.tenants.get(&tenant).map(|t| t.rq) else {
                return;
            };
            let Some((peer_cq, peer_rq, peer_engine)) = inner
                .peer_links
                .get(&(tenant, peer))
                .map(|l| (l.cq, l.rq, l.engine.clone()))
            else {
                return;
            };
            inner.reconnecting.insert((tenant, peer));
            (
                inner.fabric.clone(),
                inner.node,
                inner.cq,
                rq,
                peer_cq,
                peer_rq,
                peer_engine,
            )
        };
        let (fabric, node, cq, rq, peer_cq, peer_rq, peer_engine) = wiring;
        // Elastic control plane: claim from the link's pre-warm stock when
        // one exists — the handshake already ran in the background, so the
        // connection is usable in microseconds instead of paying the full
        // tens-of-ms establishment on the recovery path.
        let claimed = fabric
            .claim_prewarmed(sim, tenant, node, cq, rq, peer, peer_cq, peer_rq)
            .unwrap_or(None);
        let (result, delay, warm) = match claimed {
            Some(pair) => (Ok(pair), fabric.costs().prewarm_claim_delay, true),
            None => (
                fabric.connect(sim, tenant, node, cq, rq, peer, peer_cq, peer_rq),
                fabric.costs().connect_delay,
                false,
            ),
        };
        match result {
            Ok((ha, hb)) => {
                {
                    let mut inner = rc.borrow_mut();
                    inner.conns.add(tenant, peer, ha, sim.now());
                    inner.stats.reconnects += 1;
                    if warm {
                        inner.stats.prewarm_claims += 1;
                    } else {
                        inner.stats.cold_connects += 1;
                    }
                }
                if let Some(peer_rc) = peer_engine.upgrade() {
                    peer_rc.borrow_mut().conns.add(tenant, node, hb, sim.now());
                }
                // The fabric flips the QPs to Ready at now + delay; that
                // event was scheduled first, so by FIFO same-time ordering
                // the new connection is usable when the flush runs.
                let rc2 = rc.clone();
                sim.schedule_after(delay, move |sim| {
                    Dne::finish_reconnect(&rc2, sim, tenant, peer);
                });
            }
            Err(_) => Dne::abort_reconnect(rc, sim, tenant, peer),
        }
    }

    /// The reconnect came up: flush every retry parked on `(tenant, peer)`
    /// immediately, cancelling their backoff timers (a cancelled timer that
    /// already raced into the queue fires as a no-op).
    fn finish_reconnect(rc: &Rc<RefCell<Inner>>, sim: &mut Sim, tenant: TenantId, peer: NodeId) {
        let ids = {
            let mut inner = rc.borrow_mut();
            inner.reconnecting.remove(&(tenant, peer));
            let mut ids: Vec<u64> = inner
                .retries
                .iter()
                .filter(|(_, p)| p.tenant == tenant && p.peer == peer)
                .map(|(id, _)| *id)
                .collect();
            // HashMap iteration order is not deterministic; the flush order
            // must be.
            ids.sort_unstable();
            for id in &ids {
                if let Some(p) = inner.retries.get_mut(id) {
                    p.avoid = None; // the failed QP is history; pick freely
                }
            }
            ids
        };
        for id in ids {
            let handle = rc.borrow_mut().retry_timers.remove(&id);
            if let Some(h) = handle {
                sim.cancel(h);
            }
            Dne::run_retry(rc, sim, id);
        }
    }

    /// The reconnect could not even start: fail every retry parked on the
    /// pair (defensive; `connect` only errors on unknown nodes/queues).
    fn abort_reconnect(rc: &Rc<RefCell<Inner>>, sim: &mut Sim, tenant: TenantId, peer: NodeId) {
        let failures = {
            let mut inner = rc.borrow_mut();
            inner.reconnecting.remove(&(tenant, peer));
            let mut ids: Vec<u64> = inner
                .retries
                .iter()
                .filter(|(_, p)| p.tenant == tenant && p.peer == peer)
                .map(|(id, _)| *id)
                .collect();
            ids.sort_unstable();
            let mut failures = Vec::with_capacity(ids.len());
            for id in ids {
                inner.retry_timers.remove(&id);
                if let Some(p) = inner.retries.remove(&id) {
                    let f = inner.give_up(
                        sim.now(),
                        p.tenant,
                        p.dst_fn,
                        p.req_id,
                        p.attempts,
                        p.first_at,
                        FailureReason::NoConnection,
                        Some(p.peer),
                    );
                    failures.push(f);
                }
            }
            failures
        };
        for f in failures {
            Dne::notify_failure(rc, sim, f);
        }
    }

    /// Invokes the installed failure handler (outside any engine borrow).
    fn notify_failure(rc: &Rc<RefCell<Inner>>, sim: &mut Sim, failure: DeliveryFailure) {
        let handler = rc.borrow().failure_handler.clone();
        if let Some(h) = handler {
            h(sim, failure);
        }
    }

    /// Installs the callback invoked when a send exhausts its recovery
    /// budget. All clones of this engine share the handler.
    pub fn set_failure_handler(&self, handler: DeliveryFailureHandler) {
        self.inner.borrow_mut().failure_handler = Some(handler);
    }

    /// Reports a failure discovered *outside* the engine (e.g. the runtime
    /// cancelling an expired request at function dispatch) through the
    /// engine's installed failure handler, so every failure — transport or
    /// deadline — reaches the same upstream sink. Deadline cancellations
    /// are folded into the engine's deadline accounting.
    pub fn report_failure(&self, sim: &mut Sim, failure: DeliveryFailure) {
        {
            let mut inner = self.inner.borrow_mut();
            if failure.reason == FailureReason::DeadlineExceeded {
                inner.stats.deadline_drops += 1;
                if let Some(st) = inner.tenants.get_mut(&failure.tenant) {
                    st.failures.deadline_drops += 1;
                }
                if inner.tracer.is_enabled() {
                    let node = inner.node.0 as u32;
                    inner.tracer.span(
                        failure.req_id,
                        failure.tenant.0,
                        node,
                        Stage::DeadlineDrop,
                        sim.now(),
                        sim.now(),
                    );
                }
            }
        }
        Dne::notify_failure(&self.inner, sim, failure);
    }

    /// Returns per-tenant failure accounting (drops, retries, give-ups).
    pub fn tenant_failure_stats(&self, tenant: TenantId) -> TenantFailureStats {
        self.inner
            .borrow()
            .tenants
            .get(&tenant)
            .map(|t| t.failures)
            .unwrap_or_default()
    }

    /// Returns a snapshot of the engine's statistics.
    pub fn stats(&self) -> DneStats {
        self.inner.borrow().stats.clone()
    }

    /// Attaches a span tracer; pass [`Tracer::disabled`] to turn tracing
    /// back off. All clones of this engine share the tracer.
    pub fn set_tracer(&self, tracer: Tracer) {
        self.inner.borrow_mut().tracer = tracer;
    }

    /// Returns a handle to the engine's tracer.
    pub fn tracer(&self) -> Tracer {
        self.inner.borrow().tracer.clone()
    }

    /// Registers fleet histogram sinks (with exemplars) for the engine's
    /// latency sites; pass `DneObsSink::default()` to detach them.
    pub fn set_obs_sink(&self, sink: DneObsSink) {
        self.inner.borrow_mut().obs_sink = sink;
    }

    /// Per-pipeline-stage busy core-nanoseconds of the engine's SoC
    /// processor, in first-use order.
    pub fn stage_busy(&self) -> Vec<(&'static str, u128)> {
        self.inner.borrow().processor.stage_busy().to_vec()
    }

    /// Returns the engine's total work backlog (TX queue + unpolled CQEs) —
    /// the occupancy of the engine's side of the Comch channel.
    pub fn queued(&self) -> usize {
        self.inner.borrow().queued()
    }

    /// Returns the tenant's current TX-queue backlog.
    pub fn tenant_backlog(&self, tenant: TenantId) -> usize {
        self.inner.borrow().txq.tenant_backlog(tenant)
    }

    /// Returns the tenant's current DWRR deficit (`None` under FCFS or for
    /// unknown tenants).
    pub fn dwrr_deficit(&self, tenant: TenantId) -> Option<f64> {
        self.inner.borrow().txq.deficit_of(tenant)
    }

    /// Returns `(hits, misses)` of the connection pool's shadow-QP picker.
    pub fn conn_hit_miss(&self) -> (u64, u64) {
        self.inner.borrow().conns.hit_miss()
    }

    /// Returns how many idle QPs the completion reaper has deactivated.
    pub fn conn_deactivations(&self) -> u64 {
        self.inner.borrow().conns.deactivations()
    }

    /// Installs the connection pool's elastic lifecycle config (active-set
    /// capacity and idle-age teardown). Takes effect from the next pick or
    /// reaper sweep; already-active QPs are not retroactively evicted.
    pub fn set_elastic_config(&self, cfg: ElasticConfig) {
        self.inner.borrow_mut().conns.set_config(cfg);
    }

    /// Returns how many active QPs the capacity bound has demoted back to
    /// shadow state (LRU evictions — the thrash signal).
    pub fn conn_evictions(&self) -> u64 {
        self.inner.borrow().conns.evictions()
    }

    /// Returns how many pooled connections idle-age teardown destroyed.
    pub fn conn_teardowns(&self) -> u64 {
        self.inner.borrow().conns.teardowns()
    }

    /// Returns how many teardown sweeps ran with the adaptively shrunk
    /// idle age (eviction-rate spikes; `0` unless adaptive teardown is
    /// enabled in the elastic config).
    pub fn conn_adaptive_shrinks(&self) -> u64 {
        self.inner.borrow().conns.adaptive_shrinks()
    }

    /// Stocks `n` pre-warmed connections toward `peer` in the background.
    /// A later pool-dry reconnect claims one in microseconds instead of
    /// paying the full RC establishment delay.
    pub fn prewarm_link(&self, sim: &mut Sim, peer: NodeId, n: usize) -> Result<(), DneError> {
        let (fabric, node) = {
            let inner = self.inner.borrow();
            (inner.fabric.clone(), inner.node)
        };
        fabric.prewarm_link(sim, node, peer, n)?;
        Ok(())
    }

    /// Arms a periodic idle-QP reaper sweeping every `every`.
    ///
    /// The engine already reaps opportunistically on send completions; the
    /// periodic sweep additionally catches QPs that went idle with no
    /// further completion traffic to piggyback on (e.g. after a tenant's
    /// burst ends). Idempotent while armed.
    pub fn start_conn_reaper(&self, sim: &mut Sim, every: SimDuration) {
        if self.inner.borrow().conn_reaper.is_some() {
            return;
        }
        let weak: Weak<RefCell<Inner>> = Rc::downgrade(&self.inner);
        let ticker = Ticker::start(sim, every, move |sim| {
            if let Some(rc) = weak.upgrade() {
                let mut inner = rc.borrow_mut();
                let fabric = inner.fabric.clone();
                inner.conns.deactivate_idle(&fabric, sim.now());
                // Lazy teardown: connections idle past the configured age
                // release their fabric state entirely (no-op unless an
                // elastic config with an idle age is installed).
                inner.conns.teardown_idle(&fabric, sim.now());
            }
        });
        self.inner.borrow_mut().conn_reaper = Some(ticker);
    }

    /// Disarms the periodic reaper, descheduling its pending sweep.
    pub fn stop_conn_reaper(&self, sim: &mut Sim) {
        if let Some(t) = self.inner.borrow_mut().conn_reaper.take() {
            t.cancel_in(sim);
        }
    }

    /// Returns `(hits, misses)` of the shadow-QP picker for one tenant.
    pub fn conn_hit_miss_of(&self, tenant: TenantId) -> (u64, u64) {
        self.inner.borrow().conns.hit_miss_of(tenant)
    }

    /// Returns the tenants registered with this engine, sorted.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        let mut ids: Vec<TenantId> = self.inner.borrow().tenants.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Returns `(tx, rx)` message counters for a tenant.
    pub fn tenant_counters(&self, tenant: TenantId) -> (u64, u64) {
        self.inner
            .borrow()
            .tenants
            .get(&tenant)
            .map(|t| (t.tx_count, t.rx_count))
            .unwrap_or((0, 0))
    }

    /// Returns the tenant's configured weight.
    pub fn tenant_weight(&self, tenant: TenantId) -> Option<u32> {
        self.inner.borrow().tenants.get(&tenant).map(|t| t.weight)
    }

    /// Updates a tenant's scheduling weight at runtime (§4.2: the userspace
    /// engine makes policy customization trivial).
    pub fn set_tenant_weight(&self, tenant: TenantId, weight: u32) -> Result<(), DneError> {
        let mut inner = self.inner.borrow_mut();
        let state = inner
            .tenants
            .get_mut(&tenant)
            .ok_or(DneError::UnknownTenant(tenant))?;
        state.weight = weight;
        inner.txq.register(tenant, weight);
        Ok(())
    }

    /// Returns engine core utilization over `[a, b]` (0..=cores).
    pub fn utilization_cores(&self, a: SimTime, b: SimTime) -> f64 {
        self.inner.borrow().processor.utilization_cores(a, b)
    }

    /// Returns the number of work items processed.
    pub fn items_processed(&self) -> u64 {
        self.inner.borrow().processor.jobs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_sim::mmap::doca_mmap_export_full;
    use membuf::pool::PoolConfig;
    use rdma_sim::RdmaCosts;
    use std::cell::RefCell as StdRefCell;

    fn mk_pool(tenant: u16) -> BufferPool {
        let mut cfg = PoolConfig::new(TenantId(tenant), 0, 8192, 512);
        cfg.segment_size = 512 * 1024;
        BufferPool::new(cfg).unwrap()
    }

    fn mapped(pool: &BufferPool) -> MappedPool {
        dpu_mmap(pool)
    }

    fn dpu_mmap(pool: &BufferPool) -> MappedPool {
        dpu_sim::mmap::doca_mmap_create_from_export(&doca_mmap_export_full(pool).unwrap()).unwrap()
    }

    struct TwoNodes {
        sim: Sim,
        dne_a: Dne,
        dne_b: Dne,
        pool_a: BufferPool,
        pool_b: BufferPool,
        tenant: TenantId,
    }

    /// Two nodes, one tenant, fn 1 on node A and fn 2 on node B.
    fn setup(cfg: DneConfig) -> TwoNodes {
        let fabric = Fabric::new(RdmaCosts::default());
        let mut sim = Sim::new();
        let a = fabric.add_node();
        let b = fabric.add_node();
        let tenant = TenantId(1);
        let pool_a = mk_pool(1);
        let pool_b = mk_pool(1);
        let dne_a = Dne::new(fabric.clone(), a, cfg.clone()).unwrap();
        let dne_b = Dne::new(fabric, b, cfg).unwrap();
        dne_a.register_tenant(tenant, 1, &mapped(&pool_a)).unwrap();
        dne_b.register_tenant(tenant, 1, &mapped(&pool_b)).unwrap();
        for d in [&dne_a, &dne_b] {
            d.set_route(1, a);
            d.set_route(2, b);
        }
        Dne::connect_pair(&mut sim, &dne_a, &dne_b, tenant, 2).unwrap();
        sim.run(); // connections come up
        TwoNodes {
            sim,
            dne_a,
            dne_b,
            pool_a,
            pool_b,
            tenant,
        }
    }

    #[test]
    fn descriptor_crosses_nodes_end_to_end() {
        let mut env = setup(DneConfig::nadino_dne());
        let received: Rc<StdRefCell<Vec<Vec<u8>>>> = Rc::new(StdRefCell::new(Vec::new()));
        let sink = received.clone();
        let pool_b = env.pool_b.clone();
        env.dne_b.register_endpoint(
            2,
            Rc::new(move |_sim, desc| {
                let buf = pool_b.redeem(desc).expect("valid descriptor");
                sink.borrow_mut().push(buf.as_slice().to_vec());
            }),
        );
        // Function 1 on node A sends a payload to function 2 on node B.
        let mut buf = env.pool_a.get().unwrap();
        buf.write_payload(b"hello across nodes").unwrap();
        let desc = buf.into_desc(2);
        env.dne_a.submit(&mut env.sim, env.tenant, desc);
        env.sim.run();
        assert_eq!(received.borrow().len(), 1);
        assert_eq!(received.borrow()[0], b"hello across nodes");
        let sa = env.dne_a.stats();
        assert_eq!(sa.submitted, 1);
        assert_eq!(sa.tx_posted, 1);
        assert_eq!(sa.send_completions, 1);
        let sb = env.dne_b.stats();
        assert_eq!(sb.rx_delivered, 1);
        assert_eq!(sb.drops, 0);
        // Sender buffer was recycled after the send completion (the other
        // 256 buffers sit pre-posted in the receive queue).
        let prepost = DneConfig::nadino_dne().prepost_depth as u32;
        assert_eq!(env.pool_a.stats().free, env.pool_a.capacity() - prepost);
    }

    #[test]
    fn periodic_conn_reaper_sweeps_and_deschedules_on_stop() {
        let mut env = setup(DneConfig::nadino_dne());
        let pool_b = env.pool_b.clone();
        env.dne_b.register_endpoint(
            2,
            Rc::new(move |_sim, desc| {
                let _ = pool_b.redeem(desc).expect("valid");
            }),
        );
        env.dne_a
            .start_conn_reaper(&mut env.sim, SimDuration::from_micros(100));
        env.dne_a
            .start_conn_reaper(&mut env.sim, SimDuration::from_micros(100)); // idempotent
        assert_eq!(env.sim.pending_events(), 1, "one sweep armed");
        let buf = env.pool_a.get().unwrap();
        env.dne_a.submit(&mut env.sim, env.tenant, buf.into_desc(2));
        env.sim.run_for(SimDuration::from_millis(1));
        assert!(
            env.dne_a.conn_deactivations() >= 1,
            "sweep reaped the drained QP"
        );
        env.dne_a.stop_conn_reaper(&mut env.sim);
        assert_eq!(
            env.sim.pending_events(),
            0,
            "pending sweep descheduled, not zombied"
        );
        env.dne_a.stop_conn_reaper(&mut env.sim); // idempotent
        env.sim.run();
    }

    #[test]
    fn echo_latency_matches_paper_calibration() {
        // Fig. 12: two DNEs as echo client/server, two-sided RDMA, 64 B
        // messages → ~8.4us RTT.
        let mut env = setup(DneConfig::nadino_dne());
        let done_at: Rc<StdRefCell<Option<SimTime>>> = Rc::new(StdRefCell::new(None));

        // Echo server on node B: bounce the payload back to fn 1.
        let pool_b = env.pool_b.clone();
        let dne_b = env.dne_b.clone();
        let tenant = env.tenant;
        env.dne_b.register_endpoint(
            2,
            Rc::new(move |sim, desc| {
                let buf = pool_b.redeem(desc).expect("valid");
                dne_b.submit(sim, tenant, buf.into_desc(1));
            }),
        );
        // Client completion on node A.
        let pool_a = env.pool_a.clone();
        let done = done_at.clone();
        env.dne_a.register_endpoint(
            1,
            Rc::new(move |sim, desc| {
                let _ = pool_a.redeem(desc).expect("valid");
                *done.borrow_mut() = Some(sim.now());
            }),
        );
        let start = env.sim.now();
        let mut buf = env.pool_a.get().unwrap();
        buf.write_payload(&[7u8; 64]).unwrap();
        env.dne_a.submit(&mut env.sim, env.tenant, buf.into_desc(2));
        env.sim.run();
        let finish = done_at.borrow().expect("echo completed");
        let rtt = (finish - start).as_micros_f64();
        // The Comch hop is part of the function path, not the Fig. 12 echo
        // (which runs inside the DNEs); accept a broad band here and let the
        // experiment code measure the exact configuration.
        assert!(rtt > 5.0 && rtt < 40.0, "echo RTT = {rtt}us");
    }

    #[test]
    fn local_route_stays_on_node() {
        let mut env = setup(DneConfig::nadino_dne());
        let got: Rc<StdRefCell<u32>> = Rc::new(StdRefCell::new(0));
        let sink = got.clone();
        let pool_a = env.pool_a.clone();
        env.dne_a.register_endpoint(
            1,
            Rc::new(move |_sim, desc| {
                let _ = pool_a.redeem(desc).unwrap();
                *sink.borrow_mut() += 1;
            }),
        );
        // fn 1 is on node A; submitting to the engine with dst=1 loops back.
        let buf = env.pool_a.get().unwrap();
        env.dne_a.submit(&mut env.sim, env.tenant, buf.into_desc(1));
        env.sim.run();
        assert_eq!(*got.borrow(), 1);
        let (tx, _, _) = {
            let f = {
                let i = env.dne_a.inner.borrow();
                i.fabric.clone()
            };
            f.node_counters(NodeId(0))
        };
        assert_eq!(tx, 0, "no RDMA message was sent");
    }

    #[test]
    fn unknown_route_drops_and_recycles() {
        let mut env = setup(DneConfig::nadino_dne());
        let buf = env.pool_a.get().unwrap();
        env.dne_a
            .submit(&mut env.sim, env.tenant, buf.into_desc(99));
        env.sim.run();
        assert_eq!(env.dne_a.stats().drops, 1);
        let prepost = DneConfig::nadino_dne().prepost_depth as u32;
        assert_eq!(env.pool_a.stats().free, env.pool_a.capacity() - prepost);
    }

    #[test]
    fn missing_endpoint_on_receiver_drops_and_recycles() {
        let mut env = setup(DneConfig::nadino_dne());
        let buf = env.pool_a.get().unwrap();
        env.dne_a.submit(&mut env.sim, env.tenant, buf.into_desc(2));
        env.sim.run();
        assert_eq!(env.dne_b.stats().drops, 1);
        // All of B's non-preposted buffers are back (prepost steady state:
        // the consumed receive buffer was replenished from the free list).
        let prepost = DneConfig::nadino_dne().prepost_depth as u32;
        let stats = env.pool_b.stats();
        assert_eq!(stats.free, env.pool_b.capacity() - prepost);
    }

    #[test]
    fn duplicate_tenant_registration_fails() {
        let env = setup(DneConfig::nadino_dne());
        let err = env
            .dne_a
            .register_tenant(env.tenant, 1, &mapped(&env.pool_a))
            .unwrap_err();
        assert_eq!(err, DneError::TenantExists(env.tenant));
    }

    #[test]
    fn on_path_is_slower_than_off_path() {
        let run = |cfg: DneConfig| -> f64 {
            let mut env = setup(cfg);
            let done_at: Rc<StdRefCell<Option<SimTime>>> = Rc::new(StdRefCell::new(None));
            let pool_b = env.pool_b.clone();
            let dne_b = env.dne_b.clone();
            let tenant = env.tenant;
            env.dne_b.register_endpoint(
                2,
                Rc::new(move |sim, desc| {
                    let buf = pool_b.redeem(desc).expect("valid");
                    dne_b.submit(sim, tenant, buf.into_desc(1));
                }),
            );
            let pool_a = env.pool_a.clone();
            let done = done_at.clone();
            env.dne_a.register_endpoint(
                1,
                Rc::new(move |sim, desc| {
                    let _ = pool_a.redeem(desc).unwrap();
                    *done.borrow_mut() = Some(sim.now());
                }),
            );
            let start = env.sim.now();
            let mut buf = env.pool_a.get().unwrap();
            buf.write_payload(&[1u8; 1024]).unwrap();
            env.dne_a.submit(&mut env.sim, env.tenant, buf.into_desc(2));
            env.sim.run();
            let finish = done_at.borrow().unwrap();
            (finish - start).as_micros_f64()
        };
        let off = run(DneConfig::nadino_dne());
        let on = run(DneConfig::on_path_dne());
        assert!(
            on > off,
            "on-path ({on}us) must be slower than off-path ({off}us)"
        );
    }

    #[test]
    fn tracing_records_pipeline_stages_and_stage_histograms() {
        let mut env = setup(DneConfig::nadino_dne());
        let tracer = Tracer::enabled();
        env.dne_a.set_tracer(tracer.clone());
        env.dne_b.set_tracer(tracer.clone());
        let pool_b = env.pool_b.clone();
        env.dne_b.register_endpoint(
            2,
            Rc::new(move |_sim, desc| {
                let _ = pool_b.redeem(desc).expect("valid descriptor");
            }),
        );
        // Request-id convention: first eight payload bytes, little-endian.
        // The test plays ingress: it stamps the sampled bit the gateway
        // would normally decide at admission.
        let mut payload = [0u8; obs::CTX_REGION];
        payload[..8].copy_from_slice(&42u64.to_le_bytes());
        obs::ctx::write_ctx(&mut payload, 0, true);
        let mut buf = env.pool_a.get().unwrap();
        buf.write_payload(&payload).unwrap();
        env.dne_a.submit(&mut env.sim, env.tenant, buf.into_desc(2));
        env.sim.run();

        let stages = tracer.stages_of(42);
        for want in [
            Stage::ComchSubmit,
            Stage::DwrrQueue,
            Stage::DneTx,
            Stage::ConnPick,
            Stage::Fabric,
            Stage::RxCompletion,
            Stage::RbrRecover,
            Stage::ComchDeliver,
        ] {
            assert!(
                stages.contains(&want),
                "missing stage {want:?} in {stages:?}"
            );
        }
        // Time attribution ranks the expensive legs (Comch crossing and
        // fabric flight) above the instant markers.
        let totals = tracer.stage_totals();
        assert!(totals[0].total_ns > 1_000, "top stage has real duration");
        let fabric = totals.iter().find(|t| t.stage == Stage::Fabric).unwrap();
        assert!(
            fabric.mean_us() > 1.0,
            "fabric leg = {}us",
            fabric.mean_us()
        );

        let stats = env.dne_a.stats();
        assert_eq!(stats.tx_queue_wait.count(), 1);
        assert!(stats.sched_delay.count() >= 2, "TX + send-completion items");
        assert_eq!(stats.post_to_completion.count(), 1);
        assert!(stats.post_to_completion.summary().mean_us > 1.0);

        let (hits, misses) = env.dne_a.conn_hit_miss();
        assert_eq!(hits + misses, 1, "one connection pick");
        assert!(
            env.dne_a.conn_deactivations() >= 1,
            "reaper ran after drain"
        );
    }

    #[test]
    fn disabled_tracer_keeps_behaviour_and_records_nothing() {
        let mut env = setup(DneConfig::nadino_dne());
        let pool_b = env.pool_b.clone();
        env.dne_b.register_endpoint(
            2,
            Rc::new(move |_sim, desc| {
                let _ = pool_b.redeem(desc).expect("valid");
            }),
        );
        let buf = env.pool_a.get().unwrap();
        env.dne_a.submit(&mut env.sim, env.tenant, buf.into_desc(2));
        env.sim.run();
        assert!(env.dne_a.tracer().is_empty());
        // The always-on stage histograms still populate.
        assert_eq!(env.dne_a.stats().post_to_completion.count(), 1);
        assert_eq!(env.dne_b.stats().rx_delivered, 1);
    }

    #[test]
    fn engine_utilization_is_tracked() {
        let mut env = setup(DneConfig::nadino_dne());
        env.dne_b.register_endpoint(2, Rc::new(|_, _| {}));
        let t0 = env.sim.now();
        for _ in 0..50 {
            let buf = env.pool_a.get().unwrap();
            env.dne_a.submit(&mut env.sim, env.tenant, buf.into_desc(2));
        }
        env.sim.run();
        let u = env.dne_a.utilization_cores(t0, env.sim.now());
        assert!(u > 0.0 && u <= 1.0, "utilization = {u}");
        assert!(env.dne_a.items_processed() >= 100, "50 TX + 50 send CQEs");
    }
}
// Failover behaviour under injected connection faults.
#[cfg(test)]
mod failover_tests {
    use super::*;
    use dpu_sim::mmap::{doca_mmap_create_from_export, doca_mmap_export_full};
    use membuf::pool::PoolConfig;
    use rdma_sim::RdmaCosts;
    use std::cell::RefCell as StdRefCell;

    #[test]
    fn dne_fails_over_to_surviving_connections() {
        let fabric = Fabric::new(RdmaCosts::default());
        let mut sim = Sim::new();
        let a = fabric.add_node();
        let b = fabric.add_node();
        let tenant = TenantId(1);
        let mk_pool = || {
            let mut cfg = PoolConfig::new(tenant, 0, 4096, 256);
            cfg.segment_size = 256 * 1024;
            BufferPool::new(cfg).unwrap()
        };
        let pool_a = mk_pool();
        let pool_b = mk_pool();
        let dne_a = Dne::new(fabric.clone(), a, DneConfig::nadino_dne()).unwrap();
        let dne_b = Dne::new(fabric.clone(), b, DneConfig::nadino_dne()).unwrap();
        for (dne, pool) in [(&dne_a, &pool_a), (&dne_b, &pool_b)] {
            let mapped =
                doca_mmap_create_from_export(&doca_mmap_export_full(pool).unwrap()).unwrap();
            dne.register_tenant(tenant, 1, &mapped).unwrap();
        }
        Dne::connect_pair(&mut sim, &dne_a, &dne_b, tenant, 3).unwrap();
        sim.run();
        dne_a.set_route(2, b);
        dne_b.set_route(2, b);
        let delivered: Rc<StdRefCell<u32>> = Rc::new(StdRefCell::new(0));
        let sink = delivered.clone();
        let pb = pool_b.clone();
        dne_b.register_endpoint(
            2,
            Rc::new(move |_sim, desc| {
                let _ = pb.redeem(desc).unwrap();
                *sink.borrow_mut() += 1;
            }),
        );

        // Break two of the three pooled connections (A-side handles).
        let conns: Vec<QpHandle> = {
            let inner = dne_a.inner.borrow();
            inner.conns.conns(tenant, b).to_vec()
        };
        assert_eq!(conns.len(), 3);
        fabric.inject_qp_error(conns[0]).unwrap();
        fabric.inject_qp_error(conns[1]).unwrap();

        for _ in 0..20 {
            let buf = pool_a.get().unwrap();
            dne_a.submit(&mut sim, tenant, buf.into_desc(2));
        }
        sim.run();
        assert_eq!(*delivered.borrow(), 20, "traffic rides the survivor");
        assert_eq!(dne_a.stats().drops, 0);

        // Break the last connection: the pool runs dry, the send parks, a
        // background reconnect (tens of ms) brings a fresh QP up, and the
        // parked send flushes through it — no drop.
        fabric.inject_qp_error(conns[2]).unwrap();
        let buf = pool_a.get().unwrap();
        dne_a.submit(&mut sim, tenant, buf.into_desc(2));
        sim.run();
        assert_eq!(*delivered.borrow(), 21, "reconnect recovers the send");
        let stats = dne_a.stats();
        assert_eq!(stats.drops, 0, "nothing is lost");
        assert_eq!(stats.reconnects, 1);
        assert_eq!(pool_a.stats().in_flight, 0);
    }

    /// Two engines wired for recovery tests, with the standard fn-2-on-B
    /// routing and a delivery counter on B.
    #[allow(clippy::type_complexity)]
    fn recovery_setup(
        cfg: DneConfig,
        conns: usize,
    ) -> (
        Fabric,
        Sim,
        Dne,
        Dne,
        BufferPool,
        BufferPool,
        TenantId,
        Rc<StdRefCell<u32>>,
    ) {
        let fabric = Fabric::new(RdmaCosts::default());
        let mut sim = Sim::new();
        let a = fabric.add_node();
        let b = fabric.add_node();
        let tenant = TenantId(1);
        let mk_pool = || {
            let mut pc = PoolConfig::new(tenant, 0, 4096, 256);
            pc.segment_size = 256 * 1024;
            BufferPool::new(pc).unwrap()
        };
        let pool_a = mk_pool();
        let pool_b = mk_pool();
        let dne_a = Dne::new(fabric.clone(), a, cfg.clone()).unwrap();
        let dne_b = Dne::new(fabric.clone(), b, cfg).unwrap();
        for (dne, pool) in [(&dne_a, &pool_a), (&dne_b, &pool_b)] {
            let mapped =
                doca_mmap_create_from_export(&doca_mmap_export_full(pool).unwrap()).unwrap();
            dne.register_tenant(tenant, 1, &mapped).unwrap();
        }
        Dne::connect_pair(&mut sim, &dne_a, &dne_b, tenant, conns).unwrap();
        sim.run();
        dne_a.set_route(2, b);
        dne_b.set_route(2, b);
        let delivered: Rc<StdRefCell<u32>> = Rc::new(StdRefCell::new(0));
        let sink = delivered.clone();
        let pb = pool_b.clone();
        dne_b.register_endpoint(
            2,
            Rc::new(move |_sim, desc| {
                let _ = pb.redeem(desc).unwrap();
                *sink.borrow_mut() += 1;
            }),
        );
        (fabric, sim, dne_a, dne_b, pool_a, pool_b, tenant, delivered)
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_typed_failure() {
        use crate::types::{DeliveryFailure, FailureReason, TenantFailureStats};
        let (fabric, mut sim, dne_a, _dne_b, pool_a, _pool_b, tenant, delivered) =
            recovery_setup(DneConfig::nadino_dne(), 2);
        let (a, b) = (NodeId(0), NodeId(1));
        fabric.with_fault_plane(|fp| fp.set_link_loss(a, b, 1.0));
        let failures: Rc<StdRefCell<Vec<DeliveryFailure>>> = Rc::new(StdRefCell::new(Vec::new()));
        let fsink = failures.clone();
        dne_a.set_failure_handler(Rc::new(move |_sim, f| fsink.borrow_mut().push(f)));

        let mut buf = pool_a.get().unwrap();
        buf.write_payload(&77u64.to_le_bytes()).unwrap();
        dne_a.submit(&mut sim, tenant, buf.into_desc(2));
        sim.run();

        assert_eq!(*delivered.borrow(), 0);
        let stats = dne_a.stats();
        assert_eq!(stats.retries, 3, "budget of 3 retries was spent");
        assert_eq!(
            stats.failovers, 3,
            "each retry rode a different QP than the one that failed"
        );
        assert_eq!(stats.give_ups, 1);
        assert_eq!(stats.drops, 1);
        assert_eq!(stats.retry_latency.count(), 1);
        let f = failures.borrow()[0];
        assert_eq!(f.tenant, tenant);
        assert_eq!(f.dst_fn, 2);
        assert_eq!(f.req_id, 77, "failure carries the request id");
        assert_eq!(f.attempts, 4, "initial post + three retries");
        assert_eq!(f.reason, FailureReason::RetryBudgetExhausted);
        assert_eq!(
            dne_a.tenant_failure_stats(tenant),
            TenantFailureStats {
                drops: 1,
                retries: 3,
                give_ups: 1,
                deadline_drops: 0,
            }
        );
        // The abandoned send's buffer was recycled, not leaked.
        assert_eq!(pool_a.stats().in_flight, 0);
    }

    #[test]
    fn reconnect_flush_cancels_backoff_timers_and_retries_fire_as_noops() {
        use crate::types::DneConfig;
        let mut cfg = DneConfig::nadino_dne();
        // Long backoff so parked retries are still pending when the
        // reconnect-driven flush overtakes them.
        cfg.retry_backoff = SimDuration::from_millis(50);
        let (fabric, mut sim, dne_a, _dne_b, pool_a, _pool_b, tenant, delivered) =
            recovery_setup(cfg, 2);
        let (a, b) = (NodeId(0), NodeId(1));

        // Two sends vanish on the wire and park with ~50 ms backoff timers.
        fabric.with_fault_plane(|fp| fp.set_link_loss(a, b, 1.0));
        for _ in 0..2 {
            let buf = pool_a.get().unwrap();
            dne_a.submit(&mut sim, tenant, buf.into_desc(2));
        }
        sim.run_for(SimDuration::from_millis(5));
        assert_eq!(dne_a.stats().retries, 2, "both sends parked for retry");

        // Heal the wire but kill every pooled QP: the next send finds the
        // pool dry and starts a background reconnect.
        fabric.with_fault_plane(|fp| fp.set_link_loss(a, b, 0.0));
        let conns: Vec<QpHandle> = {
            let inner = dne_a.inner.borrow();
            inner.conns.conns(tenant, b).to_vec()
        };
        for qp in conns {
            fabric.inject_qp_error(qp).unwrap();
        }
        let buf = pool_a.get().unwrap();
        dne_a.submit(&mut sim, tenant, buf.into_desc(2));
        sim.run();

        // The reconnect (20 ms) finished well before the 50 ms backoff
        // timers; the flush cancelled them and re-posted all three parked
        // sends exactly once — a timer that still fired was a no-op.
        assert_eq!(*delivered.borrow(), 3, "no loss and no duplicates");
        let stats = dne_a.stats();
        assert_eq!(stats.drops, 0);
        assert_eq!(stats.reconnects, 1, "one reconnect covers the pair");
        assert_eq!(stats.retries, 2, "the flush re-posts without re-parking");
        assert_eq!(pool_a.stats().in_flight, 0);
    }
}
#[cfg(test)]
mod weight_tests {
    use super::*;
    use dpu_sim::mmap::{doca_mmap_create_from_export, doca_mmap_export_full};
    use membuf::pool::PoolConfig;
    use rdma_sim::RdmaCosts;

    #[test]
    fn tenant_weight_can_change_at_runtime() {
        let fabric = Fabric::new(RdmaCosts::default());
        let node = fabric.add_node();
        let dne = Dne::new(fabric, node, DneConfig::nadino_dne()).unwrap();
        let tenant = TenantId(1);
        let mut cfg = PoolConfig::new(tenant, 0, 256, 16);
        cfg.segment_size = 4096;
        let pool = BufferPool::new(cfg).unwrap();
        let mapped = doca_mmap_create_from_export(&doca_mmap_export_full(&pool).unwrap()).unwrap();
        dne.register_tenant(tenant, 1, &mapped).unwrap();
        assert_eq!(dne.tenant_weight(tenant), Some(1));
        dne.set_tenant_weight(tenant, 6).unwrap();
        assert_eq!(dne.tenant_weight(tenant), Some(6));
        assert_eq!(
            dne.set_tenant_weight(TenantId(9), 2).unwrap_err(),
            DneError::UnknownTenant(TenantId(9))
        );
    }
}
