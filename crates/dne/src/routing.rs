//! The inter-node routing table.
//!
//! The TX stage (§3.2) "determines the destination node via the inter-node
//! routing table". Keys are function identifiers; values are fabric node
//! identifiers. The control plane (placement) populates it; the data plane
//! only reads.

use std::collections::HashMap;

use rdma_sim::NodeId;

/// Maps function ids to the node hosting them.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    routes: HashMap<u16, NodeId>,
}

impl RoutingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RoutingTable::default()
    }

    /// Installs (or moves) a function's placement.
    pub fn set(&mut self, fn_id: u16, node: NodeId) {
        self.routes.insert(fn_id, node);
    }

    /// Removes a function's route, returning its previous node.
    pub fn remove(&mut self, fn_id: u16) -> Option<NodeId> {
        self.routes.remove(&fn_id)
    }

    /// Looks up the node hosting `fn_id`.
    pub fn lookup(&self, fn_id: u16) -> Option<NodeId> {
        self.routes.get(&fn_id).copied()
    }

    /// Returns `true` if `fn_id` is placed on `node`.
    pub fn is_local(&self, fn_id: u16, node: NodeId) -> bool {
        self.lookup(fn_id) == Some(node)
    }

    /// Returns the number of installed routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Returns `true` when no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_lookup_remove() {
        let mut rt = RoutingTable::new();
        assert!(rt.is_empty());
        rt.set(1, NodeId(0));
        rt.set(2, NodeId(1));
        assert_eq!(rt.lookup(1), Some(NodeId(0)));
        assert_eq!(rt.lookup(3), None);
        assert!(rt.is_local(2, NodeId(1)));
        assert!(!rt.is_local(2, NodeId(0)));
        assert_eq!(rt.remove(1), Some(NodeId(0)));
        assert_eq!(rt.len(), 1);
    }

    #[test]
    fn reinstall_moves_function() {
        let mut rt = RoutingTable::new();
        rt.set(5, NodeId(0));
        rt.set(5, NodeId(3));
        assert_eq!(rt.lookup(5), Some(NodeId(3)));
        assert_eq!(rt.len(), 1);
    }
}
