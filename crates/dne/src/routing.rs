//! The inter-node routing table, sharded by function id.
//!
//! The TX stage (§3.2) "determines the destination node via the inter-node
//! routing table". Keys are function identifiers; values are fabric node
//! identifiers. The control plane (placement) populates it; the data plane
//! only reads.
//!
//! Under elastic multi-tenancy the table holds one entry per tenant
//! function, and the population reaches 10^6 in the churn sweeps, so the
//! table is **sharded**: keys scatter across a power-of-two number of
//! independent sub-maps, keeping every per-shard map small enough that a
//! lookup touches a cache-sized structure, and keeping fail-over sub-linear
//! via a per-node reverse index (only the functions actually placed on the
//! dead node are visited, never the whole table).
//!
//! Beyond the primary placement, each function may carry a **backup
//! replica** route. When the health monitor declares a node down it calls
//! [`ShardedTable::fail_over`], which marks the node down and re-points
//! every function whose active route targets it at the best *healthy*
//! alternative — the backup replica if it is up, else the function's
//! displaced original primary if that has recovered. A function with no
//! healthy alternative is **stranded**: its route is left in place but
//! [`ShardedTable::resolve`] reports a typed
//! [`RouteError::DestinationDown`] instead of silently handing the engine
//! a dead node (the old behavior, which turned cascading failures into
//! retry storms against a corpse). [`ShardedTable::restore`] marks the
//! node healthy again, fails displaced primaries back home, and rescues
//! stranded functions for which the recovered node is a valid target.
//! Lookups never panic: a missing route is a typed [`RouteError`] the
//! engine turns into a delivery failure.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::hash::Hash;

use rdma_sim::NodeId;

/// A typed routing failure (no implicit panics on the lookup path).
///
/// `fn_id` is widened to `u64` so the same error type serves the engine's
/// on-wire `u16` function ids and the churn model's million-entry key
/// space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// No route — primary or backup — is installed for the function.
    UnknownDestination {
        /// The function id the lookup was for.
        fn_id: u64,
    },
    /// A route exists but its node is marked down and no healthy
    /// alternative (backup or displaced primary) was available at
    /// fail-over time.
    DestinationDown {
        /// The function id the lookup was for.
        fn_id: u64,
        /// The down node the route still points at.
        node: NodeId,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::UnknownDestination { fn_id } => {
                write!(f, "no route installed for function {fn_id}")
            }
            RouteError::DestinationDown { fn_id, node } => {
                write!(
                    f,
                    "function {fn_id} is stranded on down node {} (no healthy replica)",
                    node.0
                )
            }
        }
    }
}

/// A key type the sharded table can route on: the engine's on-wire `u16`
/// function ids, or the churn model's wider `u32` tenant-function ids.
pub trait RouteKey: Copy + Eq + Hash + Ord + std::fmt::Debug {
    /// The key as a plain integer, for shard scattering and diagnostics.
    fn as_u64(self) -> u64;
}

impl RouteKey for u16 {
    fn as_u64(self) -> u64 {
        self as u64
    }
}

impl RouteKey for u32 {
    fn as_u64(self) -> u64 {
        self as u64
    }
}

impl RouteKey for u64 {
    fn as_u64(self) -> u64 {
        self
    }
}

/// Default shard count: small enough to be negligible for a ten-function
/// microbenchmark, large enough that a million-entry table keeps each
/// shard in the tens of thousands.
pub const DEFAULT_SHARDS: usize = 64;

/// One shard: an independent slice of the key space.
#[derive(Debug, Clone, Default)]
struct Shard<K> {
    routes: HashMap<K, NodeId>,
    /// Standby replica placements, used when the active node fails.
    backups: HashMap<K, NodeId>,
    /// Original primary placements displaced by a fail-over, kept so
    /// recovery can restore them.
    displaced: HashMap<K, NodeId>,
}

impl<K> Shard<K> {
    fn new() -> Self {
        Shard {
            routes: HashMap::new(),
            backups: HashMap::new(),
            displaced: HashMap::new(),
        }
    }
}

/// Maps function ids to the node hosting them, sharded by key.
///
/// The engine's table is the [`RoutingTable`] alias (`u16` keys); the
/// churn model instantiates a wider key.
#[derive(Debug, Clone)]
pub struct ShardedTable<K: RouteKey = u16> {
    shards: Vec<Shard<K>>,
    /// `log2(shards.len())`, for the multiplicative shard hash.
    shard_bits: u32,
    /// Reverse index: which functions are actively routed at each node.
    /// Makes fail-over O(functions on the node), not O(table).
    by_node: HashMap<NodeId, BTreeSet<K>>,
    /// Nodes the health monitor has declared down.
    down: HashSet<NodeId>,
    /// Total installed routes across all shards.
    len: usize,
}

impl<K: RouteKey> Default for ShardedTable<K> {
    fn default() -> Self {
        ShardedTable::new()
    }
}

impl<K: RouteKey> ShardedTable<K> {
    /// Creates an empty table with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        ShardedTable::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an empty table with `shards` shards (rounded up to a power
    /// of two; minimum 1). A single-shard table is the flat reference the
    /// differential tests compare against.
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedTable {
            shards: (0..n).map(|_| Shard::new()).collect(),
            shard_bits: n.trailing_zeros(),
            by_node: HashMap::new(),
            down: HashSet::new(),
            len: 0,
        }
    }

    /// Returns the shard count (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a key scatters to. Multiplicative (Fibonacci)
    /// hashing: sequential ids — the common allocation pattern — spread
    /// uniformly instead of clustering in one shard.
    fn shard_index(&self, key: K) -> usize {
        if self.shard_bits == 0 {
            return 0;
        }
        (key.as_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - self.shard_bits)) as usize
    }

    fn shard(&self, key: K) -> &Shard<K> {
        &self.shards[self.shard_index(key)]
    }

    fn shard_mut(&mut self, key: K) -> &mut Shard<K> {
        let idx = self.shard_index(key);
        &mut self.shards[idx]
    }

    /// Re-points `key`'s route to `to`, keeping the reverse index in sync.
    /// Returns the previous node, if any.
    fn install(&mut self, key: K, to: NodeId) -> Option<NodeId> {
        let prev = self.shard_mut(key).routes.insert(key, to);
        if let Some(old) = prev {
            if old != to {
                if let Some(set) = self.by_node.get_mut(&old) {
                    set.remove(&key);
                    if set.is_empty() {
                        self.by_node.remove(&old);
                    }
                }
                self.by_node.entry(to).or_default().insert(key);
            }
        } else {
            self.len += 1;
            self.by_node.entry(to).or_default().insert(key);
        }
        prev
    }

    /// Installs (or moves) a function's placement. Clears any fail-over
    /// memory for the function: an explicit placement wins.
    pub fn set(&mut self, fn_id: K, node: NodeId) {
        self.install(fn_id, node);
        self.shard_mut(fn_id).displaced.remove(&fn_id);
    }

    /// Installs a standby replica for a function. The backup only serves
    /// traffic after [`ShardedTable::fail_over`] switches to it.
    pub fn set_backup(&mut self, fn_id: K, node: NodeId) {
        self.shard_mut(fn_id).backups.insert(fn_id, node);
    }

    /// Returns the function's standby replica node, if one is installed.
    pub fn backup_of(&self, fn_id: K) -> Option<NodeId> {
        self.shard(fn_id).backups.get(&fn_id).copied()
    }

    /// Removes a function's route, returning its previous node.
    pub fn remove(&mut self, fn_id: K) -> Option<NodeId> {
        let shard = self.shard_mut(fn_id);
        shard.backups.remove(&fn_id);
        shard.displaced.remove(&fn_id);
        let prev = shard.routes.remove(&fn_id);
        if let Some(node) = prev {
            self.len -= 1;
            if let Some(set) = self.by_node.get_mut(&node) {
                set.remove(&fn_id);
                if set.is_empty() {
                    self.by_node.remove(&node);
                }
            }
        }
        prev
    }

    /// Looks up the node hosting `fn_id` — the raw route, whether or not
    /// the node is currently down. Callers that must not talk to a dead
    /// node use [`ShardedTable::resolve`].
    pub fn lookup(&self, fn_id: K) -> Option<NodeId> {
        self.shard(fn_id).routes.get(&fn_id).copied()
    }

    /// Looks up the node hosting `fn_id`, as a typed result: a missing
    /// route and a route stranded on a down node are distinct, surfaced
    /// errors rather than silent drops or sends into a dead peer.
    pub fn resolve(&self, fn_id: K) -> Result<NodeId, RouteError> {
        match self.lookup(fn_id) {
            None => Err(RouteError::UnknownDestination {
                fn_id: fn_id.as_u64(),
            }),
            Some(node) if self.down.contains(&node) => Err(RouteError::DestinationDown {
                fn_id: fn_id.as_u64(),
                node,
            }),
            Some(node) => Ok(node),
        }
    }

    /// Returns `true` if `fn_id` is placed on `node`.
    pub fn is_local(&self, fn_id: K, node: NodeId) -> bool {
        self.lookup(fn_id) == Some(node)
    }

    /// Returns `true` if the health monitor has marked `node` down.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down.contains(&node)
    }

    /// The healthy fail-over target for a function currently routed at a
    /// down node: its backup replica if healthy, else its displaced
    /// original primary if that has recovered.
    fn healthy_alternative(&self, fn_id: K, avoid: NodeId) -> Option<NodeId> {
        let shard = self.shard(fn_id);
        if let Some(&b) = shard.backups.get(&fn_id) {
            if b != avoid && !self.down.contains(&b) {
                return Some(b);
            }
        }
        if let Some(&home) = shard.displaced.get(&fn_id) {
            if home != avoid && !self.down.contains(&home) {
                return Some(home);
            }
        }
        None
    }

    /// Marks `failed` down and re-points every function actively routed to
    /// it at a healthy alternative, remembering the function's original
    /// primary so recovery can restore it. Functions with no healthy
    /// alternative keep their route but fail [`ShardedTable::resolve`]
    /// with [`RouteError::DestinationDown`] until a target recovers.
    ///
    /// Returns the switched function ids, sorted — deterministic
    /// regardless of map iteration order.
    pub fn fail_over(&mut self, failed: NodeId) -> Vec<K> {
        self.down.insert(failed);
        let candidates: Vec<K> = self
            .by_node
            .get(&failed)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default();
        let mut moved = Vec::new();
        for fn_id in candidates {
            let Some(target) = self.healthy_alternative(fn_id, failed) else {
                continue; // stranded: resolve() reports DestinationDown
            };
            let prev = self.install(fn_id, target).expect("route existed");
            self.shard_mut(fn_id).displaced.entry(fn_id).or_insert(prev);
            moved.push(fn_id);
        }
        moved.sort_unstable();
        moved
    }

    /// Marks `node` healthy again and repairs routes:
    ///
    /// 1. every primary displaced *from* `node` fails back home;
    /// 2. every function stranded on a still-down node for which `node` is
    ///    now a healthy alternative is rescued onto it.
    ///
    /// Returns the re-routed function ids, sorted.
    pub fn restore(&mut self, node: NodeId) -> Vec<K> {
        self.down.remove(&node);
        let mut back: Vec<K> = Vec::new();
        // (1) fail displaced primaries back home.
        for shard in 0..self.shards.len() {
            let mut home: Vec<K> = self.shards[shard]
                .displaced
                .iter()
                .filter(|(_, primary)| **primary == node)
                .map(|(fn_id, _)| *fn_id)
                .collect();
            home.sort_unstable();
            for fn_id in home {
                self.shards[shard].displaced.remove(&fn_id);
                if self.lookup(fn_id) != Some(node) {
                    self.install(fn_id, node);
                    back.push(fn_id);
                }
            }
        }
        // (2) rescue functions stranded on nodes that are still down.
        let stranded: Vec<K> = self
            .down
            .iter()
            .filter_map(|d| self.by_node.get(d))
            .flat_map(|set| set.iter().copied())
            .collect();
        for fn_id in stranded {
            let at = self.lookup(fn_id).expect("indexed route exists");
            if self.healthy_alternative(fn_id, at) != Some(node) {
                continue;
            }
            let prev = self.install(fn_id, node).expect("route existed");
            self.shard_mut(fn_id).displaced.entry(fn_id).or_insert(prev);
            back.push(fn_id);
        }
        back.sort_unstable();
        back.dedup();
        back
    }

    /// Returns the number of installed routes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The functions actively routed at `node`, sorted. Sub-linear: reads
    /// the reverse index, not the shards.
    pub fn functions_on(&self, node: NodeId) -> Vec<K> {
        self.by_node
            .get(&node)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The functions stranded at `node`: still routed there while the node
    /// is marked down because [`ShardedTable::fail_over`] found no healthy
    /// alternative. Every entry fails [`ShardedTable::resolve`] with
    /// [`RouteError::DestinationDown`] until a target recovers. Sorted;
    /// empty when the node is up.
    pub fn stranded_on(&self, node: NodeId) -> Vec<K> {
        if !self.down.contains(&node) {
            return Vec::new();
        }
        self.functions_on(node)
    }
}

/// The engine's routing table: on-wire `u16` function ids.
pub type RoutingTable = ShardedTable<u16>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_lookup_remove() {
        let mut rt = RoutingTable::new();
        assert!(rt.is_empty());
        rt.set(1, NodeId(0));
        rt.set(2, NodeId(1));
        assert_eq!(rt.lookup(1), Some(NodeId(0)));
        assert_eq!(rt.lookup(3), None);
        assert!(rt.is_local(2, NodeId(1)));
        assert!(!rt.is_local(2, NodeId(0)));
        assert_eq!(rt.remove(1), Some(NodeId(0)));
        assert_eq!(rt.len(), 1);
    }

    #[test]
    fn reinstall_moves_function() {
        let mut rt = RoutingTable::new();
        rt.set(5, NodeId(0));
        rt.set(5, NodeId(3));
        assert_eq!(rt.lookup(5), Some(NodeId(3)));
        assert_eq!(rt.len(), 1);
        assert_eq!(rt.functions_on(NodeId(0)), Vec::<u16>::new());
        assert_eq!(rt.functions_on(NodeId(3)), vec![5]);
    }

    #[test]
    fn resolve_is_typed() {
        let mut rt = RoutingTable::new();
        rt.set(1, NodeId(0));
        assert_eq!(rt.resolve(1), Ok(NodeId(0)));
        assert_eq!(
            rt.resolve(9),
            Err(RouteError::UnknownDestination { fn_id: 9 })
        );
    }

    #[test]
    fn fail_over_switches_only_backed_up_functions() {
        let mut rt = RoutingTable::new();
        rt.set(1, NodeId(1));
        rt.set(2, NodeId(1));
        rt.set(3, NodeId(2));
        rt.set_backup(1, NodeId(2));
        // fn 2 has no backup; fn 3 is not on the failed node.
        let moved = rt.fail_over(NodeId(1));
        assert_eq!(moved, vec![1]);
        assert_eq!(rt.lookup(1), Some(NodeId(2)));
        assert_eq!(rt.lookup(2), Some(NodeId(1)), "no backup, stays put");
        assert_eq!(rt.lookup(3), Some(NodeId(2)));
        // fn 2 is stranded: the route remains but resolve refuses it.
        assert_eq!(
            rt.resolve(2),
            Err(RouteError::DestinationDown {
                fn_id: 2,
                node: NodeId(1)
            })
        );
        assert_eq!(rt.resolve(1), Ok(NodeId(2)));
    }

    #[test]
    fn restore_undoes_fail_over() {
        let mut rt = RoutingTable::new();
        rt.set(1, NodeId(1));
        rt.set(2, NodeId(1));
        rt.set_backup(1, NodeId(2));
        rt.set_backup(2, NodeId(0));
        assert_eq!(rt.fail_over(NodeId(1)), vec![1, 2]);
        assert_eq!(rt.lookup(1), Some(NodeId(2)));
        assert_eq!(rt.lookup(2), Some(NodeId(0)));
        assert_eq!(rt.restore(NodeId(1)), vec![1, 2]);
        assert_eq!(rt.lookup(1), Some(NodeId(1)));
        assert_eq!(rt.lookup(2), Some(NodeId(1)));
        // A second restore is a no-op.
        assert_eq!(rt.restore(NodeId(1)), Vec::<u16>::new());
    }

    /// Regression (cascading fail-over, part 1): a backup placed on the
    /// node that just failed is useless, and the old table silently left
    /// the route pointing at the dead node while `lookup` kept serving it.
    /// Now the function is stranded with a typed error until recovery.
    #[test]
    fn backup_on_failed_node_strands_with_typed_error() {
        let mut rt = RoutingTable::new();
        rt.set(1, NodeId(1));
        rt.set_backup(1, NodeId(1));
        assert_eq!(rt.fail_over(NodeId(1)), Vec::<u16>::new());
        assert_eq!(rt.lookup(1), Some(NodeId(1)), "route kept for recovery");
        assert_eq!(
            rt.resolve(1),
            Err(RouteError::DestinationDown {
                fn_id: 1,
                node: NodeId(1)
            })
        );
        // The node coming back rescues the function in place.
        rt.restore(NodeId(1));
        assert_eq!(rt.resolve(1), Ok(NodeId(1)));
    }

    /// Regression (cascading fail-over, part 2): backup node fails first,
    /// then the primary. The old table switched fn onto the already-down
    /// backup; now fail-over skips down candidates and the function is
    /// stranded until either node recovers.
    #[test]
    fn fail_over_never_targets_a_down_backup() {
        let mut rt = RoutingTable::new();
        rt.set(1, NodeId(1));
        rt.set_backup(1, NodeId(2));
        assert_eq!(rt.fail_over(NodeId(2)), Vec::<u16>::new());
        assert_eq!(rt.resolve(1), Ok(NodeId(1)), "primary still healthy");
        // Primary dies too: the backup is down, so the function strands
        // instead of being switched onto a corpse.
        assert_eq!(rt.fail_over(NodeId(1)), Vec::<u16>::new());
        assert_eq!(
            rt.resolve(1),
            Err(RouteError::DestinationDown {
                fn_id: 1,
                node: NodeId(1)
            })
        );
        // The backup recovering rescues the stranded function onto it.
        assert_eq!(rt.restore(NodeId(2)), vec![1]);
        assert_eq!(rt.resolve(1), Ok(NodeId(2)));
        // And the primary recovering fails it back home.
        assert_eq!(rt.restore(NodeId(1)), vec![1]);
        assert_eq!(rt.resolve(1), Ok(NodeId(1)));
    }

    /// Regression (cascading fail-over, part 3): the old `restore` would
    /// reinstall a displaced primary even while the backup currently
    /// serving the function went down in the meantime — and, worse, a
    /// cascade could reinstall routes onto nodes that never recovered.
    /// The down-set makes both transitions explicit.
    #[test]
    fn cascading_failure_falls_back_to_recovered_primary() {
        let mut rt = RoutingTable::new();
        rt.set(1, NodeId(1));
        rt.set_backup(1, NodeId(2));
        assert_eq!(rt.fail_over(NodeId(1)), vec![1]);
        assert_eq!(rt.resolve(1), Ok(NodeId(2)));
        // Primary recovers while the backup is serving; then the backup
        // dies. Fail-over must fall back to the recovered primary rather
        // than strand the function (the backup IS the failed node here).
        rt.restore(NodeId(1));
        // restore() already failed fn 1 back home to node 1.
        assert_eq!(rt.resolve(1), Ok(NodeId(1)));
        // Re-run the cascade the other way: backup serving, primary down.
        rt.fail_over(NodeId(1));
        assert_eq!(rt.resolve(1), Ok(NodeId(2)));
        rt.restore(NodeId(1)); // home again
        rt.fail_over(NodeId(2)); // backup node dies while fn is home
        assert_eq!(rt.resolve(1), Ok(NodeId(1)), "unaffected");
        // Now the primary dies with the backup still down — stranded —
        // and the backup's recovery rescues it.
        rt.fail_over(NodeId(1));
        assert!(matches!(
            rt.resolve(1),
            Err(RouteError::DestinationDown { .. })
        ));
        assert_eq!(rt.restore(NodeId(2)), vec![1]);
        assert_eq!(rt.resolve(1), Ok(NodeId(2)));
    }

    #[test]
    fn explicit_set_clears_failover_memory() {
        let mut rt = RoutingTable::new();
        rt.set(1, NodeId(1));
        rt.set_backup(1, NodeId(2));
        rt.fail_over(NodeId(1));
        rt.set(1, NodeId(3)); // control plane re-placed it for real
        assert_eq!(rt.restore(NodeId(1)), Vec::<u16>::new());
        assert_eq!(rt.lookup(1), Some(NodeId(3)));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedTable::<u32>::with_shards(0).shard_count(), 1);
        assert_eq!(ShardedTable::<u32>::with_shards(1).shard_count(), 1);
        assert_eq!(ShardedTable::<u32>::with_shards(48).shard_count(), 64);
        assert_eq!(ShardedTable::<u32>::new().shard_count(), DEFAULT_SHARDS);
    }

    #[test]
    fn sequential_keys_spread_across_shards() {
        let mut rt = ShardedTable::<u32>::with_shards(16);
        for k in 0..4096u32 {
            rt.set(k, NodeId(0));
        }
        let mut per_shard = vec![0usize; rt.shard_count()];
        for k in 0..4096u32 {
            per_shard[rt.shard_index(k)] += 1;
        }
        let expect = 4096 / 16;
        for (i, n) in per_shard.iter().enumerate() {
            assert!(
                *n > expect / 2 && *n < expect * 2,
                "shard {i} holds {n} of 4096 keys — scatter is skewed"
            );
        }
    }

    #[test]
    fn reverse_index_tracks_moves() {
        let mut rt = ShardedTable::<u32>::with_shards(4);
        for k in 0..100u32 {
            rt.set(k, NodeId((k % 3) as u16));
        }
        assert_eq!(rt.functions_on(NodeId(0)).len(), 34);
        rt.set(0, NodeId(2));
        assert_eq!(rt.functions_on(NodeId(0)).len(), 33);
        assert!(rt.functions_on(NodeId(2)).contains(&0));
        rt.remove(0);
        assert!(!rt.functions_on(NodeId(2)).contains(&0));
        assert_eq!(rt.len(), 99);
    }
}
