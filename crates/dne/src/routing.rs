//! The inter-node routing table.
//!
//! The TX stage (§3.2) "determines the destination node via the inter-node
//! routing table". Keys are function identifiers; values are fabric node
//! identifiers. The control plane (placement) populates it; the data plane
//! only reads.
//!
//! Beyond the primary placement, each function may carry a **backup
//! replica** route. When the health monitor declares a node down it calls
//! [`RoutingTable::fail_over`], which atomically re-points every function
//! whose active route targets the dead node at its backup and remembers
//! the displaced primary; [`RoutingTable::restore`] undoes the switch once
//! the node drains back to healthy. Lookups never panic: a missing route
//! is a typed [`RouteError`] the engine turns into a delivery failure.

use std::collections::HashMap;

use rdma_sim::NodeId;

/// A typed routing failure (no implicit panics on the lookup path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// No route — primary or backup — is installed for the function.
    UnknownDestination {
        /// The function id the lookup was for.
        fn_id: u16,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::UnknownDestination { fn_id } => {
                write!(f, "no route installed for function {fn_id}")
            }
        }
    }
}

/// Maps function ids to the node hosting them.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    routes: HashMap<u16, NodeId>,
    /// Standby replica placements, used when the active node fails.
    backups: HashMap<u16, NodeId>,
    /// Primary placements displaced by a fail-over, kept so recovery can
    /// restore them.
    displaced: HashMap<u16, NodeId>,
}

impl RoutingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RoutingTable::default()
    }

    /// Installs (or moves) a function's placement. Clears any fail-over
    /// memory for the function: an explicit placement wins.
    pub fn set(&mut self, fn_id: u16, node: NodeId) {
        self.routes.insert(fn_id, node);
        self.displaced.remove(&fn_id);
    }

    /// Installs a standby replica for a function. The backup only serves
    /// traffic after [`RoutingTable::fail_over`] switches to it.
    pub fn set_backup(&mut self, fn_id: u16, node: NodeId) {
        self.backups.insert(fn_id, node);
    }

    /// Returns the function's standby replica node, if one is installed.
    pub fn backup_of(&self, fn_id: u16) -> Option<NodeId> {
        self.backups.get(&fn_id).copied()
    }

    /// Removes a function's route, returning its previous node.
    pub fn remove(&mut self, fn_id: u16) -> Option<NodeId> {
        self.backups.remove(&fn_id);
        self.displaced.remove(&fn_id);
        self.routes.remove(&fn_id)
    }

    /// Looks up the node hosting `fn_id`.
    pub fn lookup(&self, fn_id: u16) -> Option<NodeId> {
        self.routes.get(&fn_id).copied()
    }

    /// Looks up the node hosting `fn_id`, as a typed result for callers
    /// that must surface the miss instead of silently dropping.
    pub fn resolve(&self, fn_id: u16) -> Result<NodeId, RouteError> {
        self.lookup(fn_id)
            .ok_or(RouteError::UnknownDestination { fn_id })
    }

    /// Returns `true` if `fn_id` is placed on `node`.
    pub fn is_local(&self, fn_id: u16, node: NodeId) -> bool {
        self.lookup(fn_id) == Some(node)
    }

    /// Re-points every function actively routed to `failed` at its backup
    /// replica (when one exists on a different node), remembering the
    /// displaced primary. Returns the switched function ids, sorted — the
    /// order is deterministic regardless of map iteration order.
    pub fn fail_over(&mut self, failed: NodeId) -> Vec<u16> {
        let mut moved: Vec<u16> = self
            .routes
            .iter()
            .filter(|(fn_id, node)| {
                **node == failed && matches!(self.backups.get(fn_id), Some(b) if *b != failed)
            })
            .map(|(fn_id, _)| *fn_id)
            .collect();
        moved.sort_unstable();
        for fn_id in &moved {
            let backup = self.backups[fn_id];
            let primary = self.routes.insert(*fn_id, backup).expect("route existed");
            self.displaced.entry(*fn_id).or_insert(primary);
        }
        moved
    }

    /// Restores every primary displaced from `node` by an earlier
    /// fail-over. Returns the restored function ids, sorted.
    pub fn restore(&mut self, node: NodeId) -> Vec<u16> {
        let mut back: Vec<u16> = self
            .displaced
            .iter()
            .filter(|(_, primary)| **primary == node)
            .map(|(fn_id, _)| *fn_id)
            .collect();
        back.sort_unstable();
        for fn_id in &back {
            let primary = self.displaced.remove(fn_id).expect("collected above");
            self.routes.insert(*fn_id, primary);
        }
        back
    }

    /// Returns the number of installed routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Returns `true` when no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_lookup_remove() {
        let mut rt = RoutingTable::new();
        assert!(rt.is_empty());
        rt.set(1, NodeId(0));
        rt.set(2, NodeId(1));
        assert_eq!(rt.lookup(1), Some(NodeId(0)));
        assert_eq!(rt.lookup(3), None);
        assert!(rt.is_local(2, NodeId(1)));
        assert!(!rt.is_local(2, NodeId(0)));
        assert_eq!(rt.remove(1), Some(NodeId(0)));
        assert_eq!(rt.len(), 1);
    }

    #[test]
    fn reinstall_moves_function() {
        let mut rt = RoutingTable::new();
        rt.set(5, NodeId(0));
        rt.set(5, NodeId(3));
        assert_eq!(rt.lookup(5), Some(NodeId(3)));
        assert_eq!(rt.len(), 1);
    }

    #[test]
    fn resolve_is_typed() {
        let mut rt = RoutingTable::new();
        rt.set(1, NodeId(0));
        assert_eq!(rt.resolve(1), Ok(NodeId(0)));
        assert_eq!(
            rt.resolve(9),
            Err(RouteError::UnknownDestination { fn_id: 9 })
        );
    }

    #[test]
    fn fail_over_switches_only_backed_up_functions() {
        let mut rt = RoutingTable::new();
        rt.set(1, NodeId(1));
        rt.set(2, NodeId(1));
        rt.set(3, NodeId(2));
        rt.set_backup(1, NodeId(2));
        // fn 2 has no backup; fn 3 is not on the failed node.
        let moved = rt.fail_over(NodeId(1));
        assert_eq!(moved, vec![1]);
        assert_eq!(rt.lookup(1), Some(NodeId(2)));
        assert_eq!(rt.lookup(2), Some(NodeId(1)), "no backup, stays put");
        assert_eq!(rt.lookup(3), Some(NodeId(2)));
    }

    #[test]
    fn restore_undoes_fail_over() {
        let mut rt = RoutingTable::new();
        rt.set(1, NodeId(1));
        rt.set(2, NodeId(1));
        rt.set_backup(1, NodeId(2));
        rt.set_backup(2, NodeId(0));
        assert_eq!(rt.fail_over(NodeId(1)), vec![1, 2]);
        assert_eq!(rt.lookup(1), Some(NodeId(2)));
        assert_eq!(rt.lookup(2), Some(NodeId(0)));
        assert_eq!(rt.restore(NodeId(1)), vec![1, 2]);
        assert_eq!(rt.lookup(1), Some(NodeId(1)));
        assert_eq!(rt.lookup(2), Some(NodeId(1)));
        // A second restore is a no-op.
        assert_eq!(rt.restore(NodeId(1)), Vec::<u16>::new());
    }

    #[test]
    fn backup_on_failed_node_is_useless() {
        let mut rt = RoutingTable::new();
        rt.set(1, NodeId(1));
        rt.set_backup(1, NodeId(1));
        assert_eq!(rt.fail_over(NodeId(1)), Vec::<u16>::new());
        assert_eq!(rt.lookup(1), Some(NodeId(1)));
    }

    #[test]
    fn explicit_set_clears_failover_memory() {
        let mut rt = RoutingTable::new();
        rt.set(1, NodeId(1));
        rt.set_backup(1, NodeId(2));
        rt.fail_over(NodeId(1));
        rt.set(1, NodeId(3)); // control plane re-placed it for real
        assert_eq!(rt.restore(NodeId(1)), Vec::<u16>::new());
        assert_eq!(rt.lookup(1), Some(NodeId(3)));
    }
}
