//! Configuration and cost types for the network engine.

use dpu_sim::comch::{ChannelKind, ComchCosts};
use dpu_sim::soc::ProcessorKind;
use membuf::tenant::TenantId;
use simcore::SimDuration;

/// The IPC mechanism between the engine and host functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpcKind {
    /// DOCA Comch across the PCIe boundary (DNE on the DPU).
    Comch(ChannelKind),
    /// eBPF SK_MSG between host sockets (CNE on the host CPU, §4.3: the
    /// interrupt-driven model that throttles the CNE at high concurrency).
    SkMsg,
}

/// Unified IPC cost model (Comch variants and SK_MSG).
#[derive(Debug, Clone)]
pub struct IpcCosts {
    /// One-way descriptor delivery latency.
    pub one_way_latency: SimDuration,
    /// Fixed engine-side CPU work per descriptor (reference CPU time).
    pub engine_service_base: SimDuration,
    /// Engine-side work per descriptor per monitored endpoint.
    pub engine_service_per_endpoint: SimDuration,
    /// Engine-side work per descriptor *per queued item* at dispatch time —
    /// the interrupt-processing load term that makes SK_MSG degrade under
    /// concurrency (Mogul & Ramakrishnan receive-livelock effect).
    pub interrupt_per_queued: SimDuration,
    /// Host-function-side CPU work per descriptor.
    pub host_service: SimDuration,
}

impl IpcCosts {
    /// Returns the calibrated cost model for `kind`.
    pub fn for_kind(kind: IpcKind) -> IpcCosts {
        match kind {
            IpcKind::Comch(ck) => {
                let c = ComchCosts::for_kind(ck);
                IpcCosts {
                    one_way_latency: c.one_way_latency,
                    engine_service_base: c.dne_service_base,
                    engine_service_per_endpoint: c.dne_service_per_endpoint,
                    interrupt_per_queued: SimDuration::ZERO,
                    host_service: c.host_service,
                }
            }
            IpcKind::SkMsg => IpcCosts {
                one_way_latency: SimDuration::from_nanos(1_600),
                engine_service_base: SimDuration::from_nanos(500),
                engine_service_per_endpoint: SimDuration::ZERO,
                interrupt_per_queued: SimDuration::from_nanos(85),
                host_service: SimDuration::from_nanos(700),
            },
        }
    }

    /// Engine-side reference CPU time per descriptor given the number of
    /// monitored `endpoints` and currently `queued` items.
    pub fn engine_service(&self, endpoints: usize, queued: usize) -> SimDuration {
        self.engine_service_base
            + self.engine_service_per_endpoint * endpoints as u64
            + self.interrupt_per_queued * queued.min(64) as u64
    }
}

/// On-path vs. off-path DPU offloading (§4.1.1, Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadMode {
    /// Off-path: cross-processor shared memory; the RNIC DMA moves payloads
    /// directly between the wire and host memory. NADINO's design.
    OffPath,
    /// On-path: payloads staged in DPU memory and shuttled with the slow
    /// SoC DMA engine; the engine additionally programs each DMA op.
    OnPath,
}

/// TX scheduling policy across tenants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedPolicy {
    /// Deficit Weighted Round Robin with the given base quantum
    /// (messages per weight unit per round). NADINO's policy.
    Dwrr { quantum: f64 },
    /// First-come-first-served (the no-isolation baseline of Fig. 15).
    Fcfs,
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct DneConfig {
    /// Which silicon the engine's worker runs on.
    pub processor: ProcessorKind,
    /// Number of worker cores (the paper uses one per node and stresses
    /// NADINO needs only two wimpy DPU cores in total across two nodes).
    pub cores: usize,
    /// Optional wimpy-factor override (defaults to the processor kind's).
    pub wimpy_factor: Option<f64>,
    /// Engine ⇄ function IPC mechanism.
    pub ipc: IpcKind,
    /// On-path or off-path offloading.
    pub offload: OffloadMode,
    /// TX scheduling policy across tenants.
    pub sched: SchedPolicy,
    /// Reference CPU time of the TX stage (route lookup, connection pick,
    /// WR wrap and post).
    pub tx_stage: SimDuration,
    /// Reference CPU time of the RX stage (CQE handling, RBR lookup,
    /// descriptor forward).
    pub rx_stage: SimDuration,
    /// Reference CPU time to reap a send completion (buffer recycle).
    pub send_completion: SimDuration,
    /// Extra reference CPU time per message — the knob §4.2 uses to pin the
    /// engine's ceiling at ~110 K RPS on one DPU core.
    pub extra_per_msg: SimDuration,
    /// Reference CPU time to program one SoC DMA transfer (on-path only).
    pub dma_program: SimDuration,
    /// Receive buffers pre-posted per tenant.
    pub prepost_depth: usize,
    /// RC connections to establish per (tenant, peer) pair.
    pub conns_per_peer: usize,
    /// How many times a failed send is retried (shadow-QP failover with
    /// exponential backoff) before the engine reports a typed delivery
    /// failure upstream.
    pub retry_budget: u32,
    /// Base backoff before the first retry; each further attempt doubles it.
    pub retry_backoff: SimDuration,
    /// The on-wire CTX version this engine stamps and understands (see
    /// `obs::ctx`). Fleet rollouts run nodes at different versions side by
    /// side: sends are stamped at `min(self, peer)` so a not-yet-upgraded
    /// receiver owns every byte it parses, and deadline interpretation is
    /// disabled entirely below `obs::ctx::CTX_V2` (an old engine predates
    /// the deadline region).
    pub wire_version: u8,
}

impl Default for DneConfig {
    fn default() -> Self {
        DneConfig {
            processor: ProcessorKind::DpuArm,
            cores: 1,
            wimpy_factor: None,
            ipc: IpcKind::Comch(ChannelKind::ComchE),
            offload: OffloadMode::OffPath,
            sched: SchedPolicy::Dwrr { quantum: 1.0 },
            tx_stage: SimDuration::from_nanos(420),
            rx_stage: SimDuration::from_nanos(420),
            send_completion: SimDuration::from_nanos(120),
            extra_per_msg: SimDuration::ZERO,
            dma_program: SimDuration::from_nanos(350),
            prepost_depth: 256,
            conns_per_peer: 2,
            retry_budget: 3,
            retry_backoff: SimDuration::from_micros(10),
            wire_version: obs::ctx::CTX_CURRENT,
        }
    }
}

impl DneConfig {
    /// The paper's NADINO (DNE): off-path engine on one wimpy DPU core,
    /// Comch-E IPC, DWRR multi-tenancy.
    pub fn nadino_dne() -> Self {
        DneConfig::default()
    }

    /// The paper's NADINO (CNE): same engine on one host CPU core with
    /// SK_MSG IPC (no Comch needed when co-located with functions).
    pub fn nadino_cne() -> Self {
        DneConfig {
            processor: ProcessorKind::HostCpu,
            ipc: IpcKind::SkMsg,
            ..DneConfig::default()
        }
    }

    /// On-path DPU engine (Fig. 11's comparison point).
    pub fn on_path_dne() -> Self {
        DneConfig {
            offload: OffloadMode::OnPath,
            ..DneConfig::default()
        }
    }

    /// FCFS engine without multi-tenancy handling (Fig. 15's baseline).
    pub fn fcfs_dne() -> Self {
        DneConfig {
            sched: SchedPolicy::Fcfs,
            ..DneConfig::default()
        }
    }
}

/// Aggregate engine statistics, including the per-stage latency breakdown
/// the observability layer renders as a table.
#[derive(Debug, Clone, Default)]
pub struct DneStats {
    /// Descriptors accepted from host functions.
    pub submitted: u64,
    /// Messages posted to the RNIC.
    pub tx_posted: u64,
    /// Descriptors delivered to local functions.
    pub rx_delivered: u64,
    /// Send completions reaped.
    pub send_completions: u64,
    /// Descriptors dropped (redeem failure, missing route or endpoint,
    /// transport error).
    pub drops: u64,
    /// Receive-buffer replenishments that failed on an exhausted pool.
    pub replenish_failures: u64,
    /// Receive-buffer replenishments performed.
    pub replenishes: u64,
    /// Time each TX descriptor waited in the tenant scheduler between
    /// enqueue and DWRR/FCFS dequeue.
    pub tx_queue_wait: simcore::Histogram,
    /// Time from dispatch onto an engine core to service completion
    /// (run-to-completion stage time, including processor queueing).
    pub sched_delay: simcore::Histogram,
    /// Time from RNIC post to the reaped send completion.
    pub post_to_completion: simcore::Histogram,
    /// Failed sends re-posted (possibly on another pooled QP).
    pub retries: u64,
    /// Retries that landed on a different QP than the one that failed.
    pub failovers: u64,
    /// Background reconnects started after a `(tenant, peer)` pool ran dry.
    pub reconnects: u64,
    /// Sends abandoned after the retry budget (typed failure surfaced).
    pub give_ups: u64,
    /// Sends cancelled because the request's deadline expired before the
    /// engine could (re)post them.
    pub deadline_drops: u64,
    /// Time from the first post of a send to its terminal outcome, recorded
    /// only for sends that needed at least one retry.
    pub retry_latency: simcore::Histogram,
    /// Reconnects that paid the full RC establishment delay because no
    /// pre-warmed connection was stocked for the link.
    pub cold_connects: u64,
    /// Reconnects satisfied from the pre-warm stock (microsecond claim
    /// instead of tens-of-ms establishment).
    pub prewarm_claims: u64,
}

/// Why a send was abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// Every attempt within the retry budget failed.
    RetryBudgetExhausted,
    /// No connection to the destination exists and none could be set up.
    NoConnection,
    /// The destination function has no installed route — the descriptor
    /// named a function the control plane never placed (or removed).
    UnknownDestination,
    /// The request's deadline expired before delivery; the send was
    /// cancelled rather than spent on work nobody is waiting for.
    DeadlineExceeded,
    /// The destination function's route points at a node the health
    /// monitor has marked down and no healthy replica exists — failing
    /// fast beats burning the retry budget against a corpse.
    DestinationDown,
}

/// A typed delivery failure the engine reports upstream once recovery is
/// exhausted — the signal the gateway turns into a `503` instead of letting
/// the request hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryFailure {
    pub tenant: TenantId,
    /// Destination function the payload was addressed to.
    pub dst_fn: u16,
    /// Request id (first eight payload bytes, LE; 0 when too short).
    pub req_id: u64,
    /// Send attempts made before giving up.
    pub attempts: u32,
    pub reason: FailureReason,
    /// Destination node the payload was bound for, when the route was
    /// known — the signal the health monitor attributes to a node.
    pub dst_node: Option<rdma_sim::NodeId>,
}

/// Per-tenant failure accounting (so a tenant whose QPs are failing does
/// not look healthy in aggregate stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantFailureStats {
    /// Descriptors of this tenant dropped.
    pub drops: u64,
    /// Failed sends of this tenant re-posted.
    pub retries: u64,
    /// Sends of this tenant abandoned after the retry budget.
    pub give_ups: u64,
    /// Sends of this tenant cancelled on deadline expiry.
    pub deadline_drops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skmsg_interrupt_term_grows_with_queue() {
        let c = IpcCosts::for_kind(IpcKind::SkMsg);
        let idle = c.engine_service(4, 0);
        let loaded = c.engine_service(4, 40);
        assert!(loaded > idle);
        assert_eq!(
            (loaded - idle).as_nanos(),
            40 * c.interrupt_per_queued.as_nanos()
        );
    }

    #[test]
    fn interrupt_term_saturates() {
        let c = IpcCosts::for_kind(IpcKind::SkMsg);
        assert_eq!(c.engine_service(1, 64), c.engine_service(1, 10_000));
    }

    #[test]
    fn comch_costs_have_no_interrupt_term() {
        let c = IpcCosts::for_kind(IpcKind::Comch(ChannelKind::ComchE));
        assert_eq!(c.engine_service(4, 0), c.engine_service(4, 1_000));
    }

    #[test]
    fn presets_differ_in_the_right_dimensions() {
        let dne = DneConfig::nadino_dne();
        let cne = DneConfig::nadino_cne();
        assert_eq!(dne.processor, ProcessorKind::DpuArm);
        assert_eq!(cne.processor, ProcessorKind::HostCpu);
        assert_eq!(cne.ipc, IpcKind::SkMsg);
        assert_eq!(DneConfig::on_path_dne().offload, OffloadMode::OnPath);
        assert_eq!(DneConfig::fcfs_dne().sched, SchedPolicy::Fcfs);
    }
}
