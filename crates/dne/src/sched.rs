//! Tenant schedulers: Deficit Weighted Round Robin and FCFS.
//!
//! §3.3: "Traffic from tenants of greater importance is prioritized using a
//! Deficit Weighted Round Robin-like scheduler" — [`DwrrScheduler`] is the
//! classic Shreedhar–Varghese algorithm with per-tenant quantum equal to
//! `weight × base quantum` and unit service cost per descriptor.
//! [`FcfsScheduler`] is the no-isolation baseline Fig. 15 compares against.

use std::collections::VecDeque;

use membuf::tenant::TenantId;

/// A work scheduler across tenant queues.
pub trait TenantScheduler<T> {
    /// Registers a tenant with a scheduling weight.
    fn register(&mut self, tenant: TenantId, weight: u32);
    /// Enqueues an item for a tenant (unknown tenants are auto-registered
    /// with weight 1).
    fn enqueue(&mut self, tenant: TenantId, item: T);
    /// Dequeues the next item according to the policy.
    fn dequeue(&mut self) -> Option<(TenantId, T)>;
    /// Returns the number of queued items.
    fn len(&self) -> usize;
    /// Returns `true` when no items are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Returns the number of queued items for one tenant.
    fn tenant_backlog(&self, tenant: TenantId) -> usize;
    /// Returns the tenant's current scheduling deficit, for policies that
    /// maintain one (`None` otherwise — e.g. FCFS).
    fn deficit_of(&self, tenant: TenantId) -> Option<f64> {
        let _ = tenant;
        None
    }
    /// Returns every registered tenant, for observability sweeps.
    fn tenants(&self) -> Vec<TenantId> {
        Vec::new()
    }
}

struct DwrrQueue<T> {
    tenant: TenantId,
    weight: u32,
    deficit: f64,
    queue: VecDeque<T>,
}

/// Deficit Weighted Round Robin over per-tenant queues.
///
/// # Examples
///
/// ```
/// use dne::sched::{DwrrScheduler, TenantScheduler};
/// use membuf::tenant::TenantId;
///
/// let mut s = DwrrScheduler::new(1.0);
/// s.register(TenantId(1), 3);
/// s.register(TenantId(2), 1);
/// for i in 0..8 {
///     s.enqueue(TenantId(1), i);
///     s.enqueue(TenantId(2), i);
/// }
/// // Over a long run tenant 1 gets ~3x the service of tenant 2.
/// let first: Vec<_> = (0..4).map(|_| s.dequeue().unwrap().0).collect();
/// assert!(first.iter().filter(|t| **t == TenantId(1)).count() >= 3);
/// ```
pub struct DwrrScheduler<T> {
    queues: Vec<DwrrQueue<T>>,
    cursor: usize,
    quantum: f64,
    total: usize,
}

impl<T> DwrrScheduler<T> {
    /// Creates a scheduler with the given base quantum (messages per weight
    /// unit per round).
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is not positive.
    pub fn new(quantum: f64) -> Self {
        assert!(quantum > 0.0, "DWRR quantum must be positive");
        DwrrScheduler {
            queues: Vec::new(),
            cursor: 0,
            quantum,
            total: 0,
        }
    }

    fn index_of(&self, tenant: TenantId) -> Option<usize> {
        self.queues.iter().position(|q| q.tenant == tenant)
    }
}

impl<T> TenantScheduler<T> for DwrrScheduler<T> {
    fn register(&mut self, tenant: TenantId, weight: u32) {
        assert!(weight > 0, "tenant weight must be positive");
        match self.index_of(tenant) {
            Some(i) => self.queues[i].weight = weight,
            None => self.queues.push(DwrrQueue {
                tenant,
                weight,
                deficit: 0.0,
                queue: VecDeque::new(),
            }),
        }
    }

    fn enqueue(&mut self, tenant: TenantId, item: T) {
        let i = match self.index_of(tenant) {
            Some(i) => i,
            None => {
                self.register(tenant, 1);
                self.queues.len() - 1
            }
        };
        self.queues[i].queue.push_back(item);
        self.total += 1;
    }

    fn dequeue(&mut self) -> Option<(TenantId, T)> {
        if self.total == 0 {
            return None;
        }
        let n = self.queues.len();
        loop {
            let q = &mut self.queues[self.cursor];
            if !q.queue.is_empty() && q.deficit >= 1.0 {
                q.deficit -= 1.0;
                self.total -= 1;
                let item = q.queue.pop_front().expect("non-empty");
                return Some((q.tenant, item));
            }
            // This tenant's turn ends: empty queues forfeit their deficit
            // (classic DRR), then the next backlogged tenant earns a quantum.
            if q.queue.is_empty() {
                q.deficit = 0.0;
            }
            self.cursor = (self.cursor + 1) % n;
            let q = &mut self.queues[self.cursor];
            if !q.queue.is_empty() {
                q.deficit += q.weight as f64 * self.quantum;
            }
        }
    }

    fn len(&self) -> usize {
        self.total
    }

    fn tenant_backlog(&self, tenant: TenantId) -> usize {
        self.index_of(tenant)
            .map(|i| self.queues[i].queue.len())
            .unwrap_or(0)
    }

    fn deficit_of(&self, tenant: TenantId) -> Option<f64> {
        self.index_of(tenant).map(|i| self.queues[i].deficit)
    }

    fn tenants(&self) -> Vec<TenantId> {
        self.queues.iter().map(|q| q.tenant).collect()
    }
}

/// First-come-first-served across all tenants (no isolation).
pub struct FcfsScheduler<T> {
    queue: VecDeque<(TenantId, T)>,
}

impl<T> FcfsScheduler<T> {
    /// Creates an empty FCFS scheduler.
    pub fn new() -> Self {
        FcfsScheduler {
            queue: VecDeque::new(),
        }
    }
}

impl<T> Default for FcfsScheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TenantScheduler<T> for FcfsScheduler<T> {
    fn register(&mut self, _tenant: TenantId, _weight: u32) {}

    fn enqueue(&mut self, tenant: TenantId, item: T) {
        self.queue.push_back((tenant, item));
    }

    fn dequeue(&mut self) -> Option<(TenantId, T)> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn tenant_backlog(&self, tenant: TenantId) -> usize {
        self.queue.iter().filter(|(t, _)| *t == tenant).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_shares(s: &mut dyn TenantScheduler<u32>, rounds: usize) -> Vec<(TenantId, usize)> {
        let mut counts: Vec<(TenantId, usize)> = Vec::new();
        for _ in 0..rounds {
            let Some((t, _)) = s.dequeue() else { break };
            match counts.iter_mut().find(|(id, _)| *id == t) {
                Some((_, c)) => *c += 1,
                None => counts.push((t, 1)),
            }
        }
        counts
    }

    #[test]
    fn dwrr_shares_match_weights_under_backlog() {
        let mut s = DwrrScheduler::new(1.0);
        s.register(TenantId(1), 6);
        s.register(TenantId(2), 1);
        s.register(TenantId(3), 2);
        for i in 0..3000u32 {
            s.enqueue(TenantId(1), i);
            s.enqueue(TenantId(2), i);
            s.enqueue(TenantId(3), i);
        }
        let counts = drain_shares(&mut s, 900);
        let get = |t| counts.iter().find(|(id, _)| *id == TenantId(t)).unwrap().1 as f64;
        let (a, b, c) = (get(1), get(2), get(3));
        assert!((a / b - 6.0).abs() < 0.4, "6:1 ratio, got {}", a / b);
        assert!((c / b - 2.0).abs() < 0.3, "2:1 ratio, got {}", c / b);
    }

    #[test]
    fn dwrr_is_work_conserving_when_one_tenant_idle() {
        let mut s = DwrrScheduler::new(1.0);
        s.register(TenantId(1), 6);
        s.register(TenantId(2), 1);
        for i in 0..10u32 {
            s.enqueue(TenantId(2), i);
        }
        // Tenant 1 has nothing queued: tenant 2 gets everything.
        let counts = drain_shares(&mut s, 10);
        assert_eq!(counts, vec![(TenantId(2), 10)]);
        assert!(s.is_empty());
    }

    #[test]
    fn dwrr_fifo_within_a_tenant() {
        let mut s = DwrrScheduler::new(1.0);
        s.register(TenantId(1), 1);
        for i in 0..5u32 {
            s.enqueue(TenantId(1), i);
        }
        let order: Vec<u32> = (0..5).map(|_| s.dequeue().unwrap().1).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dwrr_auto_registers_unknown_tenants() {
        let mut s = DwrrScheduler::new(1.0);
        s.enqueue(TenantId(9), 42u32);
        assert_eq!(s.dequeue(), Some((TenantId(9), 42)));
    }

    #[test]
    fn dwrr_empty_queue_forfeits_deficit() {
        let mut s = DwrrScheduler::new(1.0);
        s.register(TenantId(1), 100);
        s.register(TenantId(2), 1);
        // Tenant 1 builds a big deficit then goes idle...
        s.enqueue(TenantId(1), 0u32);
        assert_eq!(s.dequeue().unwrap().0, TenantId(1));
        // ...now only tenant 2 is backlogged; it must not starve.
        for i in 0..5u32 {
            s.enqueue(TenantId(2), i);
        }
        assert_eq!(s.dequeue().unwrap().0, TenantId(2));
    }

    #[test]
    fn fcfs_ignores_weights() {
        let mut s = FcfsScheduler::new();
        s.register(TenantId(1), 100);
        s.enqueue(TenantId(2), 1u32);
        s.enqueue(TenantId(1), 2u32);
        s.enqueue(TenantId(2), 3u32);
        let order: Vec<TenantId> = (0..3).map(|_| s.dequeue().unwrap().0).collect();
        assert_eq!(order, vec![TenantId(2), TenantId(1), TenantId(2)]);
    }

    #[test]
    fn backlog_counts_per_tenant() {
        let mut s = DwrrScheduler::new(1.0);
        s.enqueue(TenantId(1), 0u32);
        s.enqueue(TenantId(1), 1u32);
        s.enqueue(TenantId(2), 2u32);
        assert_eq!(s.tenant_backlog(TenantId(1)), 2);
        assert_eq!(s.tenant_backlog(TenantId(2)), 1);
        assert_eq!(s.tenant_backlog(TenantId(3)), 0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn deficit_is_observable_per_tenant() {
        let mut s = DwrrScheduler::new(1.0);
        s.register(TenantId(1), 4);
        s.register(TenantId(2), 1);
        assert_eq!(s.deficit_of(TenantId(1)), Some(0.0));
        assert_eq!(s.deficit_of(TenantId(9)), None);
        for i in 0..8u32 {
            s.enqueue(TenantId(1), i);
            s.enqueue(TenantId(2), i);
        }
        s.dequeue().unwrap();
        // After a dequeue the serviced tenant carries deficit < its quantum.
        let d = s.deficit_of(TenantId(1)).unwrap() + s.deficit_of(TenantId(2)).unwrap();
        assert!(d >= 0.0);
        assert_eq!(s.tenants(), vec![TenantId(1), TenantId(2)]);
        // FCFS exposes no deficit.
        let mut f = FcfsScheduler::new();
        f.enqueue(TenantId(1), 0u32);
        assert_eq!(f.deficit_of(TenantId(1)), None);
    }

    #[test]
    fn fractional_quantum_still_makes_progress() {
        let mut s = DwrrScheduler::new(0.25);
        s.register(TenantId(1), 1);
        s.enqueue(TenantId(1), 7u32);
        assert_eq!(s.dequeue(), Some((TenantId(1), 7)));
    }
}
