//! Property tests on the DWRR scheduler: long-run fairness proportional to
//! weights under arbitrary weight assignments and backlogs, and strict
//! FIFO order within each tenant.

use dne::sched::{DwrrScheduler, FcfsScheduler, TenantScheduler};
use membuf::tenant::TenantId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn shares_track_weights(
        weights in proptest::collection::vec(1u32..12, 2..6),
        quantum in 0.25f64..4.0,
    ) {
        let mut s = DwrrScheduler::new(quantum);
        for (i, &w) in weights.iter().enumerate() {
            s.register(TenantId(i as u16), w);
        }
        // Deep backlog for every tenant.
        let backlog = 4_000u32;
        for i in 0..weights.len() {
            for k in 0..backlog {
                s.enqueue(TenantId(i as u16), k);
            }
        }
        // Serve a window proportional to the weight sum, then check shares.
        let total_w: u32 = weights.iter().sum();
        let window = (total_w as usize) * 120;
        let mut counts = vec![0u32; weights.len()];
        for _ in 0..window {
            let (t, _) = s.dequeue().expect("deep backlog");
            counts[t.0 as usize] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expect = window as f64 * w as f64 / total_w as f64;
            let got = counts[i] as f64;
            prop_assert!(
                (got - expect).abs() / expect < 0.10,
                "tenant {i} (w={w}): got {got}, expected {expect} of {window}"
            );
        }
    }

    #[test]
    fn per_tenant_fifo_order(
        items in proptest::collection::vec((0u16..4, any::<u32>()), 1..300)
    ) {
        let mut s = DwrrScheduler::new(1.0);
        let mut expected: Vec<Vec<u32>> = vec![Vec::new(); 4];
        for &(t, v) in &items {
            s.enqueue(TenantId(t), v);
            expected[t as usize].push(v);
        }
        let mut got: Vec<Vec<u32>> = vec![Vec::new(); 4];
        while let Some((t, v)) = s.dequeue() {
            got[t.0 as usize].push(v);
        }
        prop_assert_eq!(got, expected, "items must stay FIFO within a tenant");
    }

    #[test]
    fn no_items_lost_or_invented(
        items in proptest::collection::vec((0u16..6, any::<u32>()), 0..400)
    ) {
        let mut dwrr = DwrrScheduler::new(1.0);
        let mut fcfs = FcfsScheduler::new();
        for &(t, v) in &items {
            dwrr.enqueue(TenantId(t), v);
            fcfs.enqueue(TenantId(t), v);
        }
        prop_assert_eq!(dwrr.len(), items.len());
        let mut n = 0;
        while dwrr.dequeue().is_some() {
            n += 1;
        }
        prop_assert_eq!(n, items.len());
        prop_assert!(dwrr.is_empty());
        // FCFS preserves global arrival order.
        let order: Vec<(TenantId, u32)> =
            std::iter::from_fn(|| fcfs.dequeue()).collect();
        let expected: Vec<(TenantId, u32)> =
            items.iter().map(|&(t, v)| (TenantId(t), v)).collect();
        prop_assert_eq!(order, expected);
    }
}
