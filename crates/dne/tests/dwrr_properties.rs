//! Randomized tests on the DWRR scheduler: long-run fairness proportional
//! to weights under seeded-random weight assignments and backlogs, and
//! strict FIFO order within each tenant.
//!
//! The default-off `heavy-tests` feature scales case counts up for
//! exhaustive runs.

use dne::sched::{DwrrScheduler, FcfsScheduler, TenantScheduler};
use membuf::tenant::TenantId;
use simcore::SimRng;

fn cases(light: usize, heavy: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        heavy
    } else {
        light
    }
}

#[test]
fn shares_track_weights() {
    let mut rng = SimRng::new(0xd11);
    for _ in 0..cases(64, 512) {
        let n = 2 + rng.gen_range(4) as usize;
        let weights: Vec<u32> = (0..n).map(|_| 1 + rng.gen_range(11) as u32).collect();
        let quantum = rng.uniform(0.25, 4.0);
        let mut s = DwrrScheduler::new(quantum);
        for (i, &w) in weights.iter().enumerate() {
            s.register(TenantId(i as u16), w);
        }
        // Deep backlog for every tenant.
        let backlog = 4_000u32;
        for i in 0..weights.len() {
            for k in 0..backlog {
                s.enqueue(TenantId(i as u16), k);
            }
        }
        // Serve a window proportional to the weight sum, then check shares.
        let total_w: u32 = weights.iter().sum();
        let window = (total_w as usize) * 120;
        let mut counts = vec![0u32; weights.len()];
        for _ in 0..window {
            let (t, _) = s.dequeue().expect("deep backlog");
            counts[t.0 as usize] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expect = window as f64 * w as f64 / total_w as f64;
            let got = counts[i] as f64;
            assert!(
                (got - expect).abs() / expect < 0.10,
                "tenant {i} (w={w}): got {got}, expected {expect} of {window}"
            );
        }
    }
}

#[test]
fn bursty_arrivals_converge_to_weight_share_with_bounded_deficit() {
    let mut rng = SimRng::new(0xb0b5);
    for _ in 0..cases(24, 192) {
        let n = 2 + rng.gen_range(3) as usize;
        let weights: Vec<u32> = (0..n).map(|_| 1 + rng.gen_range(7) as u32).collect();
        let quantum = rng.uniform(0.5, 2.0);
        let mut s = DwrrScheduler::new(quantum);
        for (i, &w) in weights.iter().enumerate() {
            s.register(TenantId(i as u16), w);
        }
        // Adversarial on/off arrivals: each tenant alternates silence with
        // bursts of up to 64 items, offered faster than the drain rate of
        // 8 items per tick so queues stay contended most of the time.
        let mut next_item = 0u32;
        let mut burst_left = vec![0u32; n];
        let mut contended = vec![0u64; n];
        let mut contended_total = 0u64;
        for _tick in 0..cases(600, 2000) {
            for (t, left) in burst_left.iter_mut().enumerate() {
                if *left == 0 && rng.gen_range(100) < 20 {
                    *left = 1 + rng.gen_range(64) as u32;
                }
                if *left > 0 {
                    let k = (1 + rng.gen_range(16) as u32).min(*left);
                    *left -= k;
                    for _ in 0..k {
                        s.enqueue(TenantId(t as u16), next_item);
                        next_item += 1;
                    }
                }
            }
            for _ in 0..8 {
                let all_backlogged = (0..n).all(|t| s.tenant_backlog(TenantId(t as u16)) > 0);
                let Some((t, _)) = s.dequeue() else { break };
                if all_backlogged {
                    contended[t.0 as usize] += 1;
                    contended_total += 1;
                }
                // Bounded deficit: never more than one quantum grant above a
                // single unit of unspent service, for any tenant, at any time.
                for (i, &w) in weights.iter().enumerate() {
                    let d = s.deficit_of(TenantId(i as u16)).expect("registered");
                    assert!(
                        d <= w as f64 * quantum + 1.0 + 1e-9,
                        "tenant {i} (w={w}, q={quantum}): deficit {d} unbounded"
                    );
                }
            }
        }
        // During fully-contended service, shares must track weight shares.
        assert!(
            contended_total >= 500,
            "burst pattern too sparse to measure contention ({contended_total})"
        );
        let total_w: u32 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expect = contended_total as f64 * w as f64 / total_w as f64;
            let got = contended[i] as f64;
            assert!(
                (got - expect).abs() <= 0.15 * expect + 64.0,
                "tenant {i} (w={w}): got {got}, expected {expect} of {contended_total}"
            );
        }
    }
}

#[test]
fn per_tenant_fifo_order() {
    let mut rng = SimRng::new(0xd22);
    for _ in 0..cases(64, 512) {
        let n = 1 + rng.gen_range(299) as usize;
        let items: Vec<(u16, u32)> = (0..n)
            .map(|_| (rng.gen_range(4) as u16, rng.next_u64() as u32))
            .collect();
        let mut s = DwrrScheduler::new(1.0);
        let mut expected: Vec<Vec<u32>> = vec![Vec::new(); 4];
        for &(t, v) in &items {
            s.enqueue(TenantId(t), v);
            expected[t as usize].push(v);
        }
        let mut got: Vec<Vec<u32>> = vec![Vec::new(); 4];
        while let Some((t, v)) = s.dequeue() {
            got[t.0 as usize].push(v);
        }
        assert_eq!(got, expected, "items must stay FIFO within a tenant");
    }
}

#[test]
fn no_items_lost_or_invented() {
    let mut rng = SimRng::new(0xd33);
    for _ in 0..cases(64, 512) {
        let n = rng.gen_range(400) as usize;
        let items: Vec<(u16, u32)> = (0..n)
            .map(|_| (rng.gen_range(6) as u16, rng.next_u64() as u32))
            .collect();
        let mut dwrr = DwrrScheduler::new(1.0);
        let mut fcfs = FcfsScheduler::new();
        for &(t, v) in &items {
            dwrr.enqueue(TenantId(t), v);
            fcfs.enqueue(TenantId(t), v);
        }
        assert_eq!(dwrr.len(), items.len());
        let mut served = 0;
        while dwrr.dequeue().is_some() {
            served += 1;
        }
        assert_eq!(served, items.len());
        assert!(dwrr.is_empty());
        // FCFS preserves global arrival order.
        let order: Vec<(TenantId, u32)> = std::iter::from_fn(|| fcfs.dequeue()).collect();
        let expected: Vec<(TenantId, u32)> = items.iter().map(|&(t, v)| (TenantId(t), v)).collect();
        assert_eq!(order, expected);
    }
}
