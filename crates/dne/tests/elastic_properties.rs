//! Randomized properties of the elastic connection control plane, and a
//! differential check of the sharded routing table against a flat one.
//!
//! Pool invariants exercised under seeded-random op sequences:
//!
//! - **accounting**: every successful pick is exactly one hit or one
//!   miss (`hits + misses == picks`), and lifecycle counters never go
//!   negative (`deactivations <= activations`);
//! - **containment**: the active set is always a subset of the pooled
//!   set and never exceeds `active_capacity`;
//! - **liveness**: neither LRU eviction nor lazy teardown ever strands
//!   an in-flight send — a QP with SQ backlog survives both, still
//!   pooled and still ready.
//!
//! The routing differential drives a 64-shard table and a 1-shard table
//! through the same random set/remove/fail-over/restore schedule and
//! asserts every observable (lookup, resolve, backup, length, move
//! lists) agrees — sharding is a layout choice, not a semantic one.

use dne::connpool::{ConnPool, ElasticConfig};
use dne::routing::{RouteError, ShardedTable};
use membuf::pool::{BufferPool, PoolConfig};
use membuf::tenant::TenantId;
use rdma_sim::fabric::{CqId, QpHandle, RqId};
use rdma_sim::{Fabric, NodeId, RdmaCosts, WrId};
use simcore::{Sim, SimDuration, SimRng, SimTime};

fn cases(light: usize, heavy: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        heavy
    } else {
        light
    }
}

struct Cell {
    fabric: Fabric,
    sim: Sim,
    tenant: TenantId,
    gw: NodeId,
    peer: NodeId,
    wiring: Vec<(CqId, RqId)>,
    bufs: BufferPool,
}

/// Two-node fabric with registered pools and per-node CQ/RQ wiring.
fn cell() -> Cell {
    let fabric = Fabric::new(RdmaCosts::default());
    let sim = Sim::new();
    let tenant = TenantId(1);
    let gw = fabric.add_node();
    let peer = fabric.add_node();
    let mut cfg = PoolConfig::new(tenant, 0, 1024, 64);
    cfg.segment_size = 64 * 1024;
    let bufs = BufferPool::new(cfg).unwrap();
    let mut cfg_b = PoolConfig::new(tenant, 1, 1024, 64);
    cfg_b.segment_size = 64 * 1024;
    fabric.register_pool(gw, bufs.clone()).unwrap();
    fabric
        .register_pool(peer, BufferPool::new(cfg_b).unwrap())
        .unwrap();
    let mut wiring = Vec::new();
    for node in [gw, peer] {
        let cq = fabric.create_cq(node).unwrap();
        let rq = fabric.create_rq(node, tenant).unwrap();
        wiring.push((cq, rq));
    }
    Cell {
        fabric,
        sim,
        tenant,
        gw,
        peer,
        wiring,
        bufs,
    }
}

fn connect(c: &mut Cell) -> QpHandle {
    let (cq_g, rq_g) = c.wiring[0];
    let (cq_p, rq_p) = c.wiring[1];
    let (ha, _) = c
        .fabric
        .connect(&mut c.sim, c.tenant, c.gw, cq_g, rq_g, c.peer, cq_p, rq_p)
        .unwrap();
    c.sim.run();
    ha
}

#[test]
fn hits_plus_misses_equals_picks_under_random_schedules() {
    let mut rng = SimRng::new(0xe1a5);
    for _ in 0..cases(24, 192) {
        let mut c = cell();
        let cap = 1 + rng.gen_range(6) as usize;
        let mut pool: ConnPool = ConnPool::with_config(ElasticConfig {
            active_capacity: cap,
            idle_teardown_age: Some(SimDuration::from_millis(5)),
            adaptive: None,
        });
        let mut now = SimTime::ZERO;
        let mut picks = 0u64;
        let ops = 40 + rng.gen_range(80);
        for _ in 0..ops {
            now += SimDuration::from_micros(1 + rng.gen_range(2_000));
            match rng.gen_range(10) {
                0..=2 => {
                    let h = connect(&mut c);
                    pool.add(c.tenant, c.peer, h, now);
                }
                3..=7 => {
                    if pool
                        .pick_least_congested(&c.fabric, now, c.tenant, c.peer)
                        .is_some()
                    {
                        picks += 1;
                    }
                }
                8 => {
                    pool.deactivate_idle(&c.fabric, now);
                }
                _ => {
                    pool.teardown_idle(&c.fabric, now);
                }
            }
            // Containment invariants hold at every step.
            let (hits, misses) = pool.hit_miss();
            assert_eq!(hits + misses, picks, "every pick is one hit or miss");
            assert!(
                pool.active_total() <= pool.pooled_total(),
                "active set is a subset of the pool"
            );
            assert!(
                pool.active_total() <= cap,
                "active set bounded by capacity {cap}"
            );
            assert!(
                pool.deactivations() <= pool.activations(),
                "lifecycle counters stay ordered"
            );
        }
    }
}

#[test]
fn eviction_and_teardown_never_strand_an_inflight_send() {
    let mut rng = SimRng::new(0x57a0);
    for _ in 0..cases(16, 128) {
        let mut c = cell();
        let cap = 2 + rng.gen_range(3) as usize;
        let age = SimDuration::from_micros(1 + rng.gen_range(500));
        let mut pool: ConnPool = ConnPool::with_config(ElasticConfig {
            active_capacity: cap,
            idle_teardown_age: Some(age),
            adaptive: None,
        });
        let mut now = SimTime::ZERO;
        // One connection with a genuinely in-flight send: no recv is
        // posted on the peer, so the WR lingers in RNR retry.
        let busy = connect(&mut c);
        pool.add(c.tenant, c.peer, busy, now);
        pool.pick_least_congested(&c.fabric, now, c.tenant, c.peer)
            .unwrap();
        let buf = c.bufs.get().unwrap();
        c.fabric
            .post_send(&mut c.sim, busy, WrId(1), buf, 0)
            .unwrap();
        assert!(c.fabric.sq_depth(busy) > 0, "send is in flight");
        // Pressure: far more activations than capacity, plus idle ages
        // long past the teardown threshold.
        for _ in 0..(cap * 4) {
            now += age + SimDuration::from_micros(1 + rng.gen_range(100));
            let h = connect(&mut c);
            pool.add(c.tenant, c.peer, h, now);
            pool.pick_least_congested(&c.fabric, now, c.tenant, c.peer);
            pool.deactivate_idle(&c.fabric, now);
            pool.teardown_idle(&c.fabric, now);
            assert!(pool.contains(busy), "in-flight QP evicted out of the pool");
            assert!(
                c.fabric.qp_ready(busy),
                "in-flight QP destroyed under the send"
            );
        }
        assert!(pool.evictions() + pool.teardowns() > 0, "pressure was real");
    }
}

/// Drives `a` (sharded) and `b` (flat) through one random schedule,
/// asserting observational equality after every mutation.
fn differential_round(rng: &mut SimRng, a: &mut ShardedTable<u32>, b: &mut ShardedTable<u32>) {
    let key_space = 1 + rng.gen_range(60) as u32;
    let nodes = 2 + rng.gen_range(4) as u16;
    let ops = 60 + rng.gen_range(120);
    for _ in 0..ops {
        let k = rng.gen_range(key_space as u64) as u32;
        let node = NodeId(rng.gen_range(nodes as u64) as u16);
        match rng.gen_range(12) {
            0..=3 => {
                a.set(k, node);
                b.set(k, node);
            }
            4..=5 => {
                a.set_backup(k, node);
                b.set_backup(k, node);
            }
            6 => {
                assert_eq!(a.remove(k), b.remove(k));
            }
            7..=8 => {
                assert_eq!(a.fail_over(node), b.fail_over(node), "fail_over({node:?})");
            }
            9 => {
                assert_eq!(a.restore(node), b.restore(node), "restore({node:?})");
            }
            _ => {
                assert_eq!(a.lookup(k), b.lookup(k));
            }
        }
        // Full observable state must agree after every op.
        assert_eq!(a.len(), b.len());
        for k in 0..key_space {
            assert_eq!(a.lookup(k), b.lookup(k), "lookup({k})");
            assert_eq!(a.backup_of(k), b.backup_of(k), "backup_of({k})");
            match (a.resolve(k), b.resolve(k)) {
                (Ok(x), Ok(y)) => assert_eq!(x, y),
                (
                    Err(RouteError::UnknownDestination { .. }),
                    Err(RouteError::UnknownDestination { .. }),
                ) => {}
                (
                    Err(RouteError::DestinationDown { node: x, .. }),
                    Err(RouteError::DestinationDown { node: y, .. }),
                ) => assert_eq!(x, y),
                (x, y) => panic!("resolve({k}) diverged: {x:?} vs {y:?}"),
            }
        }
        for n in 0..nodes {
            assert_eq!(
                a.functions_on(NodeId(n)),
                b.functions_on(NodeId(n)),
                "functions_on({n})"
            );
        }
    }
}

#[test]
fn sharded_routing_is_observationally_equal_to_flat() {
    let mut rng = SimRng::new(0xd1ff);
    for round in 0..cases(20, 160) {
        let shards = [2usize, 8, 64][round % 3];
        let mut sharded = ShardedTable::<u32>::with_shards(shards);
        let mut flat = ShardedTable::<u32>::with_shards(1);
        assert_eq!(flat.shard_count(), 1);
        differential_round(&mut rng, &mut sharded, &mut flat);
    }
}
