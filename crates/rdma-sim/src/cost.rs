//! The calibrated RDMA timing model.
//!
//! Constants are chosen so the microbenchmarks reproduce the latencies the
//! paper states for its ConnectX-6 / 200 Gbps testbed:
//!
//! - two-sided 64 B echo RTT ≈ 8.4 µs and 4 KiB ≈ 11.6 µs (§4.1.2) once the
//!   DNE's per-descriptor handling is added on both ends;
//! - a single one-sided write completing in ≈ 4 µs (§4.1.2);
//! - RC connection establishment "of the order of tens of milliseconds"
//!   (§3.3).
//!
//! Every field is public so ablation benches can sweep it.

use simcore::SimDuration;

/// Timing parameters of an RNIC + fabric.
#[derive(Debug, Clone)]
pub struct RdmaCosts {
    /// Fixed RNIC processing per work request on the requester side.
    pub rnic_tx_fixed: SimDuration,
    /// Fixed RNIC processing per message on the responder side.
    pub rnic_rx_fixed: SimDuration,
    /// One-way propagation + switching delay.
    pub propagation: SimDuration,
    /// Link bandwidth in bytes per second (200 Gb/s = 25 GB/s).
    pub link_bytes_per_sec: f64,
    /// Effective host-memory DMA rate per RNIC for payload fetch/deposit
    /// (PCIe + memory-subsystem blend), charged once on each side.
    pub host_dma_bytes_per_sec: f64,
    /// Burst tolerance of the egress shaper, bytes.
    pub link_burst_bytes: f64,
    /// Largest message the transport accepts (RC max message size).
    pub max_msg_size: usize,
    /// RC connection establishment delay.
    pub connect_delay: SimDuration,
    /// Time to claim a pre-warmed connection: the three-way handshake and
    /// QP state machine already ran in the background, so a claim only
    /// binds the pair to a tenant and arms the receive side (Swift's
    /// control/data-plane split: microseconds instead of tens of
    /// milliseconds on the request path).
    pub prewarm_claim_delay: SimDuration,
    /// Receiver-not-ready retry timer.
    pub rnr_timer: SimDuration,
    /// Number of RNR retries before the send fails.
    pub rnr_retries: u32,
    /// Number of *active* QPs the RNIC caches without penalty.
    pub qp_cache_entries: usize,
    /// Extra per-op cost once the active-QP set overflows the cache,
    /// applied in proportion to the overflow fraction.
    pub qp_cache_miss_penalty: SimDuration,
    /// Number of memory-translation entries cached without penalty.
    pub mtt_cache_entries: usize,
    /// Extra per-op cost when registered MTT entries overflow the cache.
    pub mtt_miss_penalty: SimDuration,
    /// Extra latency of an ACK returning to the requester (affects when the
    /// sender sees its completion, not when data lands).
    pub ack_delay: SimDuration,
    /// Responder-side processing of an atomic (compare-and-swap), on top of
    /// the usual RX fixed cost. Used by the distributed-lock baseline.
    pub atomic_extra: SimDuration,
}

impl Default for RdmaCosts {
    fn default() -> Self {
        RdmaCosts {
            rnic_tx_fixed: SimDuration::from_nanos(850),
            rnic_rx_fixed: SimDuration::from_nanos(850),
            propagation: SimDuration::from_nanos(950),
            link_bytes_per_sec: 25_000_000_000.0,
            host_dma_bytes_per_sec: 5_500_000_000.0,
            link_burst_bytes: 64.0 * 1024.0,
            max_msg_size: 1 << 20,
            connect_delay: SimDuration::from_millis(20),
            prewarm_claim_delay: SimDuration::from_micros(100),
            rnr_timer: SimDuration::from_micros(50),
            rnr_retries: 7,
            qp_cache_entries: 128,
            qp_cache_miss_penalty: SimDuration::from_nanos(1_200),
            mtt_cache_entries: 4_096,
            mtt_miss_penalty: SimDuration::from_nanos(500),
            ack_delay: SimDuration::from_nanos(950),
            atomic_extra: SimDuration::from_nanos(300),
        }
    }
}

impl RdmaCosts {
    /// Serialization delay for `bytes` at the link rate.
    pub fn serialization(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.link_bytes_per_sec)
    }

    /// Host-memory DMA time for `bytes` on one side of a transfer.
    pub fn host_dma(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.host_dma_bytes_per_sec)
    }

    /// One-way delivery latency for an uncontended message of `bytes`:
    /// requester RNIC + serialization + propagation + responder RNIC.
    pub fn one_way(&self, bytes: usize) -> SimDuration {
        self.rnic_tx_fixed
            + self.host_dma(bytes)
            + self.serialization(bytes)
            + self.propagation
            + self.rnic_rx_fixed
            + self.host_dma(bytes)
    }

    /// The fabric's one-way latency floor: the delivery latency of an empty
    /// message, which every larger message only exceeds (all components are
    /// monotone in size).
    ///
    /// This is the conservative **lookahead** bound the sharded engine
    /// ([`simcore::shard`]) synchronizes on: no cross-node effect can land
    /// sooner than this, so every shard may safely run `floor` ahead of the
    /// global minimum. A configuration whose floor is zero cannot be
    /// sharded (rejected at shard-build time).
    pub fn latency_floor(&self) -> SimDuration {
        self.one_way(0)
    }

    /// The cache-overflow penalty given `active` QPs.
    ///
    /// Deterministic proportional model: when the active set exceeds the
    /// cache, the expected per-op penalty is the miss penalty scaled by the
    /// fraction of QP state that cannot reside in the cache.
    pub fn qp_cache_penalty(&self, active: usize) -> SimDuration {
        if active <= self.qp_cache_entries || active == 0 {
            return SimDuration::ZERO;
        }
        let overflow = (active - self.qp_cache_entries) as f64 / active as f64;
        self.qp_cache_miss_penalty.mul_f64(overflow)
    }

    /// The MTT-overflow penalty given `entries` registered translations.
    pub fn mtt_penalty(&self, entries: usize) -> SimDuration {
        if entries <= self.mtt_cache_entries || entries == 0 {
            return SimDuration::ZERO;
        }
        let overflow = (entries - self.mtt_cache_entries) as f64 / entries as f64;
        self.mtt_miss_penalty.mul_f64(overflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_scales_with_size() {
        let c = RdmaCosts::default();
        // 25 GB/s: 4 KiB should take ~164 ns.
        let d = c.serialization(4096);
        assert!(d.as_nanos() >= 160 && d.as_nanos() <= 170, "{d:?}");
        assert_eq!(c.serialization(0), SimDuration::ZERO);
    }

    #[test]
    fn one_way_small_message_is_a_few_microseconds() {
        let c = RdmaCosts::default();
        let us = c.one_way(64).as_micros_f64();
        assert!(us > 2.0 && us < 4.0, "one-way 64B = {us}us");
    }

    #[test]
    fn latency_floor_is_positive_and_bounds_every_message() {
        let c = RdmaCosts::default();
        let floor = c.latency_floor();
        assert!(
            floor > SimDuration::ZERO,
            "default fabric has a non-zero floor"
        );
        for bytes in [0usize, 1, 64, 4096, 1 << 20] {
            assert!(c.one_way(bytes) >= floor, "{bytes}B undercuts the floor");
        }
        // A degenerate zero-cost fabric yields a zero floor — the sharded
        // engine must reject it at build time rather than misorder events.
        let zero = RdmaCosts {
            rnic_tx_fixed: SimDuration::ZERO,
            rnic_rx_fixed: SimDuration::ZERO,
            propagation: SimDuration::ZERO,
            ..RdmaCosts::default()
        };
        assert_eq!(zero.latency_floor(), SimDuration::ZERO);
    }

    #[test]
    fn qp_cache_penalty_kicks_in_past_capacity() {
        let c = RdmaCosts::default();
        assert_eq!(c.qp_cache_penalty(0), SimDuration::ZERO);
        assert_eq!(c.qp_cache_penalty(128), SimDuration::ZERO);
        let p256 = c.qp_cache_penalty(256);
        assert_eq!(p256, c.qp_cache_miss_penalty.mul_f64(0.5));
        let p512 = c.qp_cache_penalty(512);
        assert!(p512 > p256, "penalty grows with overflow");
    }

    #[test]
    fn mtt_penalty_monotone() {
        let c = RdmaCosts::default();
        assert_eq!(c.mtt_penalty(4096), SimDuration::ZERO);
        assert!(c.mtt_penalty(8192) > SimDuration::ZERO);
        assert!(c.mtt_penalty(16384) > c.mtt_penalty(8192));
    }
}
