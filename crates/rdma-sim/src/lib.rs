//! Simulated RDMA substrate for the NADINO reproduction.
//!
//! This crate stands in for the ConnectX-6 RNIC and the 200 Gbps RDMA
//! fabric of the paper's testbed. It implements Reliable Connected (RC)
//! transport semantics — the transport NADINO uses exclusively (§2.1) —
//! over the deterministic event engine from [`simcore`]:
//!
//! - [`types`]: identifiers, work-request ids, completion entries, errors.
//! - [`cost`]: the calibrated timing model (RNIC processing, propagation,
//!   serialization at 200 Gbps, RNR timers, QP-cache and MTT penalties).
//! - [`mr`]: memory-region registration — only pools exported with the
//!   `Rdma` grant may be registered, reproducing the DOCA mmap contract.
//! - [`fabric`]: the fabric itself — nodes, RC connection establishment
//!   (tens of milliseconds, as measured in the paper), two-sided
//!   send/receive with shared receive queues and RNR NAK behaviour,
//!   completion queues with optional wakers, and the shadow-QP
//!   active/inactive accounting that feeds the QP-cache model.
//! - [`onesided`]: one-sided WRITE/READ plus the landing-zone and
//!   distributed-lock helpers used by the Fig. 12 baselines (OWRC, OWDL).
//!
//! Payload bytes really move: a two-sided send copies from the sender's
//! [`membuf`] pool buffer into the receiver's posted buffer at the instant
//! the simulated DMA completes, so end-to-end tests can assert content
//! integrity, not just timing.

pub mod cost;
pub mod fabric;
pub mod fault;
pub mod mr;
pub mod onesided;
pub mod types;

pub use cost::RdmaCosts;
pub use fabric::{Fabric, QpCounters, QpHandle};
pub use fault::{FaultPlane, FaultStats};
pub use types::{Cqe, CqeStatus, NodeId, QpId, RdmaError, WrId};
