//! Identifiers, completions and errors for the RDMA substrate.

use std::fmt;

use membuf::pool::OwnedBuf;

/// A node (server) attached to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A queue pair, unique fabric-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QpId(pub u32);

/// A work-request identifier chosen by the poster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WrId(pub u64);

/// A remote-access key naming a registered memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RKey(pub u32);

/// Completion status, mirroring `ibv_wc_status` at the granularity we need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqeStatus {
    /// Operation completed successfully.
    Success,
    /// Receiver-not-ready retries were exhausted.
    RnrRetryExceeded,
    /// The incoming message exceeded the posted receive buffer.
    LocalLengthError,
    /// The remote key did not resolve on the responder.
    RemoteAccessError,
    /// Transport-level retries timed out: the message was lost on the wire
    /// (injected link loss or a crashed endpoint) and never acknowledged.
    TransportRetryExceeded,
    /// The payload arrived damaged (injected corruption); both ends see
    /// error completions.
    DataCorrupted,
}

/// The operation a completion refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqeOpcode {
    Send,
    Recv,
    Write,
    Read,
    CompareSwap,
}

/// A completion-queue entry.
///
/// Unlike hardware CQEs, ours may carry the buffer back to the poller:
/// sender completions return the sent buffer for recycling and receive
/// completions carry the filled buffer, exactly the hand-off the DNE's
/// RX stage performs via its receive-buffer registry.
#[derive(Debug)]
pub struct Cqe {
    pub wr_id: WrId,
    pub qp: QpId,
    pub opcode: CqeOpcode,
    pub status: CqeStatus,
    /// Payload bytes transferred.
    pub byte_len: u32,
    /// Immediate data from the sender (NADINO encodes routing metadata here).
    pub imm: u64,
    /// The buffer associated with the work request, when one was attached.
    pub buf: Option<OwnedBuf>,
}

/// Errors surfaced synchronously by verb calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdmaError {
    /// The queue pair does not exist on this node.
    UnknownQp(QpId),
    /// The queue pair is not ready (still connecting or errored).
    QpNotReady(QpId),
    /// The node identifier is not part of the fabric.
    UnknownNode(NodeId),
    /// The buffer's pool is not registered with the local RNIC.
    UnregisteredMemory,
    /// The remote key does not resolve.
    BadRKey(RKey),
    /// The referenced completion queue does not exist.
    UnknownCq,
    /// The referenced shared receive queue does not exist.
    UnknownRq,
    /// Landing-zone slot index out of range.
    BadSlot(u32),
    /// The payload exceeds the transport's configured maximum message size.
    MessageTooLarge { len: usize, max: usize },
}

impl fmt::Display for RdmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdmaError::UnknownQp(qp) => write!(f, "unknown QP {qp:?}"),
            RdmaError::QpNotReady(qp) => write!(f, "QP {qp:?} is not ready"),
            RdmaError::UnknownNode(n) => write!(f, "unknown node {n}"),
            RdmaError::UnregisteredMemory => write!(f, "memory not registered with the RNIC"),
            RdmaError::BadRKey(k) => write!(f, "bad rkey {k:?}"),
            RdmaError::UnknownCq => write!(f, "unknown completion queue"),
            RdmaError::UnknownRq => write!(f, "unknown shared receive queue"),
            RdmaError::BadSlot(i) => write!(f, "landing-zone slot {i} out of range"),
            RdmaError::MessageTooLarge { len, max } => {
                write!(f, "message of {len} bytes exceeds max {max}")
            }
        }
    }
}

impl std::error::Error for RdmaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(
            RdmaError::BadSlot(7).to_string(),
            "landing-zone slot 7 out of range"
        );
        assert_eq!(
            RdmaError::MessageTooLarge { len: 10, max: 5 }.to_string(),
            "message of 10 bytes exceeds max 5"
        );
    }

    #[test]
    fn ids_are_ordered() {
        assert!(QpId(1) < QpId(2));
        assert!(WrId(9) > WrId(3));
    }
}
