//! Memory-region registration.
//!
//! The DNE registers the (cross-processor mapped) unified memory pool with
//! the RNIC before any RDMA traffic can touch it (§3.4.2). Registration is
//! keyed by `(tenant, pool_id)` and returns an [`RKey`]; the fabric checks
//! every verb against this table, and the registered MTT entry count feeds
//! the RNIC cache-penalty model (hugepages keep it small, §3.4).

use std::collections::HashMap;

use membuf::export::{ExportTarget, MappedPool};
use membuf::pool::BufferPool;
use membuf::tenant::TenantId;

use crate::types::{RKey, RdmaError};

/// A registered memory region.
pub(crate) struct MemoryRegion {
    pub pool: BufferPool,
}

/// The per-node MR table.
#[derive(Default)]
pub(crate) struct MrTable {
    by_pool: HashMap<(TenantId, u16), RKey>,
    by_rkey: HashMap<RKey, MemoryRegion>,
    next_rkey: u32,
    total_mtt: usize,
}

impl MrTable {
    /// Registers a pool directly (host-side registration path).
    pub fn register_pool(&mut self, pool: BufferPool) -> RKey {
        let key = (pool.tenant(), pool.pool_id());
        if let Some(&rkey) = self.by_pool.get(&key) {
            return rkey;
        }
        let rkey = RKey(self.next_rkey);
        self.next_rkey += 1;
        self.total_mtt += pool.mtt_entries();
        self.by_pool.insert(key, rkey);
        self.by_rkey.insert(rkey, MemoryRegion { pool });
        rkey
    }

    /// Registers a cross-processor mapping; fails unless the originating
    /// export carried the `Rdma` grant (the DOCA contract).
    pub fn register_mapped(&mut self, mapped: &MappedPool) -> Result<RKey, RdmaError> {
        if !mapped.allows(ExportTarget::Rdma) {
            return Err(RdmaError::UnregisteredMemory);
        }
        Ok(self.register_pool(mapped.pool().clone()))
    }

    /// Looks up the rkey for a pool, if registered.
    pub fn rkey_of(&self, tenant: TenantId, pool_id: u16) -> Option<RKey> {
        self.by_pool.get(&(tenant, pool_id)).copied()
    }

    /// Resolves an rkey to its region.
    pub fn region(&self, rkey: RKey) -> Result<&MemoryRegion, RdmaError> {
        self.by_rkey.get(&rkey).ok_or(RdmaError::BadRKey(rkey))
    }

    /// Returns `true` if the pool backing `tenant/pool_id` is registered.
    pub fn is_registered(&self, tenant: TenantId, pool_id: u16) -> bool {
        self.by_pool.contains_key(&(tenant, pool_id))
    }

    /// Total registered translation entries (drives the MTT penalty).
    pub fn total_mtt_entries(&self) -> usize {
        self.total_mtt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membuf::export::ExportDescriptor;
    use membuf::pool::PoolConfig;

    fn mk_pool(tenant: u16, pool_id: u16) -> BufferPool {
        let mut cfg = PoolConfig::new(TenantId(tenant), pool_id, 256, 4);
        cfg.segment_size = 4096;
        BufferPool::new(cfg).unwrap()
    }

    #[test]
    fn register_is_idempotent() {
        let mut t = MrTable::default();
        let p = mk_pool(1, 0);
        let k1 = t.register_pool(p.clone());
        let k2 = t.register_pool(p);
        assert_eq!(k1, k2);
        assert_eq!(t.total_mtt_entries(), 1);
    }

    #[test]
    fn rkey_resolves_to_the_right_pool() {
        let mut t = MrTable::default();
        let a = mk_pool(1, 0);
        let b = mk_pool(2, 3);
        let ka = t.register_pool(a);
        let kb = t.register_pool(b);
        assert_ne!(ka, kb);
        assert_eq!(t.region(kb).unwrap().pool.tenant(), TenantId(2));
        assert_eq!(t.rkey_of(TenantId(1), 0), Some(ka));
        assert_eq!(t.rkey_of(TenantId(1), 9), None);
    }

    #[test]
    fn mapped_registration_requires_rdma_grant() {
        let mut t = MrTable::default();
        let p = mk_pool(1, 0);
        let pci_only = ExportDescriptor::export(&p, &[ExportTarget::Pci])
            .unwrap()
            .import(ExportTarget::Pci)
            .unwrap();
        assert_eq!(
            t.register_mapped(&pci_only).unwrap_err(),
            RdmaError::UnregisteredMemory
        );
        let full = ExportDescriptor::export(&p, &[ExportTarget::Pci, ExportTarget::Rdma])
            .unwrap()
            .import(ExportTarget::Pci)
            .unwrap();
        assert!(t.register_mapped(&full).is_ok());
    }

    #[test]
    fn unknown_rkey_errors() {
        let t = MrTable::default();
        assert_eq!(
            t.region(RKey(9)).map(|_| ()).unwrap_err(),
            RdmaError::BadRKey(RKey(9))
        );
    }
}
