//! One-sided RDMA verbs: WRITE, READ and compare-and-swap.
//!
//! These exist to implement the Fig. 12 baselines faithfully:
//!
//! - **OWRC** (one-sided write with receiver-side copy): the receiver
//!   dedicates an RDMA-only *landing zone* (§2.1, Fig. 3 (2)); remote
//!   writes land there without consuming receive WRs or raising receiver
//!   completions, and the receiver discovers data FARM-style by polling
//!   ([`Fabric::poll_landing`]) before copying the payload into its local
//!   pool.
//! - **OWDL** (one-sided write with distributed locks): lock words live in
//!   atomic cells on the responder; remote lock acquisition uses RDMA
//!   compare-and-swap round trips ([`Fabric::post_cas`]), local access uses
//!   [`Fabric::local_cas`].
//!
//! NADINO itself deliberately avoids these primitives (Design
//! Implication #3); they are here so the comparison can be reproduced.

use membuf::pool::OwnedBuf;
use simcore::{Sim, SimTime};

use crate::fabric::{Fabric, LandingSlot, QpHandle};
use crate::types::{Cqe, CqeOpcode, CqeStatus, NodeId, RKey, RdmaError, WrId};

impl Fabric {
    /// Dedicates `buf` as landing slot `(rkey, slot)` on `node`.
    ///
    /// The slot is an RDMA-only buffer: remote one-sided writes land here
    /// without any receiver involvement.
    pub fn post_landing(
        &self,
        node: NodeId,
        rkey: RKey,
        slot: u32,
        buf: OwnedBuf,
    ) -> Result<(), RdmaError> {
        let rc = self.inner_rc();
        let mut inner = rc.borrow_mut();
        {
            // The slot buffer must come from the pool the rkey names.
            let region = inner.node(node)?.mrs.region(rkey)?;
            let pool = buf.pool();
            if region.pool.tenant() != pool.tenant() || region.pool.pool_id() != pool.pool_id() {
                return Err(RdmaError::UnregisteredMemory);
            }
        }
        inner.node_mut(node)?.landing.insert(
            (rkey, slot),
            LandingSlot {
                buf,
                len: 0,
                ready_at: SimTime::MAX,
                written: false,
            },
        );
        Ok(())
    }

    /// FARM-style arrival poll: returns the payload length once a write to
    /// the slot has landed (relative to virtual `now`).
    pub fn poll_landing(
        &self,
        now: SimTime,
        node: NodeId,
        rkey: RKey,
        slot: u32,
    ) -> Result<Option<u32>, RdmaError> {
        let rc = self.inner_rc();
        let inner = rc.borrow();
        let s = inner
            .node(node)?
            .landing
            .get(&(rkey, slot))
            .ok_or(RdmaError::BadSlot(slot))?;
        Ok((s.written && s.ready_at <= now).then_some(s.len))
    }

    /// Takes the landing buffer out of the slot (the receiver then copies
    /// the payload into its local pool and re-posts a fresh slot).
    pub fn claim_landing(
        &self,
        node: NodeId,
        rkey: RKey,
        slot: u32,
    ) -> Result<OwnedBuf, RdmaError> {
        let rc = self.inner_rc();
        let mut inner = rc.borrow_mut();
        let s = inner
            .node_mut(node)?
            .landing
            .remove(&(rkey, slot))
            .ok_or(RdmaError::BadSlot(slot))?;
        let mut buf = s.buf;
        buf.set_len(s.len as usize).expect("slot length fits");
        Ok(buf)
    }

    /// Posts a one-sided WRITE of `buf` into remote slot `(rkey, slot)`.
    ///
    /// The responder CPU (and RNIC receive queue) are not involved: no
    /// receiver completion is generated. The sender's completion returns
    /// after the ACK, carrying `buf` back.
    #[allow(clippy::too_many_arguments)]
    pub fn post_write(
        &self,
        sim: &mut Sim,
        h: QpHandle,
        wr_id: WrId,
        buf: OwnedBuf,
        rkey: RKey,
        slot: u32,
        imm: u64,
    ) -> Result<(), RdmaError> {
        let rc = self.inner_rc();
        let (peer, depart, ser, prop) = {
            let mut inner = rc.borrow_mut();
            let pool = buf.pool();
            let (peer, depart) = inner.admit_tx(sim.now(), h, buf.len(), Some((&pool,)))?;
            (
                peer,
                depart,
                inner.costs.serialization(buf.len()),
                inner.costs.propagation,
            )
        };
        let arrival = depart + ser + prop;
        let rc2 = rc.clone();
        sim.schedule_at(arrival, move |sim| {
            let mut inner = rc2.borrow_mut();
            let penalty = inner.per_op_penalty(peer);
            let rx_fixed = inner.costs.rnic_rx_fixed + inner.costs.host_dma(buf.len());
            let ack = inner.costs.ack_delay;
            let sender_cq = inner.qp(h.node, h.qp).expect("sender QP").cq;
            let rx_done = {
                let node = &mut inner.nodes[peer.0 as usize];
                node.rx_messages += 1;
                node.rnic_rx.admit(sim.now(), rx_fixed + penalty)
            };
            inner.retire_wr(h);
            let node = &mut inner.nodes[peer.0 as usize];
            let (status, byte_len) = match node.landing.get_mut(&(rkey, slot)) {
                Some(s) if s.buf.buf_size() >= buf.len() => {
                    let len = buf.len();
                    s.buf.as_mut_slice()[..len].copy_from_slice(buf.as_slice());
                    s.len = len as u32;
                    s.ready_at = rx_done;
                    s.written = true;
                    (CqeStatus::Success, len as u32)
                }
                Some(_) => (CqeStatus::LocalLengthError, buf.len() as u32),
                None => (CqeStatus::RemoteAccessError, buf.len() as u32),
            };
            Fabric::schedule_cqe(
                &rc2,
                sim,
                rx_done + ack,
                sender_cq,
                Cqe {
                    wr_id,
                    qp: h.qp,
                    opcode: CqeOpcode::Write,
                    status,
                    byte_len,
                    imm,
                    buf: Some(buf),
                },
            );
        });
        Ok(())
    }

    /// Posts a one-sided READ of remote slot `(rkey, slot)` into `buf`.
    ///
    /// The completion (carrying the filled buffer) arrives after the full
    /// round trip plus the response serialization.
    pub fn post_read(
        &self,
        sim: &mut Sim,
        h: QpHandle,
        wr_id: WrId,
        buf: OwnedBuf,
        rkey: RKey,
        slot: u32,
    ) -> Result<(), RdmaError> {
        let rc = self.inner_rc();
        let (peer, depart, prop) = {
            let mut inner = rc.borrow_mut();
            // The READ request itself is a small control message.
            let (peer, depart) = inner.admit_tx(sim.now(), h, 16, None)?;
            (peer, depart, inner.costs.propagation)
        };
        let arrival = depart + prop;
        let rc2 = rc.clone();
        sim.schedule_at(arrival, move |sim| {
            let mut inner = rc2.borrow_mut();
            let penalty = inner.per_op_penalty(peer);
            let rx_fixed = inner.costs.rnic_rx_fixed;
            let prop = inner.costs.propagation;
            let sender_cq = inner.qp(h.node, h.qp).expect("sender QP").cq;
            let rx_done = {
                let node = &mut inner.nodes[peer.0 as usize];
                node.rx_messages += 1;
                node.rnic_rx.admit(sim.now(), rx_fixed + penalty)
            };
            inner.retire_wr(h);
            let node = &mut inner.nodes[peer.0 as usize];
            let mut buf = buf;
            let (status, len) = match node.landing.get(&(rkey, slot)) {
                Some(s) if (s.len as usize) <= buf.buf_size() => {
                    let len = s.len as usize;
                    let src = s.buf.as_slice();
                    buf.as_mut_slice()[..len].copy_from_slice(&src[..len]);
                    buf.set_len(len).expect("fits");
                    (CqeStatus::Success, len as u32)
                }
                Some(s) => (CqeStatus::LocalLengthError, s.len),
                None => (CqeStatus::RemoteAccessError, 0),
            };
            let response_time = inner.costs.serialization(len as usize) + prop;
            Fabric::schedule_cqe(
                &rc2,
                sim,
                rx_done + response_time,
                sender_cq,
                Cqe {
                    wr_id,
                    qp: h.qp,
                    opcode: CqeOpcode::Read,
                    status,
                    byte_len: len,
                    imm: 0,
                    buf: Some(buf),
                },
            );
        });
        Ok(())
    }

    /// Posts an RDMA compare-and-swap on remote atomic cell `(rkey, cell)`.
    ///
    /// The completion's `imm` field carries the *old* value (so the caller
    /// learns whether the swap happened), after a full round trip plus the
    /// responder's atomic execution cost.
    #[allow(clippy::too_many_arguments)]
    pub fn post_cas(
        &self,
        sim: &mut Sim,
        h: QpHandle,
        wr_id: WrId,
        rkey: RKey,
        cell: u32,
        expect: u64,
        swap: u64,
    ) -> Result<(), RdmaError> {
        let rc = self.inner_rc();
        let (peer, depart, prop) = {
            let mut inner = rc.borrow_mut();
            let (peer, depart) = inner.admit_tx(sim.now(), h, 32, None)?;
            (peer, depart, inner.costs.propagation)
        };
        let arrival = depart + prop;
        let rc2 = rc.clone();
        sim.schedule_at(arrival, move |sim| {
            let mut inner = rc2.borrow_mut();
            let penalty = inner.per_op_penalty(peer);
            let extra = inner.costs.atomic_extra;
            let rx_fixed = inner.costs.rnic_rx_fixed;
            let prop = inner.costs.propagation;
            let sender_cq = inner.qp(h.node, h.qp).expect("sender QP").cq;
            let rx_done = {
                let node = &mut inner.nodes[peer.0 as usize];
                node.rx_messages += 1;
                node.rnic_rx.admit(sim.now(), rx_fixed + penalty + extra)
            };
            inner.retire_wr(h);
            let node = &mut inner.nodes[peer.0 as usize];
            let cell_ref = node.atomics.entry((rkey, cell)).or_insert(0);
            let old = *cell_ref;
            if old == expect {
                *cell_ref = swap;
            }
            Fabric::schedule_cqe(
                &rc2,
                sim,
                rx_done + prop,
                sender_cq,
                Cqe {
                    wr_id,
                    qp: h.qp,
                    opcode: CqeOpcode::CompareSwap,
                    status: CqeStatus::Success,
                    byte_len: 8,
                    imm: old,
                    buf: None,
                },
            );
        });
        Ok(())
    }

    /// Executes a compare-and-swap on a *local* atomic cell (no network):
    /// the path local functions use to take the same lock remote writers
    /// contend on in the OWDL baseline. Returns the old value.
    pub fn local_cas(
        &self,
        node: NodeId,
        rkey: RKey,
        cell: u32,
        expect: u64,
        swap: u64,
    ) -> Result<u64, RdmaError> {
        let rc = self.inner_rc();
        let mut inner = rc.borrow_mut();
        let n = inner.node_mut(node)?;
        let cell_ref = n.atomics.entry((rkey, cell)).or_insert(0);
        let old = *cell_ref;
        if old == expect {
            *cell_ref = swap;
        }
        Ok(old)
    }

    /// Reads a local atomic cell's current value.
    pub fn atomic_value(&self, node: NodeId, rkey: RKey, cell: u32) -> Result<u64, RdmaError> {
        let rc = self.inner_rc();
        let inner = rc.borrow();
        Ok(inner
            .node(node)?
            .atomics
            .get(&(rkey, cell))
            .copied()
            .unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::RdmaCosts;
    use crate::fabric::{CqId, RqId};
    use membuf::pool::{BufferPool, PoolConfig};
    use membuf::tenant::TenantId;

    fn mk_pool(tenant: u16, pool_id: u16) -> BufferPool {
        let mut cfg = PoolConfig::new(TenantId(tenant), pool_id, 8192, 64);
        cfg.segment_size = 64 * 1024;
        BufferPool::new(cfg).unwrap()
    }

    struct Env {
        fabric: Fabric,
        sim: Sim,
        pool_a: BufferPool,
        pool_b: BufferPool,
        cq_a: CqId,
        rkey_b: RKey,
        h_ab: QpHandle,
        b: NodeId,
    }

    fn setup() -> Env {
        let fabric = Fabric::new(RdmaCosts::default());
        let mut sim = Sim::new();
        let a = fabric.add_node();
        let b = fabric.add_node();
        let tenant = TenantId(1);
        let pool_a = mk_pool(1, 0);
        let pool_b = mk_pool(1, 0);
        fabric.register_pool(a, pool_a.clone()).unwrap();
        let rkey_b = fabric.register_pool(b, pool_b.clone()).unwrap();
        let cq_a = fabric.create_cq(a).unwrap();
        let cq_b = fabric.create_cq(b).unwrap();
        let rq_a = fabric.create_rq(a, tenant).unwrap();
        let rq_b: RqId = fabric.create_rq(b, tenant).unwrap();
        let (h_ab, _) = fabric
            .connect(&mut sim, tenant, a, cq_a, rq_a, b, cq_b, rq_b)
            .unwrap();
        sim.run();
        Env {
            fabric,
            sim,
            pool_a,
            pool_b,
            cq_a,
            rkey_b,
            h_ab,
            b,
        }
    }

    #[test]
    fn one_sided_write_lands_without_receiver_involvement() {
        let mut e = setup();
        let slot_buf = e.pool_b.get().unwrap();
        e.fabric.post_landing(e.b, e.rkey_b, 0, slot_buf).unwrap();
        assert_eq!(
            e.fabric
                .poll_landing(e.sim.now(), e.b, e.rkey_b, 0)
                .unwrap(),
            None
        );
        let mut buf = e.pool_a.get().unwrap();
        buf.write_payload(b"receiver-oblivious").unwrap();
        let t0 = e.sim.now();
        e.fabric
            .post_write(&mut e.sim, e.h_ab, WrId(1), buf, e.rkey_b, 0, 0)
            .unwrap();
        e.sim.run();
        // Sender completion with the buffer back; ~4us for a small write.
        let cqes = e.fabric.poll_cq(e.cq_a, 8);
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].status, CqeStatus::Success);
        assert_eq!(cqes[0].opcode, CqeOpcode::Write);
        let us = (e.sim.now() - t0).as_micros_f64();
        assert!(us > 2.5 && us < 7.0, "write completion took {us}us");
        // Receiver polls and claims.
        let len = e
            .fabric
            .poll_landing(e.sim.now(), e.b, e.rkey_b, 0)
            .unwrap()
            .expect("data landed");
        assert_eq!(len as usize, "receiver-oblivious".len());
        let landed = e.fabric.claim_landing(e.b, e.rkey_b, 0).unwrap();
        assert_eq!(landed.as_slice(), b"receiver-oblivious");
    }

    #[test]
    fn write_to_missing_slot_errors() {
        let mut e = setup();
        let buf = e.pool_a.get().unwrap();
        e.fabric
            .post_write(&mut e.sim, e.h_ab, WrId(1), buf, e.rkey_b, 42, 0)
            .unwrap();
        e.sim.run();
        let cqes = e.fabric.poll_cq(e.cq_a, 8);
        assert_eq!(cqes[0].status, CqeStatus::RemoteAccessError);
        assert!(cqes[0].buf.is_some());
    }

    #[test]
    fn one_sided_read_fetches_remote_bytes() {
        let mut e = setup();
        let mut slot_buf = e.pool_b.get().unwrap();
        slot_buf.write_payload(b"remote state").unwrap();
        e.fabric.post_landing(e.b, e.rkey_b, 3, slot_buf).unwrap();
        // Mark it written by a local write: emulate by a remote write first.
        let mut w = e.pool_a.get().unwrap();
        w.write_payload(b"remote state").unwrap();
        e.fabric
            .post_write(&mut e.sim, e.h_ab, WrId(0), w, e.rkey_b, 3, 0)
            .unwrap();
        e.sim.run();
        e.fabric.poll_cq(e.cq_a, 8);

        let dst = e.pool_a.get().unwrap();
        e.fabric
            .post_read(&mut e.sim, e.h_ab, WrId(1), dst, e.rkey_b, 3)
            .unwrap();
        e.sim.run();
        let cqes = e.fabric.poll_cq(e.cq_a, 8);
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].status, CqeStatus::Success);
        assert_eq!(cqes[0].buf.as_ref().unwrap().as_slice(), b"remote state");
    }

    #[test]
    fn cas_acquires_and_releases_a_lock() {
        let mut e = setup();
        // Acquire: expect 0, swap to 1.
        e.fabric
            .post_cas(&mut e.sim, e.h_ab, WrId(1), e.rkey_b, 0, 0, 1)
            .unwrap();
        e.sim.run();
        let cqes = e.fabric.poll_cq(e.cq_a, 8);
        assert_eq!(cqes[0].imm, 0, "old value was 0, acquisition succeeded");
        assert_eq!(e.fabric.atomic_value(e.b, e.rkey_b, 0).unwrap(), 1);
        // Second acquire fails (old value 1 returned).
        e.fabric
            .post_cas(&mut e.sim, e.h_ab, WrId(2), e.rkey_b, 0, 0, 1)
            .unwrap();
        e.sim.run();
        let cqes = e.fabric.poll_cq(e.cq_a, 8);
        assert_eq!(cqes[0].imm, 1, "lock already held");
        // Local release.
        assert_eq!(e.fabric.local_cas(e.b, e.rkey_b, 0, 1, 0).unwrap(), 1);
        assert_eq!(e.fabric.atomic_value(e.b, e.rkey_b, 0).unwrap(), 0);
    }

    #[test]
    fn cas_takes_a_round_trip() {
        let mut e = setup();
        let t0 = e.sim.now();
        e.fabric
            .post_cas(&mut e.sim, e.h_ab, WrId(1), e.rkey_b, 0, 0, 1)
            .unwrap();
        e.sim.run();
        let us = (e.sim.now() - t0).as_micros_f64();
        assert!(us > 3.0 && us < 8.0, "CAS RTT = {us}us");
    }
}
