//! Deterministic fault injection for the fabric.
//!
//! A [`FaultPlane`] attaches to a [`Fabric`](crate::Fabric) and perturbs
//! message delivery: per-link loss and corruption probabilities (drawn from
//! a seeded [`SimRng`] so runs stay byte-reproducible), scheduled QP kills,
//! and node crash/restart windows during which every message touching the
//! node is lost. Faults never make work vanish silently — each one turns
//! into a proper error CQE so upper layers can react (retry, fail over,
//! reconnect), mirroring how real RC transport surfaces failures.
//!
//! A fault plane with all probabilities at zero and no scheduled events
//! consumes no randomness and leaves the delivery path byte-identical to a
//! fabric without one (asserted by `tests/chaos.rs`).

use std::collections::HashMap;

use simcore::{SimRng, SimTime};

use crate::types::NodeId;

/// Counters for every fault the plane has injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped on the wire by link loss.
    pub lost: u64,
    /// Messages delivered corrupted (error CQEs on both ends).
    pub corrupted: u64,
    /// Scheduled QP kills that fired.
    pub qp_kills: u64,
    /// Messages dropped because an endpoint was inside a crash window.
    pub outage_drops: u64,
}

/// What the fault plane decided for one message's wire traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultVerdict {
    /// Deliver normally.
    Deliver,
    /// The message vanished on the wire; only the sender learns (timeout).
    Lost,
    /// An endpoint is crashed; treated like loss but counted separately.
    Outage,
}

/// Seeded, deterministic fault model for a fabric.
///
/// Probabilities are looked up per directed link `(from, to)` first, then
/// fall back to the plane-wide defaults. All draws come from the plane's
/// own [`SimRng`] stream; links with probability zero skip the RNG
/// entirely, so a zero-fault plane is invisible to determinism checks.
#[derive(Debug, Clone)]
pub struct FaultPlane {
    rng: SimRng,
    default_loss: f64,
    default_corruption: f64,
    link_loss: HashMap<(NodeId, NodeId), f64>,
    link_corruption: HashMap<(NodeId, NodeId), f64>,
    /// Crash windows per node: messages to or from the node inside
    /// `[start, end)` are dropped.
    outages: HashMap<NodeId, Vec<(SimTime, SimTime)>>,
    pub(crate) stats: FaultStats,
}

impl FaultPlane {
    /// Creates a fault plane with its own RNG stream and no faults.
    pub fn new(seed: u64) -> Self {
        FaultPlane {
            rng: SimRng::new(seed),
            default_loss: 0.0,
            default_corruption: 0.0,
            link_loss: HashMap::new(),
            link_corruption: HashMap::new(),
            outages: HashMap::new(),
            stats: FaultStats::default(),
        }
    }

    /// Sets the loss probability applied to links without an override.
    pub fn set_default_loss(&mut self, p: f64) {
        self.default_loss = p.clamp(0.0, 1.0);
    }

    /// Sets the corruption probability applied to links without an override.
    pub fn set_default_corruption(&mut self, p: f64) {
        self.default_corruption = p.clamp(0.0, 1.0);
    }

    /// Sets the loss probability for the directed link `from -> to`.
    pub fn set_link_loss(&mut self, from: NodeId, to: NodeId, p: f64) {
        self.link_loss.insert((from, to), p.clamp(0.0, 1.0));
    }

    /// Sets the corruption probability for the directed link `from -> to`.
    pub fn set_link_corruption(&mut self, from: NodeId, to: NodeId, p: f64) {
        self.link_corruption.insert((from, to), p.clamp(0.0, 1.0));
    }

    /// Registers a crash window `[from, until)` for `node`.
    pub fn add_outage(&mut self, node: NodeId, from: SimTime, until: SimTime) {
        self.outages.entry(node).or_default().push((from, until));
    }

    /// Returns whether `node` is inside a crash window at `at`.
    pub fn in_outage(&self, node: NodeId, at: SimTime) -> bool {
        self.outages
            .get(&node)
            .is_some_and(|ws| ws.iter().any(|&(s, e)| at >= s && at < e))
    }

    fn loss_p(&self, from: NodeId, to: NodeId) -> f64 {
        *self
            .link_loss
            .get(&(from, to))
            .unwrap_or(&self.default_loss)
    }

    fn corruption_p(&self, from: NodeId, to: NodeId) -> f64 {
        *self
            .link_corruption
            .get(&(from, to))
            .unwrap_or(&self.default_corruption)
    }

    /// Decides whether a message on `from -> to` survives the wire at `at`.
    ///
    /// Only consults the RNG when the relevant probability is non-zero, so
    /// a zero-fault plane draws nothing and perturbs nothing.
    pub(crate) fn roll_wire(&mut self, from: NodeId, to: NodeId, at: SimTime) -> FaultVerdict {
        if self.in_outage(from, at) || self.in_outage(to, at) {
            self.stats.outage_drops += 1;
            return FaultVerdict::Outage;
        }
        let loss = self.loss_p(from, to);
        if loss > 0.0 && self.rng.chance(loss) {
            self.stats.lost += 1;
            return FaultVerdict::Lost;
        }
        FaultVerdict::Deliver
    }

    /// Decides whether a message that reached the responder arrives damaged.
    /// Rolled only after a receive buffer was popped.
    pub(crate) fn roll_corruption(&mut self, from: NodeId, to: NodeId) -> bool {
        let corr = self.corruption_p(from, to);
        if corr > 0.0 && self.rng.chance(corr) {
            self.stats.corrupted += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn zero_fault_plane_never_draws() {
        let mut fp = FaultPlane::new(7);
        let before = fp.rng.clone().next_u64();
        for _ in 0..100 {
            assert_eq!(
                fp.roll_wire(NodeId(0), NodeId(1), t(1)),
                FaultVerdict::Deliver
            );
            assert!(!fp.roll_corruption(NodeId(0), NodeId(1)));
        }
        // The RNG stream is untouched: the next draw matches a fresh clone.
        assert_eq!(fp.rng.next_u64(), before);
        assert_eq!(fp.stats, FaultStats::default());
    }

    #[test]
    fn link_override_beats_default() {
        let mut fp = FaultPlane::new(7);
        fp.set_default_loss(1.0);
        fp.set_link_loss(NodeId(0), NodeId(1), 0.0);
        assert_eq!(
            fp.roll_wire(NodeId(0), NodeId(1), t(1)),
            FaultVerdict::Deliver
        );
        assert_eq!(fp.roll_wire(NodeId(1), NodeId(0), t(1)), FaultVerdict::Lost);
        assert_eq!(fp.stats.lost, 1);
    }

    #[test]
    fn outage_windows_are_half_open_and_checked_both_ways() {
        let mut fp = FaultPlane::new(7);
        fp.add_outage(NodeId(2), t(10), t(20));
        assert!(!fp.in_outage(NodeId(2), t(9)));
        assert!(fp.in_outage(NodeId(2), t(10)));
        assert!(fp.in_outage(NodeId(2), t(19)));
        assert!(!fp.in_outage(NodeId(2), t(20)));
        // Either endpoint being down drops the message.
        assert_eq!(
            fp.roll_wire(NodeId(2), NodeId(0), t(15)),
            FaultVerdict::Outage
        );
        assert_eq!(
            fp.roll_wire(NodeId(0), NodeId(2), t(15)),
            FaultVerdict::Outage
        );
        assert_eq!(fp.stats.outage_drops, 2);
    }

    #[test]
    fn same_seed_same_verdicts() {
        let run = || {
            let mut fp = FaultPlane::new(0xC0FFEE);
            fp.set_default_loss(0.3);
            fp.set_default_corruption(0.2);
            (0..64)
                .map(|_| {
                    (
                        fp.roll_wire(NodeId(0), NodeId(1), t(1)),
                        fp.roll_corruption(NodeId(0), NodeId(1)),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
