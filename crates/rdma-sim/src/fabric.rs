//! The RDMA fabric: nodes, RC queue pairs, verbs and completion delivery.
//!
//! All state lives behind a single `Rc<RefCell<_>>` shared by the closures
//! the fabric schedules on the [`simcore::Sim`] event engine. Public verb
//! calls validate synchronously (like `ibv_post_send` returning an error)
//! and then schedule the hardware timeline:
//!
//! ```text
//! post_send ─→ requester RNIC (Server) ─→ egress shaper (TokenBucket)
//!           ─→ propagation ─→ responder RNIC (Server) ─→ RQ buffer pop
//!           ─→ DMA copy into receiver buffer ─→ receiver CQE
//!                                            └→ ACK ─→ sender CQE
//! ```
//!
//! Receive buffers come from shared receive queues (one per tenant, as in
//! §3.3); a send arriving at an empty RQ triggers RNR NAK retries and
//! eventually an error completion, reproducing RC semantics.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use membuf::export::MappedPool;
use membuf::pool::{BufferPool, OwnedBuf};
use membuf::tenant::TenantId;
use simcore::ratelimit::TokenBucket;
use simcore::{Server, Sim, SimDuration, SimTime};

use crate::cost::RdmaCosts;
use crate::fault::{FaultPlane, FaultStats, FaultVerdict};
use crate::mr::MrTable;
use crate::types::{Cqe, CqeOpcode, CqeStatus, NodeId, QpId, RKey, RdmaError, WrId};

/// A completion queue identifier (fabric-wide unique).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CqId(pub u32);

/// A shared receive queue identifier (fabric-wide unique).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RqId(pub u32);

/// Callback invoked when a CQE lands on an armed completion queue.
pub type CqWaker = Rc<dyn Fn(&mut Sim)>;

/// Normalizes a node pair into the unordered key the pre-warm stock uses.
fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QpState {
    Connecting,
    Ready,
    /// The connection failed (injected fault or fatal transport error).
    Error,
}

pub(crate) struct Qp {
    pub(crate) peer_node: NodeId,
    pub(crate) peer_qp: QpId,
    pub(crate) tenant: TenantId,
    pub(crate) cq: CqId,
    pub(crate) state: QpState,
    /// Shadow-QP accounting (§3.3): only active QPs occupy RNIC cache.
    pub(crate) active: bool,
    pub(crate) sq_outstanding: u32,
    pub(crate) sends_posted: u64,
    pub(crate) sends_completed: u64,
    pub(crate) bytes_posted: u64,
}

/// Per-QP traffic counters (observability surface for the DNE's
/// connection-pool and per-QP dashboards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QpCounters {
    /// Sends posted on this QP.
    pub posted: u64,
    /// Send completions generated (success or error).
    pub completed: u64,
    /// Payload bytes posted.
    pub bytes: u64,
}

struct RecvWr {
    wr_id: WrId,
    buf: OwnedBuf,
}

pub(crate) struct RqState {
    node: NodeId,
    tenant: TenantId,
    queue: VecDeque<RecvWr>,
    posted: u64,
    consumed: u64,
}

pub(crate) struct CqState {
    #[allow(dead_code)]
    node: NodeId,
    entries: VecDeque<Cqe>,
    capacity: usize,
    overflows: u64,
    waker: Option<CqWaker>,
}

pub(crate) struct LandingSlot {
    pub(crate) buf: OwnedBuf,
    pub(crate) len: u32,
    pub(crate) ready_at: SimTime,
    pub(crate) written: bool,
}

pub(crate) struct NodeState {
    pub(crate) rnic_tx: Server,
    pub(crate) rnic_rx: Server,
    pub(crate) egress: TokenBucket,
    pub(crate) qps: HashMap<QpId, Qp>,
    pub(crate) mrs: MrTable,
    pub(crate) active_qps: usize,
    /// High-water mark of simultaneously active QPs — the QP-cache
    /// pressure signal the elastic control plane sizes its capacity
    /// bound against.
    pub(crate) peak_active_qps: usize,
    /// One-sided landing slots keyed by `(rkey, slot index)`.
    pub(crate) landing: HashMap<(RKey, u32), LandingSlot>,
    /// Atomic cells for compare-and-swap, keyed by `(rkey, cell index)`.
    pub(crate) atomics: HashMap<(RKey, u32), u64>,
    pub(crate) tx_messages: u64,
    pub(crate) rx_messages: u64,
    pub(crate) rnr_events: u64,
}

pub(crate) struct Inner {
    pub(crate) costs: RdmaCosts,
    pub(crate) nodes: Vec<NodeState>,
    pub(crate) cqs: HashMap<CqId, CqState>,
    pub(crate) rqs: HashMap<RqId, RqState>,
    pub(crate) qp_rq: HashMap<QpId, RqId>,
    /// Pre-warmed connection stock per unordered node pair: QP pairs whose
    /// RC handshake already ran in the background, waiting for a tenant to
    /// claim them (Swift-style pre-warm pool).
    pub(crate) prewarm: HashMap<(NodeId, NodeId), usize>,
    /// Optional deterministic fault model; `None` leaves delivery untouched.
    pub(crate) faults: Option<FaultPlane>,
    /// Annotates fault-plane events into request traces (disabled by
    /// default; see [`Fabric::set_tracer`]).
    pub(crate) tracer: obs::Tracer,
    next_qp: u32,
    next_cq: u32,
    next_rq: u32,
}

impl Inner {
    pub(crate) fn node(&self, id: NodeId) -> Result<&NodeState, RdmaError> {
        self.nodes
            .get(id.0 as usize)
            .ok_or(RdmaError::UnknownNode(id))
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> Result<&mut NodeState, RdmaError> {
        self.nodes
            .get_mut(id.0 as usize)
            .ok_or(RdmaError::UnknownNode(id))
    }

    pub(crate) fn qp(&self, node: NodeId, qp: QpId) -> Result<&Qp, RdmaError> {
        self.node(node)?
            .qps
            .get(&qp)
            .ok_or(RdmaError::UnknownQp(qp))
    }

    pub(crate) fn per_op_penalty(&self, node: NodeId) -> SimDuration {
        let n = &self.nodes[node.0 as usize];
        self.costs.qp_cache_penalty(n.active_qps)
            + self.costs.mtt_penalty(n.mrs.total_mtt_entries())
    }

    fn push_cqe(&mut self, cq: CqId, cqe: Cqe) -> Option<CqWaker> {
        let state = self.cqs.get_mut(&cq).expect("CQ validated at post time");
        if state.entries.len() >= state.capacity {
            // CQ overflow: on hardware this is a fatal async event; we drop
            // the completion (recycling any attached buffer) and count it.
            state.overflows += 1;
            return None;
        }
        state.entries.push_back(cqe);
        state.waker.clone()
    }

    /// Validates a requester-side post and admits it to the TX pipeline.
    /// Returns `(peer node, departure instant)`.
    pub(crate) fn admit_tx(
        &mut self,
        now: SimTime,
        h: QpHandle,
        len: usize,
        check_mr: Option<(&BufferPool,)>,
    ) -> Result<(NodeId, SimTime), RdmaError> {
        if len > self.costs.max_msg_size {
            return Err(RdmaError::MessageTooLarge {
                len,
                max: self.costs.max_msg_size,
            });
        }
        let penalty = self.per_op_penalty(h.node);
        let tx_fixed = self.costs.rnic_tx_fixed + self.costs.host_dma(len);
        {
            let node = self.node(h.node)?;
            if let Some((pool,)) = check_mr {
                if !node.mrs.is_registered(pool.tenant(), pool.pool_id()) {
                    return Err(RdmaError::UnregisteredMemory);
                }
            }
            let qp = node.qps.get(&h.qp).ok_or(RdmaError::UnknownQp(h.qp))?;
            if qp.state != QpState::Ready {
                return Err(RdmaError::QpNotReady(h.qp));
            }
        }
        let peer_node;
        let depart;
        {
            let node = self.node_mut(h.node)?;
            let tx_done = node.rnic_tx.admit(now, tx_fixed + penalty);
            depart = node.egress.reserve(tx_done, len as u64);
            node.tx_messages += 1;
            let qp = node.qps.get_mut(&h.qp).expect("validated above");
            qp.sq_outstanding += 1;
            qp.sends_posted += 1;
            qp.bytes_posted += len as u64;
            peer_node = qp.peer_node;
        }
        Ok((peer_node, depart))
    }

    /// Marks a WR as having left the SQ (a send completion was generated).
    pub(crate) fn retire_wr(&mut self, h: QpHandle) {
        if let Some(qp) = self.nodes[h.node.0 as usize].qps.get_mut(&h.qp) {
            qp.sq_outstanding = qp.sq_outstanding.saturating_sub(1);
            qp.sends_completed += 1;
        }
    }
}

/// A handle naming one endpoint of an RC connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QpHandle {
    pub node: NodeId,
    pub qp: QpId,
}

/// The simulated RDMA fabric.
///
/// Cloning the fabric clones a cheap handle to the same shared state.
///
/// # Examples
///
/// ```
/// use rdma_sim::{Fabric, RdmaCosts};
/// use simcore::Sim;
///
/// let fabric = Fabric::new(RdmaCosts::default());
/// let a = fabric.add_node();
/// let b = fabric.add_node();
/// assert_ne!(a, b);
/// ```
#[derive(Clone)]
pub struct Fabric {
    inner: Rc<RefCell<Inner>>,
}

impl Fabric {
    /// Creates an empty fabric with the given cost model.
    pub fn new(costs: RdmaCosts) -> Self {
        Fabric {
            inner: Rc::new(RefCell::new(Inner {
                costs,
                nodes: Vec::new(),
                cqs: HashMap::new(),
                rqs: HashMap::new(),
                qp_rq: HashMap::new(),
                prewarm: HashMap::new(),
                faults: None,
                tracer: obs::Tracer::default(),
                next_qp: 0,
                next_cq: 0,
                next_rq: 0,
            })),
        }
    }

    /// Returns a copy of the cost model in force.
    pub fn costs(&self) -> RdmaCosts {
        self.inner.borrow().costs.clone()
    }

    /// The conservative lookahead this fabric grants a sharded run: its
    /// one-way latency floor (see [`RdmaCosts::latency_floor`]). No message
    /// routed through this fabric can take effect on another node sooner
    /// than this, which is exactly the window bound `simcore::shard` needs.
    pub fn shard_lookahead(&self) -> simcore::SimDuration {
        self.inner.borrow().costs.latency_floor()
    }

    /// Attaches a new node (RNIC) to the fabric.
    pub fn add_node(&self) -> NodeId {
        let mut inner = self.inner.borrow_mut();
        let id = NodeId(inner.nodes.len() as u16);
        let egress = TokenBucket::new(inner.costs.link_bytes_per_sec, inner.costs.link_burst_bytes);
        inner.nodes.push(NodeState {
            rnic_tx: Server::new(),
            rnic_rx: Server::new(),
            egress,
            qps: HashMap::new(),
            mrs: MrTable::default(),
            active_qps: 0,
            peak_active_qps: 0,
            landing: HashMap::new(),
            atomics: HashMap::new(),
            tx_messages: 0,
            rx_messages: 0,
            rnr_events: 0,
        });
        id
    }

    /// Creates a completion queue on `node` with the default depth (64 Ki
    /// entries, ample for every experiment).
    pub fn create_cq(&self, node: NodeId) -> Result<CqId, RdmaError> {
        self.create_cq_with_capacity(node, 64 * 1024)
    }

    /// Creates a completion queue with an explicit depth.
    ///
    /// Completions arriving at a full CQ are dropped and counted — the
    /// overflow condition real RNICs raise as a fatal async event.
    pub fn create_cq_with_capacity(
        &self,
        node: NodeId,
        capacity: usize,
    ) -> Result<CqId, RdmaError> {
        assert!(capacity > 0, "CQ capacity must be positive");
        let mut inner = self.inner.borrow_mut();
        inner.node(node)?;
        let id = CqId(inner.next_cq);
        inner.next_cq += 1;
        inner.cqs.insert(
            id,
            CqState {
                node,
                entries: VecDeque::new(),
                capacity,
                overflows: 0,
                waker: None,
            },
        );
        Ok(id)
    }

    /// Returns how many completions were lost to CQ overflow.
    pub fn cq_overflows(&self, cq: CqId) -> u64 {
        self.inner
            .borrow()
            .cqs
            .get(&cq)
            .map(|c| c.overflows)
            .unwrap_or(0)
    }

    /// Creates a shared receive queue for `tenant` on `node` (§3.3: all of a
    /// tenant's RCQPs share one RQ so data lands in the right pool).
    pub fn create_rq(&self, node: NodeId, tenant: TenantId) -> Result<RqId, RdmaError> {
        let mut inner = self.inner.borrow_mut();
        inner.node(node)?;
        let id = RqId(inner.next_rq);
        inner.next_rq += 1;
        inner.rqs.insert(
            id,
            RqState {
                node,
                tenant,
                queue: VecDeque::new(),
                posted: 0,
                consumed: 0,
            },
        );
        Ok(id)
    }

    /// Arms `cq` with a waker invoked whenever a completion is delivered.
    pub fn set_cq_waker(&self, cq: CqId, waker: CqWaker) -> Result<(), RdmaError> {
        let mut inner = self.inner.borrow_mut();
        inner.cqs.get_mut(&cq).ok_or(RdmaError::UnknownCq)?.waker = Some(waker);
        Ok(())
    }

    /// Registers a host pool with the node's RNIC.
    pub fn register_pool(&self, node: NodeId, pool: BufferPool) -> Result<RKey, RdmaError> {
        let mut inner = self.inner.borrow_mut();
        Ok(inner.node_mut(node)?.mrs.register_pool(pool))
    }

    /// Registers a cross-processor mapped pool; requires the `Rdma` grant.
    pub fn register_mapped(&self, node: NodeId, mapped: &MappedPool) -> Result<RKey, RdmaError> {
        let mut inner = self.inner.borrow_mut();
        inner.node_mut(node)?.mrs.register_mapped(mapped)
    }

    /// Looks up the rkey a pool was registered under on `node`.
    pub fn rkey_of(&self, node: NodeId, tenant: TenantId, pool_id: u16) -> Option<RKey> {
        self.inner
            .borrow()
            .node(node)
            .ok()?
            .mrs
            .rkey_of(tenant, pool_id)
    }

    /// Establishes an RC connection between `a` and `b` for `tenant`.
    ///
    /// Returns the two QP endpoints immediately in `Connecting` state; they
    /// transition to `Ready` after the configured connection-setup delay
    /// (tens of milliseconds, §3.3). QPs start *inactive* (shadow QPs).
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        &self,
        sim: &mut Sim,
        tenant: TenantId,
        a: NodeId,
        cq_a: CqId,
        rq_a: RqId,
        b: NodeId,
        cq_b: CqId,
        rq_b: RqId,
    ) -> Result<(QpHandle, QpHandle), RdmaError> {
        let delay = self.inner.borrow().costs.connect_delay;
        self.establish(sim, tenant, a, cq_a, rq_a, b, cq_b, rq_b, delay)
    }

    /// Creates a QP pair that becomes `Ready` after `delay` — the shared
    /// tail of the cold [`Fabric::connect`] path and the pre-warmed
    /// [`Fabric::claim_prewarmed`] path.
    #[allow(clippy::too_many_arguments)]
    fn establish(
        &self,
        sim: &mut Sim,
        tenant: TenantId,
        a: NodeId,
        cq_a: CqId,
        rq_a: RqId,
        b: NodeId,
        cq_b: CqId,
        rq_b: RqId,
        delay: SimDuration,
    ) -> Result<(QpHandle, QpHandle), RdmaError> {
        let (qa, qb) = {
            let mut inner = self.inner.borrow_mut();
            inner.node(a)?;
            inner.node(b)?;
            if inner.cqs.get(&cq_a).map(|c| c.node) != Some(a)
                || inner.cqs.get(&cq_b).map(|c| c.node) != Some(b)
            {
                return Err(RdmaError::UnknownCq);
            }
            if inner.rqs.get(&rq_a).map(|r| r.node) != Some(a)
                || inner.rqs.get(&rq_b).map(|r| r.node) != Some(b)
            {
                return Err(RdmaError::UnknownRq);
            }
            let qa = QpId(inner.next_qp);
            let qb = QpId(inner.next_qp + 1);
            inner.next_qp += 2;
            let mk = |peer_node, peer_qp, cq| Qp {
                peer_node,
                peer_qp,
                tenant,
                cq,
                state: QpState::Connecting,
                active: false,
                sq_outstanding: 0,
                sends_posted: 0,
                sends_completed: 0,
                bytes_posted: 0,
            };
            let qp_a = mk(b, qb, cq_a);
            let qp_b = mk(a, qa, cq_b);
            inner.nodes[a.0 as usize].qps.insert(qa, qp_a);
            inner.nodes[b.0 as usize].qps.insert(qb, qp_b);
            inner.qp_rq.insert(qa, rq_a);
            inner.qp_rq.insert(qb, rq_b);
            (qa, qb)
        };
        let inner = self.inner.clone();
        sim.schedule_after(delay, move |_| {
            let mut inner = inner.borrow_mut();
            if let Some(qp) = inner.nodes[a.0 as usize].qps.get_mut(&qa) {
                qp.state = QpState::Ready;
            }
            if let Some(qp) = inner.nodes[b.0 as usize].qps.get_mut(&qb) {
                qp.state = QpState::Ready;
            }
        });
        Ok((QpHandle { node: a, qp: qa }, QpHandle { node: b, qp: qb }))
    }

    /// Pre-establishes `n` connection skeletons between `a` and `b` in the
    /// background: after the usual connection-setup delay they join the
    /// pair's pre-warm stock, where a later [`Fabric::claim_prewarmed`]
    /// turns one into a tenant-bound QP pair in microseconds instead of
    /// tens of milliseconds. The stock is unordered — prewarmed capacity
    /// between two nodes serves claims in either direction.
    pub fn prewarm_link(
        &self,
        sim: &mut Sim,
        a: NodeId,
        b: NodeId,
        n: usize,
    ) -> Result<(), RdmaError> {
        let delay = {
            let inner = self.inner.borrow();
            inner.node(a)?;
            inner.node(b)?;
            inner.costs.connect_delay
        };
        if n == 0 {
            return Ok(());
        }
        let key = link_key(a, b);
        let inner = self.inner.clone();
        sim.schedule_after(delay, move |_| {
            *inner.borrow_mut().prewarm.entry(key).or_insert(0) += n;
        });
        Ok(())
    }

    /// Returns how many pre-warmed connection skeletons are ready to claim
    /// between `a` and `b`.
    pub fn prewarmed_available(&self, a: NodeId, b: NodeId) -> usize {
        self.inner
            .borrow()
            .prewarm
            .get(&link_key(a, b))
            .copied()
            .unwrap_or(0)
    }

    /// Claims a pre-warmed connection skeleton between `a` and `b` for
    /// `tenant`, binding it into a usable QP pair after the (microsecond)
    /// claim delay. Returns `Ok(None)` when the pair's pre-warm stock is
    /// empty — the caller falls back to a cold [`Fabric::connect`].
    #[allow(clippy::too_many_arguments)]
    pub fn claim_prewarmed(
        &self,
        sim: &mut Sim,
        tenant: TenantId,
        a: NodeId,
        cq_a: CqId,
        rq_a: RqId,
        b: NodeId,
        cq_b: CqId,
        rq_b: RqId,
    ) -> Result<Option<(QpHandle, QpHandle)>, RdmaError> {
        let delay = {
            let mut inner = self.inner.borrow_mut();
            let Some(stock) = inner.prewarm.get_mut(&link_key(a, b)).filter(|s| **s > 0) else {
                return Ok(None);
            };
            *stock -= 1;
            inner.costs.prewarm_claim_delay
        };
        match self.establish(sim, tenant, a, cq_a, rq_a, b, cq_b, rq_b, delay) {
            Ok(pair) => Ok(Some(pair)),
            Err(e) => {
                // Validation failed after the stock was debited: refund it.
                *self
                    .inner
                    .borrow_mut()
                    .prewarm
                    .entry(link_key(a, b))
                    .or_insert(0) += 1;
                Err(e)
            }
        }
    }

    /// Tears down a connection completely, removing **both** endpoints and
    /// releasing their RNIC state (the lazy-teardown path: an idle-aged
    /// connection stops costing memory, unlike an errored one which lingers
    /// in `Error` state). In-flight traffic is unaffected — teardown is
    /// only safe for drained QPs, which is what the pool's idle-age check
    /// guarantees.
    pub fn destroy_qp(&self, h: QpHandle) -> Result<(), RdmaError> {
        let mut inner = self.inner.borrow_mut();
        let (peer_node, peer_qp) = {
            let qp = inner.qp(h.node, h.qp)?;
            (qp.peer_node, qp.peer_qp)
        };
        for (node, qpid) in [(h.node, h.qp), (peer_node, peer_qp)] {
            if let Ok(state) = inner.node_mut(node) {
                if let Some(qp) = state.qps.remove(&qpid) {
                    if qp.active {
                        state.active_qps -= 1;
                    }
                }
            }
            inner.qp_rq.remove(&qpid);
        }
        Ok(())
    }

    /// Returns `true` once the QP finished connection setup (and has not
    /// failed).
    pub fn qp_ready(&self, h: QpHandle) -> bool {
        self.inner
            .borrow()
            .qp(h.node, h.qp)
            .map(|q| q.state == QpState::Ready)
            .unwrap_or(false)
    }

    /// Fault injection: breaks the RC connection at both endpoints.
    ///
    /// Subsequent posts on either endpoint fail with
    /// [`RdmaError::QpNotReady`]; active QPs leave the RNIC cache. Messages
    /// already in flight still deliver (the fault hits the connection
    /// state, not packets on the wire).
    pub fn inject_qp_error(&self, h: QpHandle) -> Result<(), RdmaError> {
        let mut inner = self.inner.borrow_mut();
        let (peer_node, peer_qp) = {
            let qp = inner.qp(h.node, h.qp)?;
            (qp.peer_node, qp.peer_qp)
        };
        for (node, qpid) in [(h.node, h.qp), (peer_node, peer_qp)] {
            let state = inner.node_mut(node)?;
            if let Some(qp) = state.qps.get_mut(&qpid) {
                if qp.active {
                    qp.active = false;
                    state.active_qps -= 1;
                }
                qp.state = QpState::Error;
            }
        }
        Ok(())
    }

    /// Installs a deterministic fault plane, replacing any existing one.
    ///
    /// A plane with all probabilities at zero and no scheduled events
    /// leaves delivery byte-identical to a fabric without one.
    pub fn install_fault_plane(&self, fp: FaultPlane) {
        self.inner.borrow_mut().faults = Some(fp);
    }

    /// Shares a tracer so fault-plane events (wire loss, corruption) are
    /// annotated into the affected request's trace as `FaultInject`
    /// markers. A disabled tracer (the default) records nothing.
    pub fn set_tracer(&self, tracer: obs::Tracer) {
        self.inner.borrow_mut().tracer = tracer;
    }

    /// Runs `f` against the fault plane, installing a zero-fault plane
    /// (seed 0) first if none is present.
    pub fn with_fault_plane<R>(&self, f: impl FnOnce(&mut FaultPlane) -> R) -> R {
        let mut inner = self.inner.borrow_mut();
        f(inner.faults.get_or_insert_with(|| FaultPlane::new(0)))
    }

    /// Returns the fault counters (all zero when no plane is installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.inner
            .borrow()
            .faults
            .as_ref()
            .map(|f| f.stats)
            .unwrap_or_default()
    }

    /// Schedules a QP kill at `at`: the connection breaks at both ends as
    /// with [`Fabric::inject_qp_error`], and the fault plane counts it.
    pub fn schedule_qp_kill(&self, sim: &mut Sim, at: SimTime, h: QpHandle) {
        let this = self.clone();
        sim.schedule_at(at, move |_| {
            if this.inject_qp_error(h).is_ok() {
                if let Some(fp) = this.inner.borrow_mut().faults.as_mut() {
                    fp.stats.qp_kills += 1;
                }
            }
        });
    }

    /// Registers a crash window `[from, until)` for `node`: every message
    /// to or from the node inside the window is dropped on the wire and the
    /// sender eventually sees [`CqeStatus::TransportRetryExceeded`].
    /// Installs a zero-fault plane if none is present.
    pub fn schedule_node_outage(&self, node: NodeId, from: SimTime, until: SimTime) {
        self.with_fault_plane(|fp| fp.add_outage(node, from, until));
    }

    /// Marks a QP active/inactive (shadow-QP mechanism, §3.3). Only active
    /// QPs count against the RNIC QP cache.
    pub fn set_qp_active(&self, h: QpHandle, active: bool) -> Result<(), RdmaError> {
        let mut inner = self.inner.borrow_mut();
        let node = inner.node_mut(h.node)?;
        let qp = node.qps.get_mut(&h.qp).ok_or(RdmaError::UnknownQp(h.qp))?;
        if qp.active != active {
            qp.active = active;
            if active {
                node.active_qps += 1;
                node.peak_active_qps = node.peak_active_qps.max(node.active_qps);
            } else {
                node.active_qps -= 1;
            }
        }
        Ok(())
    }

    /// Returns the number of active QPs on `node`.
    pub fn active_qp_count(&self, node: NodeId) -> usize {
        self.inner
            .borrow()
            .node(node)
            .map(|n| n.active_qps)
            .unwrap_or(0)
    }

    /// Returns the high-water mark of simultaneously active QPs on `node` —
    /// how deep into (or past) the RNIC QP cache the node has been.
    pub fn peak_active_qp_count(&self, node: NodeId) -> usize {
        self.inner
            .borrow()
            .node(node)
            .map(|n| n.peak_active_qps)
            .unwrap_or(0)
    }

    /// Returns the number of unfinished sends on a QP (congestion signal
    /// for the DNE's least-congested connection selection).
    pub fn sq_depth(&self, h: QpHandle) -> u32 {
        self.inner
            .borrow()
            .qp(h.node, h.qp)
            .map(|q| q.sq_outstanding)
            .unwrap_or(0)
    }

    /// Returns the number of sends ever posted on a QP.
    pub fn sends_posted(&self, h: QpHandle) -> u64 {
        self.inner
            .borrow()
            .qp(h.node, h.qp)
            .map(|q| q.sends_posted)
            .unwrap_or(0)
    }

    /// Returns the traffic counters for one QP: posted sends, generated
    /// send completions, and bytes posted.
    pub fn qp_counters(&self, h: QpHandle) -> QpCounters {
        self.inner
            .borrow()
            .qp(h.node, h.qp)
            .map(|q| QpCounters {
                posted: q.sends_posted,
                completed: q.sends_completed,
                bytes: q.bytes_posted,
            })
            .unwrap_or_default()
    }

    /// Returns whether the QP is currently marked active.
    pub fn qp_is_active(&self, h: QpHandle) -> bool {
        self.inner
            .borrow()
            .qp(h.node, h.qp)
            .map(|q| q.active)
            .unwrap_or(false)
    }

    /// Posts a receive buffer to a shared receive queue.
    ///
    /// The buffer's pool must be registered with the node's RNIC and belong
    /// to the RQ's tenant — the isolation property §3.3 relies on.
    pub fn post_recv(&self, rq: RqId, wr_id: WrId, buf: OwnedBuf) -> Result<(), RdmaError> {
        let mut inner = self.inner.borrow_mut();
        let (node, tenant) = {
            let state = inner.rqs.get(&rq).ok_or(RdmaError::UnknownRq)?;
            (state.node, state.tenant)
        };
        let pool = buf.pool();
        if pool.tenant() != tenant {
            return Err(RdmaError::UnregisteredMemory);
        }
        if !inner
            .node(node)?
            .mrs
            .is_registered(pool.tenant(), pool.pool_id())
        {
            return Err(RdmaError::UnregisteredMemory);
        }
        let state = inner.rqs.get_mut(&rq).expect("checked above");
        state.queue.push_back(RecvWr { wr_id, buf });
        state.posted += 1;
        Ok(())
    }

    /// Returns the number of receive buffers currently posted on `rq`.
    pub fn rq_depth(&self, rq: RqId) -> usize {
        self.inner
            .borrow()
            .rqs
            .get(&rq)
            .map(|r| r.queue.len())
            .unwrap_or(0)
    }

    /// Returns `(posted, consumed)` counters for `rq` — the DNE core thread
    /// monitors consumption to replenish buffers (§3.5.2).
    pub fn rq_counters(&self, rq: RqId) -> (u64, u64) {
        self.inner
            .borrow()
            .rqs
            .get(&rq)
            .map(|r| (r.posted, r.consumed))
            .unwrap_or((0, 0))
    }

    /// Schedules a CQE push (and its waker) at instant `at`.
    pub(crate) fn schedule_cqe(
        inner_rc: &Rc<RefCell<Inner>>,
        sim: &mut Sim,
        at: SimTime,
        cq: CqId,
        cqe: Cqe,
    ) {
        let rc = inner_rc.clone();
        sim.schedule_at(at, move |sim| {
            let waker = rc.borrow_mut().push_cqe(cq, cqe);
            if let Some(w) = waker {
                w(sim);
            }
        });
    }

    /// Posts a two-sided send of `buf` on `h`, with immediate data `imm`.
    ///
    /// On completion the sender receives a CQE carrying `buf` back for
    /// recycling; the receiver's CQE carries the filled buffer popped from
    /// its shared RQ.
    pub fn post_send(
        &self,
        sim: &mut Sim,
        h: QpHandle,
        wr_id: WrId,
        buf: OwnedBuf,
        imm: u64,
    ) -> Result<(), RdmaError> {
        let (depart, ser, prop) = {
            let mut inner = self.inner.borrow_mut();
            let pool = buf.pool();
            let (_, depart) = inner.admit_tx(sim.now(), h, buf.len(), Some((&pool,)))?;
            (
                depart,
                inner.costs.serialization(buf.len()),
                inner.costs.propagation,
            )
        };
        let arrival = depart + ser + prop;
        let inner = self.inner.clone();
        let retries = self.inner.borrow().costs.rnr_retries;
        let d = Delivery {
            sender: h,
            wr_id,
            imm,
            retries_left: retries,
        };
        sim.schedule_at(arrival, move |sim| {
            Self::deliver_send(inner, sim, d, buf);
        });
        Ok(())
    }

    fn deliver_send(inner_rc: Rc<RefCell<Inner>>, sim: &mut Sim, d: Delivery, buf: OwnedBuf) {
        let mut inner = inner_rc.borrow_mut();
        let (peer_node, peer_qp) = {
            let qp = inner
                .qp(d.sender.node, d.sender.qp)
                .expect("sender QP exists");
            (qp.peer_node, qp.peer_qp)
        };
        let penalty = inner.per_op_penalty(peer_node);
        let rx_fixed = inner.costs.rnic_rx_fixed + inner.costs.host_dma(buf.len());
        let ack = inner.costs.ack_delay;
        let rnr_timer = inner.costs.rnr_timer;

        // Wire faults first: a lost message (link loss or crashed endpoint)
        // never reaches the responder RNIC. The requester retransmits until
        // its transport retry timer expires, then completes in error with
        // the buffer handed back for recycling.
        let verdict = match inner.faults.as_mut() {
            Some(fp) => fp.roll_wire(d.sender.node, peer_node, sim.now()),
            None => FaultVerdict::Deliver,
        };
        if verdict != FaultVerdict::Deliver {
            let sender = inner.qp(d.sender.node, d.sender.qp).expect("sender QP");
            let sender_cq = sender.cq;
            if inner.tracer.is_enabled() && obs::ctx::sampled(buf.as_slice()) {
                // Annotate the loss into the request's trace: an instant
                // marker on the sender node, where the retransmit state
                // lives (the message never reached the responder).
                let req_id = u64::from_le_bytes(buf.as_slice()[..8].try_into().unwrap());
                let tenant = sender.tenant.0;
                inner.tracer.span(
                    req_id,
                    tenant,
                    d.sender.node.0 as u32,
                    obs::Stage::FaultInject,
                    sim.now(),
                    sim.now(),
                );
            }
            inner.retire_wr(d.sender);
            let len = buf.len() as u32;
            Self::schedule_cqe(
                &inner_rc,
                sim,
                sim.now() + rnr_timer,
                sender_cq,
                Cqe {
                    wr_id: d.wr_id,
                    qp: d.sender.qp,
                    opcode: CqeOpcode::Send,
                    status: CqeStatus::TransportRetryExceeded,
                    byte_len: len,
                    imm: d.imm,
                    buf: Some(buf),
                },
            );
            return;
        }

        let rq_id = *inner.qp_rq.get(&peer_qp).expect("peer QP has an RQ");
        let rx_done = {
            let node = &mut inner.nodes[peer_node.0 as usize];
            node.rx_messages += 1;
            node.rnic_rx.admit(sim.now(), rx_fixed + penalty)
        };
        let recv_cq = inner.qp(peer_node, peer_qp).expect("peer QP").cq;
        let sender_cq = inner.qp(d.sender.node, d.sender.qp).expect("sender QP").cq;

        let rq = inner.rqs.get_mut(&rq_id).expect("RQ exists");
        if rq.queue.is_empty() {
            // RNR NAK: retry after the timer, or fail the send.
            inner.nodes[peer_node.0 as usize].rnr_events += 1;
            if d.retries_left > 0 {
                let mut d = d;
                d.retries_left -= 1;
                let rc = inner_rc.clone();
                sim.schedule_at(rx_done + rnr_timer, move |sim| {
                    Self::deliver_send(rc, sim, d, buf);
                });
            } else {
                inner.retire_wr(d.sender);
                Self::schedule_cqe(
                    &inner_rc,
                    sim,
                    rx_done + ack,
                    sender_cq,
                    Cqe {
                        wr_id: d.wr_id,
                        qp: d.sender.qp,
                        opcode: CqeOpcode::Send,
                        status: CqeStatus::RnrRetryExceeded,
                        byte_len: buf.len() as u32,
                        imm: d.imm,
                        buf: Some(buf),
                    },
                );
            }
            return;
        }

        let RecvWr {
            wr_id: recv_wr,
            buf: mut recv_buf,
        } = rq.queue.pop_front().expect("non-empty");
        rq.consumed += 1;

        // Corruption is detected at the responder after a buffer was popped:
        // both ends complete in error, exactly like the length-error path.
        let corrupted = match inner.faults.as_mut() {
            Some(fp) => fp.roll_corruption(d.sender.node, peer_node),
            None => false,
        };
        if corrupted {
            if inner.tracer.is_enabled() && obs::ctx::sampled(buf.as_slice()) {
                // Corruption is detected at the responder: mark it there.
                let req_id = u64::from_le_bytes(buf.as_slice()[..8].try_into().unwrap());
                let tenant = inner.qp(peer_node, peer_qp).expect("peer QP").tenant.0;
                inner.tracer.span(
                    req_id,
                    tenant,
                    peer_node.0 as u32,
                    obs::Stage::FaultInject,
                    sim.now(),
                    sim.now(),
                );
            }
            inner.retire_wr(d.sender);
            let len = buf.len() as u32;
            Self::schedule_cqe(
                &inner_rc,
                sim,
                rx_done,
                recv_cq,
                Cqe {
                    wr_id: recv_wr,
                    qp: peer_qp,
                    opcode: CqeOpcode::Recv,
                    status: CqeStatus::DataCorrupted,
                    byte_len: len,
                    imm: d.imm,
                    buf: Some(recv_buf),
                },
            );
            Self::schedule_cqe(
                &inner_rc,
                sim,
                rx_done + ack,
                sender_cq,
                Cqe {
                    wr_id: d.wr_id,
                    qp: d.sender.qp,
                    opcode: CqeOpcode::Send,
                    status: CqeStatus::DataCorrupted,
                    byte_len: len,
                    imm: d.imm,
                    buf: Some(buf),
                },
            );
            return;
        }

        if recv_buf.buf_size() < buf.len() {
            // Posted buffer too small: error completions on both ends.
            inner.retire_wr(d.sender);
            let len = buf.len() as u32;
            Self::schedule_cqe(
                &inner_rc,
                sim,
                rx_done,
                recv_cq,
                Cqe {
                    wr_id: recv_wr,
                    qp: peer_qp,
                    opcode: CqeOpcode::Recv,
                    status: CqeStatus::LocalLengthError,
                    byte_len: len,
                    imm: d.imm,
                    buf: Some(recv_buf),
                },
            );
            Self::schedule_cqe(
                &inner_rc,
                sim,
                rx_done + ack,
                sender_cq,
                Cqe {
                    wr_id: d.wr_id,
                    qp: d.sender.qp,
                    opcode: CqeOpcode::Send,
                    status: CqeStatus::LocalLengthError,
                    byte_len: len,
                    imm: d.imm,
                    buf: Some(buf),
                },
            );
            return;
        }

        // The RNIC DMA lands the payload in the posted buffer.
        let len = buf.len();
        recv_buf.as_mut_slice()[..len].copy_from_slice(buf.as_slice());
        recv_buf.set_len(len).expect("checked capacity");
        inner.retire_wr(d.sender);
        Self::schedule_cqe(
            &inner_rc,
            sim,
            rx_done,
            recv_cq,
            Cqe {
                wr_id: recv_wr,
                qp: peer_qp,
                opcode: CqeOpcode::Recv,
                status: CqeStatus::Success,
                byte_len: len as u32,
                imm: d.imm,
                buf: Some(recv_buf),
            },
        );
        Self::schedule_cqe(
            &inner_rc,
            sim,
            rx_done + ack,
            sender_cq,
            Cqe {
                wr_id: d.wr_id,
                qp: d.sender.qp,
                opcode: CqeOpcode::Send,
                status: CqeStatus::Success,
                byte_len: len as u32,
                imm: d.imm,
                buf: Some(buf),
            },
        );
    }

    /// Polls up to `max` completions from `cq`.
    pub fn poll_cq(&self, cq: CqId, max: usize) -> Vec<Cqe> {
        let mut inner = self.inner.borrow_mut();
        match inner.cqs.get_mut(&cq) {
            Some(state) => {
                let n = state.entries.len().min(max);
                state.entries.drain(..n).collect()
            }
            None => Vec::new(),
        }
    }

    /// Returns the number of completions waiting on `cq`.
    pub fn cq_depth(&self, cq: CqId) -> usize {
        self.inner
            .borrow()
            .cqs
            .get(&cq)
            .map(|c| c.entries.len())
            .unwrap_or(0)
    }

    /// Returns `(tx_messages, rx_messages, rnr_events)` for a node.
    pub fn node_counters(&self, node: NodeId) -> (u64, u64, u64) {
        let inner = self.inner.borrow();
        inner
            .node(node)
            .map(|n| (n.tx_messages, n.rx_messages, n.rnr_events))
            .unwrap_or((0, 0, 0))
    }

    pub(crate) fn inner_rc(&self) -> Rc<RefCell<Inner>> {
        self.inner.clone()
    }
}

#[derive(Clone, Copy)]
struct Delivery {
    sender: QpHandle,
    wr_id: WrId,
    imm: u64,
    retries_left: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use membuf::pool::PoolConfig;

    fn mk_pool(tenant: u16, pool_id: u16) -> BufferPool {
        let mut cfg = PoolConfig::new(TenantId(tenant), pool_id, 8192, 64);
        cfg.segment_size = 64 * 1024;
        BufferPool::new(cfg).unwrap()
    }

    struct Pair {
        fabric: Fabric,
        sim: Sim,
        pool_a: BufferPool,
        pool_b: BufferPool,
        cq_a: CqId,
        cq_b: CqId,
        rq_b: RqId,
        h_ab: QpHandle,
    }

    fn setup() -> Pair {
        let fabric = Fabric::new(RdmaCosts::default());
        let mut sim = Sim::new();
        let a = fabric.add_node();
        let b = fabric.add_node();
        let tenant = TenantId(1);
        let pool_a = mk_pool(1, 0);
        let pool_b = mk_pool(1, 0);
        fabric.register_pool(a, pool_a.clone()).unwrap();
        fabric.register_pool(b, pool_b.clone()).unwrap();
        let cq_a = fabric.create_cq(a).unwrap();
        let cq_b = fabric.create_cq(b).unwrap();
        let rq_a = fabric.create_rq(a, tenant).unwrap();
        let rq_b = fabric.create_rq(b, tenant).unwrap();
        let (h_ab, _h_ba) = fabric
            .connect(&mut sim, tenant, a, cq_a, rq_a, b, cq_b, rq_b)
            .unwrap();
        sim.run(); // let the connection come up
        Pair {
            fabric,
            sim,
            pool_a,
            pool_b,
            cq_a,
            cq_b,
            rq_b,
            h_ab,
        }
    }

    #[test]
    fn prewarm_claim_is_microseconds_cold_connect_is_not() {
        let fabric = Fabric::new(RdmaCosts::default());
        let mut sim = Sim::new();
        let a = fabric.add_node();
        let b = fabric.add_node();
        let t = TenantId(3);
        let cq_a = fabric.create_cq(a).unwrap();
        let cq_b = fabric.create_cq(b).unwrap();
        let rq_a = fabric.create_rq(a, t).unwrap();
        let rq_b = fabric.create_rq(b, t).unwrap();
        // Nothing prewarmed yet: a claim misses.
        assert_eq!(fabric.prewarmed_available(a, b), 0);
        assert!(fabric
            .claim_prewarmed(&mut sim, t, a, cq_a, rq_a, b, cq_b, rq_b)
            .unwrap()
            .is_none());
        // Stock two skeletons in the background; they cost the full
        // connect delay but off the request path.
        fabric.prewarm_link(&mut sim, a, b, 2).unwrap();
        sim.run();
        assert_eq!(fabric.prewarmed_available(a, b), 2);
        // The stock is unordered: visible from either direction.
        assert_eq!(fabric.prewarmed_available(b, a), 2);
        let start = sim.now();
        let (ha, _hb) = fabric
            .claim_prewarmed(&mut sim, t, a, cq_a, rq_a, b, cq_b, rq_b)
            .unwrap()
            .expect("stock available");
        assert_eq!(fabric.prewarmed_available(a, b), 1);
        assert!(!fabric.qp_ready(ha));
        sim.run();
        let ready_in = sim.now().saturating_since(start);
        assert!(fabric.qp_ready(ha));
        assert_eq!(ready_in, fabric.costs().prewarm_claim_delay);
        assert!(ready_in < fabric.costs().connect_delay / 10);
    }

    #[test]
    fn destroy_qp_removes_both_endpoints_and_releases_cache() {
        let p = setup();
        let fabric = p.fabric;
        let h = p.h_ab;
        fabric.set_qp_active(h, true).unwrap();
        assert_eq!(fabric.active_qp_count(h.node), 1);
        assert_eq!(fabric.peak_active_qp_count(h.node), 1);
        let peer = {
            let inner = fabric.inner.borrow();
            let qp = inner.qp(h.node, h.qp).unwrap();
            QpHandle {
                node: qp.peer_node,
                qp: qp.peer_qp,
            }
        };
        fabric.destroy_qp(h).unwrap();
        assert_eq!(fabric.active_qp_count(h.node), 0);
        // Peak is a high-water mark: it survives the teardown.
        assert_eq!(fabric.peak_active_qp_count(h.node), 1);
        assert!(!fabric.qp_ready(h));
        assert!(!fabric.qp_ready(peer));
        assert!(fabric.destroy_qp(h).is_err(), "already gone");
    }

    #[test]
    fn connection_takes_tens_of_milliseconds() {
        let fabric = Fabric::new(RdmaCosts::default());
        let mut sim = Sim::new();
        let a = fabric.add_node();
        let b = fabric.add_node();
        let t = TenantId(0);
        let cq_a = fabric.create_cq(a).unwrap();
        let cq_b = fabric.create_cq(b).unwrap();
        let rq_a = fabric.create_rq(a, t).unwrap();
        let rq_b = fabric.create_rq(b, t).unwrap();
        let (h, _) = fabric
            .connect(&mut sim, t, a, cq_a, rq_a, b, cq_b, rq_b)
            .unwrap();
        assert!(!fabric.qp_ready(h));
        sim.run();
        assert!(fabric.qp_ready(h));
        assert_eq!(sim.now().as_nanos(), 20_000_000);
    }

    #[test]
    fn two_sided_send_moves_payload_and_completes_both_sides() {
        let mut p = setup();
        // Receiver posts a buffer.
        let recv_buf = p.pool_b.get().unwrap();
        p.fabric.post_recv(p.rq_b, WrId(100), recv_buf).unwrap();
        // Sender sends.
        let mut send_buf = p.pool_a.get().unwrap();
        send_buf.write_payload(b"two-sided rdma").unwrap();
        let t_post = p.sim.now();
        p.fabric
            .post_send(&mut p.sim, p.h_ab, WrId(1), send_buf, 0xfeed)
            .unwrap();
        p.sim.run();

        let rx = p.fabric.poll_cq(p.cq_b, 16);
        assert_eq!(rx.len(), 1);
        let cqe = &rx[0];
        assert_eq!(cqe.status, CqeStatus::Success);
        assert_eq!(cqe.opcode, CqeOpcode::Recv);
        assert_eq!(cqe.wr_id, WrId(100));
        assert_eq!(cqe.imm, 0xfeed);
        assert_eq!(cqe.buf.as_ref().unwrap().as_slice(), b"two-sided rdma");

        let tx = p.fabric.poll_cq(p.cq_a, 16);
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].status, CqeStatus::Success);
        assert_eq!(tx[0].opcode, CqeOpcode::Send);
        assert!(tx[0].buf.is_some(), "sender gets its buffer back");

        // One-way delivery for a small message is a few microseconds.
        let elapsed = (p.sim.now() - t_post).as_micros_f64();
        assert!(elapsed > 2.0 && elapsed < 10.0, "elapsed = {elapsed}us");
    }

    #[test]
    fn send_without_posted_recv_rnr_retries_then_succeeds() {
        let mut p = setup();
        let mut send_buf = p.pool_a.get().unwrap();
        send_buf.write_payload(b"late receiver").unwrap();
        p.fabric
            .post_send(&mut p.sim, p.h_ab, WrId(1), send_buf, 0)
            .unwrap();
        // Post the receive only after one RNR timer has elapsed.
        let costs = p.fabric.costs();
        p.sim.run_for(costs.rnr_timer);
        let recv_buf = p.pool_b.get().unwrap();
        p.fabric.post_recv(p.rq_b, WrId(2), recv_buf).unwrap();
        p.sim.run();
        let rx = p.fabric.poll_cq(p.cq_b, 16);
        assert_eq!(rx.len(), 1);
        assert_eq!(rx[0].status, CqeStatus::Success);
        let (_, _, rnr) = p.fabric.node_counters(NodeId(1));
        assert!(rnr >= 1, "an RNR NAK must have fired");
    }

    #[test]
    fn rnr_retries_exhaust_into_error_completion() {
        let mut p = setup();
        let send_buf = p.pool_a.get().unwrap();
        p.fabric
            .post_send(&mut p.sim, p.h_ab, WrId(9), send_buf, 0)
            .unwrap();
        p.sim.run(); // no receive is ever posted
        let tx = p.fabric.poll_cq(p.cq_a, 16);
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].status, CqeStatus::RnrRetryExceeded);
        assert!(tx[0].buf.is_some(), "buffer is returned even on error");
        assert_eq!(p.fabric.poll_cq(p.cq_b, 16).len(), 0);
    }

    #[test]
    fn unregistered_pool_is_rejected() {
        let mut p = setup();
        let rogue = mk_pool(2, 7);
        let buf = rogue.get().unwrap();
        assert_eq!(
            p.fabric
                .post_send(&mut p.sim, p.h_ab, WrId(1), buf, 0)
                .unwrap_err(),
            RdmaError::UnregisteredMemory
        );
        // post_recv enforces tenant match against the RQ.
        let buf2 = rogue.get().unwrap();
        assert_eq!(
            p.fabric.post_recv(p.rq_b, WrId(2), buf2).unwrap_err(),
            RdmaError::UnregisteredMemory
        );
    }

    #[test]
    fn send_before_ready_is_rejected() {
        let fabric = Fabric::new(RdmaCosts::default());
        let mut sim = Sim::new();
        let a = fabric.add_node();
        let b = fabric.add_node();
        let t = TenantId(1);
        let pool = mk_pool(1, 0);
        fabric.register_pool(a, pool.clone()).unwrap();
        let cq_a = fabric.create_cq(a).unwrap();
        let cq_b = fabric.create_cq(b).unwrap();
        let rq_a = fabric.create_rq(a, t).unwrap();
        let rq_b = fabric.create_rq(b, t).unwrap();
        let (h, _) = fabric
            .connect(&mut sim, t, a, cq_a, rq_a, b, cq_b, rq_b)
            .unwrap();
        let buf = pool.get().unwrap();
        assert_eq!(
            fabric.post_send(&mut sim, h, WrId(0), buf, 0).unwrap_err(),
            RdmaError::QpNotReady(h.qp)
        );
    }

    #[test]
    fn qp_counters_track_posted_completed_bytes() {
        let mut p = setup();
        assert_eq!(p.fabric.qp_counters(p.h_ab), QpCounters::default());
        let recv_buf = p.pool_b.get().unwrap();
        p.fabric.post_recv(p.rq_b, WrId(100), recv_buf).unwrap();
        let mut send_buf = p.pool_a.get().unwrap();
        send_buf.write_payload(&[9u8; 48]).unwrap();
        p.fabric
            .post_send(&mut p.sim, p.h_ab, WrId(1), send_buf, 0)
            .unwrap();
        let mid = p.fabric.qp_counters(p.h_ab);
        assert_eq!((mid.posted, mid.completed, mid.bytes), (1, 0, 48));
        p.sim.run();
        let done = p.fabric.qp_counters(p.h_ab);
        assert_eq!((done.posted, done.completed, done.bytes), (1, 1, 48));
    }

    #[test]
    fn shadow_qp_accounting() {
        let p = setup();
        assert_eq!(p.fabric.active_qp_count(NodeId(0)), 0);
        p.fabric.set_qp_active(p.h_ab, true).unwrap();
        assert_eq!(p.fabric.active_qp_count(NodeId(0)), 1);
        // Idempotent.
        p.fabric.set_qp_active(p.h_ab, true).unwrap();
        assert_eq!(p.fabric.active_qp_count(NodeId(0)), 1);
        p.fabric.set_qp_active(p.h_ab, false).unwrap();
        assert_eq!(p.fabric.active_qp_count(NodeId(0)), 0);
    }

    #[test]
    fn cq_waker_fires_on_completion() {
        use std::cell::Cell;
        let mut p = setup();
        let woke = Rc::new(Cell::new(0u32));
        let w = woke.clone();
        p.fabric
            .set_cq_waker(p.cq_b, Rc::new(move |_| w.set(w.get() + 1)))
            .unwrap();
        let recv_buf = p.pool_b.get().unwrap();
        p.fabric.post_recv(p.rq_b, WrId(0), recv_buf).unwrap();
        let buf = p.pool_a.get().unwrap();
        p.fabric
            .post_send(&mut p.sim, p.h_ab, WrId(1), buf, 0)
            .unwrap();
        p.sim.run();
        assert_eq!(woke.get(), 1);
    }

    #[test]
    fn oversize_message_rejected() {
        let costs = RdmaCosts {
            max_msg_size: 16,
            ..RdmaCosts::default()
        };
        let fabric = Fabric::new(costs);
        let a = fabric.add_node();
        let b = fabric.add_node();
        let t = TenantId(1);
        let pool = mk_pool(1, 0);
        fabric.register_pool(a, pool.clone()).unwrap();
        let cqa = fabric.create_cq(a).unwrap();
        let cqb = fabric.create_cq(b).unwrap();
        let rqa = fabric.create_rq(a, t).unwrap();
        let rqb = fabric.create_rq(b, t).unwrap();
        let mut sim = Sim::new();
        let (h, _) = fabric
            .connect(&mut sim, t, a, cqa, rqa, b, cqb, rqb)
            .unwrap();
        sim.run();
        let mut big = pool.get().unwrap();
        big.write_payload(&[1u8; 64]).unwrap();
        let err = fabric.post_send(&mut sim, h, WrId(0), big, 0).unwrap_err();
        assert_eq!(err, RdmaError::MessageTooLarge { len: 64, max: 16 });
    }

    #[test]
    fn larger_payloads_take_longer() {
        let mut p = setup();
        let mut rtts = Vec::new();
        for &size in &[64usize, 65536] {
            let recv = p.pool_b.get().unwrap();
            p.fabric.post_recv(p.rq_b, WrId(0), recv).unwrap();
            let mut buf = p.pool_a.get().unwrap();
            buf.set_len(size.min(buf.buf_size())).unwrap();
            // 64 KiB does not fit an 8 KiB buffer; use full buffer for "large".
            let t0 = p.sim.now();
            p.fabric
                .post_send(&mut p.sim, p.h_ab, WrId(1), buf, 0)
                .unwrap();
            p.sim.run();
            let _ = p.fabric.poll_cq(p.cq_b, 16);
            let _ = p.fabric.poll_cq(p.cq_a, 16);
            rtts.push((p.sim.now() - t0).as_nanos());
        }
        assert!(rtts[1] > rtts[0], "8KiB slower than 64B: {rtts:?}");
    }
}
// (fault-injection tests live below to keep the main test module focused)
#[cfg(test)]
mod fault_tests {
    use super::*;
    use membuf::pool::PoolConfig;

    fn mk_pool(tenant: u16) -> BufferPool {
        let mut cfg = PoolConfig::new(TenantId(tenant), 0, 1024, 16);
        cfg.segment_size = 16 * 1024;
        BufferPool::new(cfg).unwrap()
    }

    #[test]
    fn injected_error_fails_posts_and_clears_cache_charge() {
        let fabric = Fabric::new(RdmaCosts::default());
        let mut sim = Sim::new();
        let a = fabric.add_node();
        let b = fabric.add_node();
        let t = TenantId(1);
        let pool = mk_pool(1);
        fabric.register_pool(a, pool.clone()).unwrap();
        let cq_a = fabric.create_cq(a).unwrap();
        let cq_b = fabric.create_cq(b).unwrap();
        let rq_a = fabric.create_rq(a, t).unwrap();
        let rq_b = fabric.create_rq(b, t).unwrap();
        let (h, peer) = fabric
            .connect(&mut sim, t, a, cq_a, rq_a, b, cq_b, rq_b)
            .unwrap();
        sim.run();
        fabric.set_qp_active(h, true).unwrap();
        assert_eq!(fabric.active_qp_count(a), 1);

        fabric.inject_qp_error(h).unwrap();
        assert!(!fabric.qp_ready(h));
        assert!(!fabric.qp_ready(peer), "both endpoints break");
        assert_eq!(fabric.active_qp_count(a), 0, "cache charge released");
        let buf = pool.get().unwrap();
        assert_eq!(
            fabric.post_send(&mut sim, h, WrId(0), buf, 0).unwrap_err(),
            RdmaError::QpNotReady(h.qp)
        );
    }

    #[test]
    fn error_on_one_connection_leaves_others_usable() {
        let fabric = Fabric::new(RdmaCosts::default());
        let mut sim = Sim::new();
        let a = fabric.add_node();
        let b = fabric.add_node();
        let t = TenantId(1);
        let pool_a = mk_pool(1);
        let pool_b = mk_pool(1);
        fabric.register_pool(a, pool_a.clone()).unwrap();
        fabric.register_pool(b, pool_b.clone()).unwrap();
        let cq_a = fabric.create_cq(a).unwrap();
        let cq_b = fabric.create_cq(b).unwrap();
        let rq_a = fabric.create_rq(a, t).unwrap();
        let rq_b = fabric.create_rq(b, t).unwrap();
        let (h1, _) = fabric
            .connect(&mut sim, t, a, cq_a, rq_a, b, cq_b, rq_b)
            .unwrap();
        let (h2, _) = fabric
            .connect(&mut sim, t, a, cq_a, rq_a, b, cq_b, rq_b)
            .unwrap();
        sim.run();
        fabric.inject_qp_error(h1).unwrap();
        fabric
            .post_recv(rq_b, WrId(0), pool_b.get().unwrap())
            .unwrap();
        fabric
            .post_send(&mut sim, h2, WrId(1), pool_a.get().unwrap(), 0)
            .unwrap();
        sim.run();
        assert_eq!(fabric.poll_cq(cq_b, 4).len(), 1, "healthy QP still works");
    }

    struct FaultPair {
        fabric: Fabric,
        sim: Sim,
        pool_a: BufferPool,
        pool_b: BufferPool,
        cq_a: CqId,
        cq_b: CqId,
        rq_b: RqId,
        h: QpHandle,
        peer: QpHandle,
    }

    fn fault_setup() -> FaultPair {
        let fabric = Fabric::new(RdmaCosts::default());
        let mut sim = Sim::new();
        let a = fabric.add_node();
        let b = fabric.add_node();
        let t = TenantId(1);
        let pool_a = mk_pool(1);
        let pool_b = mk_pool(1);
        fabric.register_pool(a, pool_a.clone()).unwrap();
        fabric.register_pool(b, pool_b.clone()).unwrap();
        let cq_a = fabric.create_cq(a).unwrap();
        let cq_b = fabric.create_cq(b).unwrap();
        let rq_a = fabric.create_rq(a, t).unwrap();
        let rq_b = fabric.create_rq(b, t).unwrap();
        let (h, peer) = fabric
            .connect(&mut sim, t, a, cq_a, rq_a, b, cq_b, rq_b)
            .unwrap();
        sim.run();
        FaultPair {
            fabric,
            sim,
            pool_a,
            pool_b,
            cq_a,
            cq_b,
            rq_b,
            h,
            peer,
        }
    }

    #[test]
    fn lost_message_times_out_with_error_cqe() {
        let mut p = fault_setup();
        let mut fp = crate::fault::FaultPlane::new(1);
        fp.set_link_loss(NodeId(0), NodeId(1), 1.0);
        p.fabric.install_fault_plane(fp);
        p.fabric
            .post_recv(p.rq_b, WrId(5), p.pool_b.get().unwrap())
            .unwrap();
        p.fabric
            .post_send(&mut p.sim, p.h, WrId(1), p.pool_a.get().unwrap(), 0)
            .unwrap();
        p.sim.run();
        let tx = p.fabric.poll_cq(p.cq_a, 4);
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].status, CqeStatus::TransportRetryExceeded);
        assert!(tx[0].buf.is_some(), "send buffer comes back on loss");
        assert_eq!(p.fabric.poll_cq(p.cq_b, 4).len(), 0, "receiver saw nothing");
        assert_eq!(p.fabric.rq_depth(p.rq_b), 1, "recv buffer stays posted");
        assert_eq!(p.fabric.fault_stats().lost, 1);
    }

    #[test]
    fn corrupted_message_errors_both_ends() {
        let mut p = fault_setup();
        let mut fp = crate::fault::FaultPlane::new(1);
        fp.set_link_corruption(NodeId(0), NodeId(1), 1.0);
        p.fabric.install_fault_plane(fp);
        p.fabric
            .post_recv(p.rq_b, WrId(5), p.pool_b.get().unwrap())
            .unwrap();
        p.fabric
            .post_send(&mut p.sim, p.h, WrId(1), p.pool_a.get().unwrap(), 0)
            .unwrap();
        p.sim.run();
        let rx = p.fabric.poll_cq(p.cq_b, 4);
        assert_eq!(rx.len(), 1);
        assert_eq!(rx[0].status, CqeStatus::DataCorrupted);
        assert!(rx[0].buf.is_some(), "recv buffer recycled via the CQE");
        let tx = p.fabric.poll_cq(p.cq_a, 4);
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].status, CqeStatus::DataCorrupted);
        assert!(tx[0].buf.is_some());
        assert_eq!(p.fabric.fault_stats().corrupted, 1);
    }

    #[test]
    fn node_outage_window_drops_then_recovers() {
        let mut p = fault_setup();
        let now = p.sim.now();
        p.fabric
            .schedule_node_outage(NodeId(1), now, now + SimDuration::from_millis(5));
        p.fabric
            .post_recv(p.rq_b, WrId(5), p.pool_b.get().unwrap())
            .unwrap();
        p.fabric
            .post_send(&mut p.sim, p.h, WrId(1), p.pool_a.get().unwrap(), 0)
            .unwrap();
        p.sim.run();
        let tx = p.fabric.poll_cq(p.cq_a, 4);
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].status, CqeStatus::TransportRetryExceeded);
        assert_eq!(p.fabric.fault_stats().outage_drops, 1);
        // After the window closes the same link delivers again.
        p.sim.run_for(SimDuration::from_millis(6));
        p.fabric
            .post_send(&mut p.sim, p.h, WrId(2), p.pool_a.get().unwrap(), 0)
            .unwrap();
        p.sim.run();
        let rx = p.fabric.poll_cq(p.cq_b, 4);
        assert_eq!(rx.len(), 1);
        assert_eq!(rx[0].status, CqeStatus::Success);
    }

    #[test]
    fn scheduled_qp_kill_breaks_connection_and_counts() {
        let mut p = fault_setup();
        p.fabric
            .install_fault_plane(crate::fault::FaultPlane::new(0));
        let at = p.sim.now() + SimDuration::from_millis(1);
        p.fabric.schedule_qp_kill(&mut p.sim, at, p.h);
        p.sim.run();
        assert!(!p.fabric.qp_ready(p.h));
        assert!(!p.fabric.qp_ready(p.peer));
        assert_eq!(p.fabric.fault_stats().qp_kills, 1);
    }
}
#[cfg(test)]
mod cq_overflow_tests {
    use super::*;
    use membuf::pool::PoolConfig;

    #[test]
    fn overflowing_cq_drops_and_counts() {
        let fabric = Fabric::new(RdmaCosts::default());
        let mut sim = Sim::new();
        let a = fabric.add_node();
        let b = fabric.add_node();
        let t = TenantId(1);
        let mut cfg = PoolConfig::new(t, 0, 512, 64);
        cfg.segment_size = 32 * 1024;
        let pool_a = BufferPool::new(cfg.clone()).unwrap();
        let pool_b = BufferPool::new(cfg).unwrap();
        fabric.register_pool(a, pool_a.clone()).unwrap();
        fabric.register_pool(b, pool_b.clone()).unwrap();
        // Sender CQ can hold only 2 completions.
        let cq_a = fabric.create_cq_with_capacity(a, 2).unwrap();
        let cq_b = fabric.create_cq(b).unwrap();
        let rq_a = fabric.create_rq(a, t).unwrap();
        let rq_b = fabric.create_rq(b, t).unwrap();
        let (h, _) = fabric
            .connect(&mut sim, t, a, cq_a, rq_a, b, cq_b, rq_b)
            .unwrap();
        sim.run();
        for i in 0..6u64 {
            fabric
                .post_recv(rq_b, WrId(100 + i), pool_b.get().unwrap())
                .unwrap();
            fabric
                .post_send(&mut sim, h, WrId(i), pool_a.get().unwrap(), 0)
                .unwrap();
        }
        sim.run(); // no polling: the sender CQ fills and overflows
        assert_eq!(fabric.cq_depth(cq_a), 2);
        assert_eq!(fabric.cq_overflows(cq_a), 4);
        // Overflowed completions still recycled their buffers.
        let _ = fabric.poll_cq(cq_a, 16);
        assert_eq!(pool_a.stats().free, pool_a.capacity());
        // The receiver CQ (default depth) saw everything.
        assert_eq!(fabric.poll_cq(cq_b, 16).len(), 6);
        assert_eq!(fabric.cq_overflows(cq_b), 0);
    }
}
