//! Randomized tests on the fabric: completion accounting and buffer
//! conservation under seeded-random interleavings of sends and receive
//! posts.
//!
//! The default-off `heavy-tests` feature scales case counts up for
//! exhaustive runs.

use membuf::pool::{BufferPool, PoolConfig};
use membuf::tenant::TenantId;
use rdma_sim::types::{CqeOpcode, CqeStatus};
use rdma_sim::{Fabric, RdmaCosts, WrId};
use simcore::{Sim, SimRng};

#[derive(Debug, Clone)]
enum Op {
    /// Post `n` receive buffers on the responder.
    PostRecv(u8),
    /// Post a send of `len` bytes.
    Send(u16),
}

fn random_op(rng: &mut SimRng) -> Op {
    if rng.chance(0.5) {
        Op::PostRecv(1 + rng.gen_range(3) as u8)
    } else {
        Op::Send(8 + rng.gen_range(1016) as u16)
    }
}

#[test]
fn every_send_completes_exactly_once() {
    let cases = if cfg!(feature = "heavy-tests") {
        512
    } else {
        64
    };
    let mut rng = SimRng::new(0xfab);
    for _ in 0..cases {
        let n = 1 + rng.gen_range(39) as usize;
        let ops: Vec<Op> = (0..n).map(|_| random_op(&mut rng)).collect();
        run_case(ops);
    }
}

fn run_case(ops: Vec<Op>) {
    let fabric = Fabric::new(RdmaCosts::default());
    let mut sim = Sim::new();
    let a = fabric.add_node();
    let b = fabric.add_node();
    let tenant = TenantId(1);
    let capacity = 128u32;
    let mk_pool = || {
        let mut cfg = PoolConfig::new(tenant, 0, 2048, capacity);
        cfg.segment_size = 128 * 1024;
        BufferPool::new(cfg).unwrap()
    };
    let pool_a = mk_pool();
    let pool_b = mk_pool();
    fabric.register_pool(a, pool_a.clone()).unwrap();
    fabric.register_pool(b, pool_b.clone()).unwrap();
    let cq_a = fabric.create_cq(a).unwrap();
    let cq_b = fabric.create_cq(b).unwrap();
    let rq_a = fabric.create_rq(a, tenant).unwrap();
    let rq_b = fabric.create_rq(b, tenant).unwrap();
    let (h, _) = fabric
        .connect(&mut sim, tenant, a, cq_a, rq_a, b, cq_b, rq_b)
        .unwrap();
    sim.run();

    let mut sends = 0u64;
    let mut recv_posts = 0u64;
    let mut wr = 0u64;
    for op in &ops {
        match op {
            Op::PostRecv(n) => {
                for _ in 0..*n {
                    if let Ok(buf) = pool_b.get() {
                        wr += 1;
                        fabric.post_recv(rq_b, WrId(wr), buf).unwrap();
                        recv_posts += 1;
                    }
                }
            }
            Op::Send(len) => {
                if let Ok(mut buf) = pool_a.get() {
                    buf.set_len(*len as usize).unwrap();
                    wr += 1;
                    fabric.post_send(&mut sim, h, WrId(wr), buf, 0).unwrap();
                    sends += 1;
                }
            }
        }
    }
    sim.run();

    // Exactly one sender-side CQE per posted send, success or RNR error.
    let tx: Vec<_> = fabric.poll_cq(cq_a, 4096);
    assert_eq!(tx.len() as u64, sends);
    let mut successes = 0u64;
    for cqe in &tx {
        assert_eq!(cqe.opcode, CqeOpcode::Send);
        assert!(cqe.buf.is_some(), "sender buffer always returns");
        match cqe.status {
            CqeStatus::Success => successes += 1,
            CqeStatus::RnrRetryExceeded => {}
            other => panic!("unexpected status {other:?}"),
        }
    }
    // Receiver completions match sender successes, and each carries data.
    let rx: Vec<_> = fabric.poll_cq(cq_b, 4096);
    assert_eq!(rx.len() as u64, successes);
    assert!(successes <= recv_posts);
    // Buffer conservation on both pools once completions are dropped.
    drop(tx);
    drop(rx);
    let sa = pool_a.stats();
    assert_eq!(sa.free, capacity, "sender pool fully recycled");
    let sb = pool_b.stats();
    // Receiver: unconsumed posted buffers still sit in the RQ (owned).
    assert_eq!(sb.free as u64, capacity as u64 - (recv_posts - successes));
    assert_eq!(sb.in_flight, 0);
}
