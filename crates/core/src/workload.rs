//! Load generation and request tracking.
//!
//! [`ClosedLoop`] reproduces wrk's closed-loop behaviour: `clients`
//! outstanding requests, each reissued on completion until a deadline —
//! plus per-request latency and windowed-throughput recording. The same
//! tracker also powers the baseline and multi-tenant experiments.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use membuf::tenant::TenantId;
use runtime::function::CompletionFn;
use runtime::ChainSpec;
use simcore::{Histogram, Sim, SimDuration, SimTime, TimeSeries};

use crate::cluster::Cluster;

/// The issue hook installed by `start` (or a custom driver).
type IssueFn = Rc<dyn Fn(&mut Sim, u64)>;

struct Inner {
    next_req: u64,
    pending: HashMap<u64, SimTime>,
    hist: Histogram,
    completed: u64,
    shed: u64,
    stop_at: SimTime,
    began: SimTime,
    last_done: SimTime,
    series: Option<TimeSeries>,
    /// Re-issue hook set by `start` (or a custom driver).
    issue: Option<IssueFn>,
}

/// A closed-loop load driver with latency and throughput accounting.
#[derive(Clone)]
pub struct ClosedLoop {
    inner: Rc<RefCell<Inner>>,
}

impl ClosedLoop {
    /// Creates a driver that stops issuing at `stop_at`.
    pub fn new(stop_at: SimTime) -> ClosedLoop {
        ClosedLoop {
            inner: Rc::new(RefCell::new(Inner {
                next_req: 0,
                pending: HashMap::new(),
                hist: Histogram::new(),
                completed: 0,
                shed: 0,
                stop_at,
                began: SimTime::ZERO,
                last_done: SimTime::ZERO,
                series: None,
                issue: None,
            })),
        }
    }

    /// Enables windowed-throughput recording with the given window.
    pub fn with_series(self, window: SimDuration) -> ClosedLoop {
        self.inner.borrow_mut().series = Some(TimeSeries::new(window));
        self
    }

    /// Returns the completion callback to hand to chain registration.
    pub fn completion(&self) -> CompletionFn {
        let rc = self.inner.clone();
        let outer = self.clone();
        Rc::new(move |sim: &mut Sim, req_id: u64| {
            let reissue = {
                let mut inner = rc.borrow_mut();
                let Some(t0) = inner.pending.remove(&req_id) else {
                    return; // duplicate or foreign completion
                };
                inner.hist.record(sim.now().saturating_since(t0));
                inner.completed += 1;
                inner.last_done = sim.now();
                if let Some(series) = inner.series.as_mut() {
                    series.record_at(sim.now(), 1.0);
                }
                sim.now() < inner.stop_at
            };
            if reissue {
                outer.issue_one(sim);
            }
        })
    }

    /// Installs a custom issue hook (`start` installs the standard one).
    pub fn set_issuer(&self, f: IssueFn) {
        self.inner.borrow_mut().issue = Some(f);
    }

    /// Issues one request through the installed hook.
    pub fn issue_one(&self, sim: &mut Sim) {
        let (req, issue) = {
            let mut inner = self.inner.borrow_mut();
            let Some(issue) = inner.issue.clone() else {
                return;
            };
            let req = inner.next_req;
            inner.next_req += 1;
            inner.pending.insert(req, sim.now());
            (req, issue)
        };
        issue(sim, req);
    }

    /// Marks a request as shed (admission failure) without latency record.
    pub fn shed(&self, req_id: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.pending.remove(&req_id);
        inner.shed += 1;
    }

    /// Starts `clients` closed-loop clients against `chain` on `cluster`,
    /// with `payload` bytes per request.
    pub fn start(
        &self,
        sim: &mut Sim,
        cluster: &Cluster,
        chain: &ChainSpec,
        clients: usize,
        payload: usize,
    ) {
        {
            let mut inner = self.inner.borrow_mut();
            inner.began = sim.now();
        }
        let chain = chain.clone();
        let injector = ClusterInjector {
            cluster: ClusterRef::new(cluster),
            chain,
            payload,
            driver: self.clone(),
        };
        let injector = Rc::new(injector);
        let this = self.clone();
        this.set_issuer(Rc::new(move |sim, req| injector.inject(sim, req)));
        for _ in 0..clients {
            self.issue_one(sim);
        }
    }

    /// Returns completed request count.
    pub fn completed(&self) -> u64 {
        self.inner.borrow().completed
    }

    /// Returns shed (admission-failed) request count.
    pub fn shed_count(&self) -> u64 {
        self.inner.borrow().shed
    }

    /// Returns the latency histogram (cloned snapshot).
    pub fn latency(&self) -> Histogram {
        self.inner.borrow().hist.clone()
    }

    /// Sustained throughput: completions divided by active time.
    pub fn rps(&self) -> f64 {
        let inner = self.inner.borrow();
        let span = inner.last_done.saturating_since(inner.began).as_secs_f64();
        if span > 0.0 {
            inner.completed as f64 / span
        } else {
            0.0
        }
    }

    /// Finalizes and returns the windowed throughput series.
    pub fn series(&self, end: SimTime) -> Vec<(f64, f64)> {
        let mut inner = self.inner.borrow_mut();
        match inner.series.take() {
            Some(s) => s.finish(end),
            None => Vec::new(),
        }
    }
}

/// An open-loop Poisson load generator.
///
/// Unlike the closed loop, arrivals are time-driven at a configured rate
/// with exponential inter-arrival gaps (seeded, deterministic), so the
/// system can genuinely overload: requests keep arriving whether or not
/// earlier ones completed.
#[derive(Clone)]
pub struct OpenLoop {
    driver: ClosedLoop,
}

impl OpenLoop {
    /// Creates a generator that stops issuing at `stop_at`.
    pub fn new(stop_at: SimTime) -> OpenLoop {
        OpenLoop {
            driver: ClosedLoop::new(stop_at),
        }
    }

    /// Enables windowed-throughput recording.
    pub fn with_series(self, window: SimDuration) -> OpenLoop {
        OpenLoop {
            driver: self.driver.with_series(window),
        }
    }

    /// Returns the completion callback for chain registration.
    ///
    /// Open-loop completions record latency but never re-issue.
    pub fn completion(&self) -> CompletionFn {
        let inner = self.driver.inner.clone();
        Rc::new(move |sim: &mut Sim, req_id: u64| {
            let mut st = inner.borrow_mut();
            let Some(t0) = st.pending.remove(&req_id) else {
                return;
            };
            st.hist.record(sim.now().saturating_since(t0));
            st.completed += 1;
            st.last_done = sim.now();
            if let Some(series) = st.series.as_mut() {
                series.record_at(sim.now(), 1.0);
            }
        })
    }

    /// Starts Poisson arrivals at `rate_rps` against `chain` on `cluster`,
    /// seeded for reproducibility.
    pub fn start(
        &self,
        sim: &mut Sim,
        cluster: &Cluster,
        chain: &ChainSpec,
        rate_rps: f64,
        payload: usize,
        seed: u64,
    ) {
        assert!(rate_rps > 0.0, "arrival rate must be positive");
        {
            let mut inner = self.driver.inner.borrow_mut();
            inner.began = sim.now();
        }
        let injector = Rc::new(ClusterInjector {
            cluster: ClusterRef::new(cluster),
            chain: chain.clone(),
            payload,
            driver: self.driver.clone(),
        });
        let mean_gap_s = 1.0 / rate_rps;
        let rng = Rc::new(RefCell::new(simcore::SimRng::new(seed)));
        fn arrive(
            sim: &mut Sim,
            injector: Rc<ClusterInjector>,
            rng: Rc<RefCell<simcore::SimRng>>,
            mean_gap_s: f64,
        ) {
            let (req, stopped) = {
                let mut inner = injector.driver.inner.borrow_mut();
                if sim.now() >= inner.stop_at {
                    (0, true)
                } else {
                    let req = inner.next_req;
                    inner.next_req += 1;
                    inner.pending.insert(req, sim.now());
                    (req, false)
                }
            };
            if stopped {
                return;
            }
            injector.inject(sim, req);
            let gap = rng.borrow_mut().exponential(mean_gap_s);
            let injector2 = injector.clone();
            let rng2 = rng.clone();
            sim.schedule_after(SimDuration::from_secs_f64(gap), move |sim| {
                arrive(sim, injector2, rng2, mean_gap_s);
            });
        }
        arrive(sim, injector, rng, mean_gap_s);
    }

    /// Completed request count.
    pub fn completed(&self) -> u64 {
        self.driver.completed()
    }

    /// Requests shed at admission (pool exhaustion under overload).
    pub fn shed_count(&self) -> u64 {
        self.driver.shed_count()
    }

    /// Requests issued (offered load).
    pub fn offered(&self) -> u64 {
        self.driver.inner.borrow().next_req
    }

    /// Latency histogram of completed requests.
    pub fn latency(&self) -> Histogram {
        self.driver.latency()
    }

    /// Windowed throughput series.
    pub fn series(&self, end: SimTime) -> Vec<(f64, f64)> {
        self.driver.series(end)
    }
}

/// Injection plumbing: keeps only what `inject` needs from the cluster.
struct ClusterInjector {
    cluster: ClusterRef,
    chain: ChainSpec,
    payload: usize,
    driver: ClosedLoop,
}

impl ClusterInjector {
    fn inject(&self, sim: &mut Sim, req: u64) {
        if !self.cluster.inject(sim, &self.chain, req, self.payload) {
            self.driver.shed(req);
        }
    }
}

/// A cheap cloneable view of the cluster pieces the injector touches.
///
/// The cluster itself is not `Clone`; we keep the pool handles, placement
/// and entry I/O library, which are.
struct ClusterRef {
    pools: Vec<(TenantId, usize, membuf::BufferPool)>,
    placement: Rc<RefCell<runtime::Placement>>,
    iolibs: Vec<runtime::IoLib>,
    node_ids: Vec<rdma_sim::NodeId>,
    tracer: obs::Tracer,
}

impl ClusterRef {
    fn new(cluster: &Cluster) -> ClusterRef {
        ClusterRef {
            pools: cluster.pools_snapshot(),
            placement: cluster.placement.clone(),
            iolibs: cluster.nodes.iter().map(|n| n.iolib.clone()).collect(),
            node_ids: cluster.nodes.iter().map(|n| n.id).collect(),
            tracer: cluster.tracer(),
        }
    }

    fn inject(&self, sim: &mut Sim, chain: &ChainSpec, req: u64, payload: usize) -> bool {
        let entry = chain.entry();
        let Some(node) = self.placement.borrow().node_of(entry) else {
            return false;
        };
        let Some(idx) = self.node_ids.iter().position(|&n| n == node) else {
            return false;
        };
        let Some((_, _, pool)) = self
            .pools
            .iter()
            .find(|(t, i, _)| *t == chain.tenant && *i == idx)
        else {
            return false;
        };
        let Ok(mut buf) = pool.get() else {
            return false;
        };
        // Payloads carry the on-wire trace context (24 bytes) even when
        // the caller asked for less, matching `Cluster::inject`.
        let mut payload_bytes = runtime::encode_request_payload(req, payload.max(obs::CTX_REGION));
        runtime::set_hop(&mut payload_bytes, 0);
        // The load driver is the ingress here: decide sampling once and
        // stamp the on-wire bit; downstream span sites gate on it.
        let sampled = self.tracer.decide_sample(req);
        if sampled {
            obs::ctx::write_ctx(&mut payload_bytes, 0, true);
        }
        if buf.write_payload(&payload_bytes).is_err() {
            return false;
        }
        // Pass the trace meta down so the local hop needs no pool peek.
        self.iolibs[idx].send_traced(
            sim,
            chain.tenant,
            buf.into_desc(entry),
            Some((req, sampled)),
        );
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;

    #[test]
    fn closed_loop_measures_latency_and_rps() {
        let mut sim = Sim::new();
        let mut cluster = Cluster::new(&mut sim, ClusterConfig::default());
        let tenant = TenantId(1);
        cluster.add_tenant(&mut sim, tenant, 1).unwrap();
        let chain = ChainSpec::new("echo", tenant, vec![1, 2, 1]);
        cluster.place(1, 0);
        cluster.place(2, 1);
        let stop = sim.now() + SimDuration::from_millis(50);
        let driver = ClosedLoop::new(stop).with_series(SimDuration::from_millis(10));
        cluster.register_chain(
            &chain,
            |_| SimDuration::from_micros(10),
            driver.completion(),
        );
        driver.start(&mut sim, &cluster, &chain, 4, 128);
        sim.run();
        assert!(driver.completed() > 100);
        assert!(driver.rps() > 1_000.0, "rps = {}", driver.rps());
        let lat = driver.latency();
        assert_eq!(lat.count(), driver.completed());
        assert!(lat.mean().as_micros_f64() > 10.0);
        let series = driver.series(sim.now());
        assert!(series.len() >= 4);
        assert!(series.iter().any(|&(_, r)| r > 0.0));
    }

    #[test]
    fn open_loop_matches_offered_rate_when_underloaded() {
        let mut sim = Sim::new();
        let mut cluster = Cluster::new(&mut sim, ClusterConfig::default());
        let tenant = TenantId(1);
        cluster.add_tenant(&mut sim, tenant, 1).unwrap();
        let chain = ChainSpec::new("echo", tenant, vec![1, 2, 1]);
        cluster.place(1, 0);
        cluster.place(2, 1);
        let stop = sim.now() + SimDuration::from_millis(200);
        let gen = OpenLoop::new(stop);
        cluster.register_chain(&chain, |_| SimDuration::from_micros(5), gen.completion());
        gen.start(&mut sim, &cluster, &chain, 10_000.0, 128, 42);
        sim.run();
        // ~2000 offered at 10K RPS over 200 ms; all complete (underload).
        let offered = gen.offered();
        assert!(
            (1700..=2300).contains(&(offered as i64)),
            "offered {offered}"
        );
        assert_eq!(gen.completed(), offered);
        assert_eq!(gen.shed_count(), 0);
        assert!(gen.latency().mean().as_micros_f64() < 200.0);
    }

    #[test]
    fn open_loop_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut sim = Sim::new();
            let mut cluster = Cluster::new(&mut sim, ClusterConfig::default());
            let tenant = TenantId(1);
            cluster.add_tenant(&mut sim, tenant, 1).unwrap();
            let chain = ChainSpec::new("echo", tenant, vec![1, 2, 1]);
            cluster.place(1, 0);
            cluster.place(2, 1);
            let gen = OpenLoop::new(sim.now() + SimDuration::from_millis(50));
            cluster.register_chain(&chain, |_| SimDuration::ZERO, gen.completion());
            gen.start(&mut sim, &cluster, &chain, 20_000.0, 64, seed);
            sim.run();
            (gen.offered(), gen.latency().mean().as_nanos())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds, different arrivals");
    }

    #[test]
    fn stops_issuing_after_deadline() {
        let mut sim = Sim::new();
        let mut cluster = Cluster::new(&mut sim, ClusterConfig::default());
        let tenant = TenantId(1);
        cluster.add_tenant(&mut sim, tenant, 1).unwrap();
        let chain = ChainSpec::new("echo", tenant, vec![1, 2, 1]);
        cluster.place(1, 0);
        cluster.place(2, 1);
        let stop = sim.now() + SimDuration::from_millis(5);
        let driver = ClosedLoop::new(stop);
        cluster.register_chain(
            &chain,
            |_| SimDuration::from_micros(10),
            driver.completion(),
        );
        driver.start(&mut sim, &cluster, &chain, 2, 64);
        sim.run();
        let total = driver.completed();
        assert!(total > 0);
        // Queue fully drained: nothing pending.
        assert_eq!(driver.inner.borrow().pending.len(), 0);
    }
}
