//! Fleet lifecycle controller: provisioning, drains, rolling upgrades.
//!
//! `core::health` can fail a crashed node over, but nothing *manages* the
//! fleet — operators must rotate DPUs out for maintenance, roll DNE
//! upgrades across nodes, and keep tenant traffic flowing while the
//! infrastructure changes underneath it. This module is that control
//! plane:
//!
//! ```text
//!            ┌────────────── provision ──────────────┐
//!            ▼                                       │
//!      InService ── drain ──▶ Draining ──▶ Upgrading │
//!            ▲                   │            │      │
//!            │                   │            ▼      │
//!            └── routes restored ┴──── Decommissioned┘
//! ```
//!
//! A **drain** goes through the existing `Draining` health state under an
//! administrative hold: routes fail over to backups first (new work stops
//! landing), the capacity factor drops (ingress admission shrinks), and
//! the controller polls the node's engine until in-flight work quiesces
//! or the **drain deadline** expires — in-flight requests always either
//! complete or fail typed, never hang. An **upgrade wave** then walks the
//! fleet one node at a time: drain → switch the engine's CTX wire version
//! → announce the new version to every peer (see `obs::ctx` for the
//! versioned wire region) → restore routes → release the hold. Peers
//! stamp toward each node at `min(own, announced)` throughout, so
//! old/new version skew rides the wire safely for the whole rollout.
//!
//! Every routing rebalance the cluster performs feeds back in through the
//! fleet route observer — including the **stranded** keys (functions with
//! no healthy alternative) that used to be silently discarded — and the
//! controller's counters surface as `fleet_*` gauges via
//! `Cluster::sample_obs`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use rdma_sim::NodeId;
use simcore::{Sim, SimDuration, SimTime};

use crate::cluster::{Cluster, FleetRouteEvent};
use crate::health::{HealthMonitor, NodeState};

/// Fleet controller configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Longest the controller waits for a draining node's in-flight work
    /// to quiesce before proceeding anyway (the leftover work completes
    /// or fails typed under the normal retry/deadline machinery).
    pub drain_deadline: SimDuration,
    /// Cadence of the drain quiesce poll.
    pub drain_poll: SimDuration,
    /// Simulated time a node spends restarting into the new engine
    /// version (out of service, routes on backups).
    pub upgrade_duration: SimDuration,
    /// Pause after a node returns to service before the wave moves on —
    /// lets connections and admission settle so the fleet never has two
    /// nodes out at once.
    pub settle: SimDuration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            drain_deadline: SimDuration::from_millis(5),
            drain_poll: SimDuration::from_micros(50),
            upgrade_duration: SimDuration::from_micros(500),
            settle: SimDuration::from_micros(200),
        }
    }
}

/// Administrative lifecycle of a node, layered over its health state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeLifecycle {
    /// Taking traffic.
    InService,
    /// Routes failed over; waiting for in-flight work to quiesce.
    Draining,
    /// Restarting into a new engine version.
    Upgrading,
    /// Rotated out of the fleet; routes stay on backups until provisioned.
    Decommissioned,
}

impl NodeLifecycle {
    /// Stable numeric encoding for gauges (0=in-service … 3=decommissioned).
    pub fn as_gauge(self) -> f64 {
        match self {
            NodeLifecycle::InService => 0.0,
            NodeLifecycle::Draining => 1.0,
            NodeLifecycle::Upgrading => 2.0,
            NodeLifecycle::Decommissioned => 3.0,
        }
    }
}

/// A typed fleet event, recorded in order (deterministic per seed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetEvent {
    DrainStarted {
        node: NodeId,
    },
    /// The node's engine quiesced within the deadline.
    DrainCompleted {
        node: NodeId,
    },
    /// The deadline expired with work still in flight; the controller
    /// proceeds — the leftovers complete or fail typed, never hang.
    DrainDeadlineExceeded {
        node: NodeId,
        in_flight_left: usize,
    },
    UpgradeStarted {
        node: NodeId,
        from: u8,
        to: u8,
    },
    UpgradeCompleted {
        node: NodeId,
        version: u8,
    },
    Decommissioned {
        node: NodeId,
    },
    Provisioned {
        node: NodeId,
        restored: Vec<u16>,
    },
    /// Routes moved off a node (drain or crash failover).
    Rebalanced {
        node: NodeId,
        moved: Vec<u16>,
    },
    /// Functions left with no healthy target — the keys the old
    /// `fail_over_node` call path silently dropped.
    RoutesStranded {
        node: NodeId,
        keys: Vec<u16>,
    },
    /// Displaced primaries restored onto a recovered node.
    RoutesRestored {
        node: NodeId,
        restored: Vec<u16>,
    },
    WaveStarted {
        target: u8,
    },
    WaveCompleted {
        target: u8,
        upgraded: usize,
    },
}

/// Monotonic controller counters (exported as `fleet_*` gauges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetCounters {
    pub drains_started: u64,
    pub drains_completed: u64,
    pub drain_deadline_exceeded: u64,
    pub upgrades_completed: u64,
    pub waves_completed: u64,
    /// Failover/restore rebalances observed via the route observer.
    pub rebalances: u64,
    /// Total stranded route keys observed across all failovers.
    pub stranded_routes: u64,
    pub decommissions: u64,
    pub provisions: u64,
}

/// Per-lifecycle node tallies for gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleCounts {
    pub in_service: usize,
    pub draining: usize,
    pub upgrading: usize,
    pub decommissioned: usize,
}

struct WaveState {
    target: u8,
    /// Node indices still to upgrade, in order.
    queue: Vec<usize>,
    upgraded: usize,
}

struct CtlInner {
    cfg: FleetConfig,
    cluster: Rc<Cluster>,
    health: HealthMonitor,
    /// Keyed by node index for deterministic iteration.
    lifecycle: BTreeMap<usize, NodeLifecycle>,
    counters: FleetCounters,
    events: Vec<FleetEvent>,
    wave: Option<WaveState>,
}

/// The fleet lifecycle controller. Cheap to clone (shared state).
#[derive(Clone)]
pub struct FleetController {
    inner: Rc<RefCell<CtlInner>>,
}

impl FleetController {
    /// Builds the controller and wires it into the cluster: registers the
    /// fleet route observer (stranded keys become typed events) and
    /// attaches itself for `fleet_*` gauge emission.
    pub fn install(
        cluster: &Rc<Cluster>,
        health: &HealthMonitor,
        cfg: FleetConfig,
    ) -> FleetController {
        let lifecycle = (0..cluster.nodes.len())
            .map(|i| (i, NodeLifecycle::InService))
            .collect();
        let ctl = FleetController {
            inner: Rc::new(RefCell::new(CtlInner {
                cfg,
                cluster: Rc::clone(cluster),
                health: health.clone(),
                lifecycle,
                counters: FleetCounters::default(),
                events: Vec::new(),
                wave: None,
            })),
        };
        let observer = ctl.clone();
        cluster.set_fleet_route_observer(Rc::new(move |ev| observer.on_route_event(ev)));
        cluster.attach_fleet(ctl.clone());
        ctl
    }

    fn on_route_event(&self, ev: &FleetRouteEvent) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.rebalances += 1;
        match ev {
            FleetRouteEvent::FailedOver(outcome) => {
                inner.events.push(FleetEvent::Rebalanced {
                    node: outcome.node,
                    moved: outcome.switched.clone(),
                });
                if !outcome.stranded.is_empty() {
                    inner.counters.stranded_routes += outcome.stranded.len() as u64;
                    inner.events.push(FleetEvent::RoutesStranded {
                        node: outcome.node,
                        keys: outcome.stranded.clone(),
                    });
                }
            }
            FleetRouteEvent::Restored { node, restored } => {
                inner.events.push(FleetEvent::RoutesRestored {
                    node: *node,
                    restored: restored.clone(),
                });
            }
        }
    }

    /// Drains node `idx` (administrative): fails routes over, drops the
    /// capacity factor, and polls the engine until in-flight work
    /// quiesces (two consecutive clean polls) or the drain deadline
    /// expires — then calls `then`. The node stays `Draining` (and held)
    /// until an upgrade, decommission or provision completes the
    /// lifecycle step.
    pub fn drain(&self, sim: &mut Sim, idx: usize, then: impl FnOnce(&mut Sim) + 'static) {
        let (node, cluster, health) = {
            let mut inner = self.inner.borrow_mut();
            let cluster = Rc::clone(&inner.cluster);
            let node = cluster.nodes[idx].id;
            inner.lifecycle.insert(idx, NodeLifecycle::Draining);
            inner.counters.drains_started += 1;
            inner.events.push(FleetEvent::DrainStarted { node });
            (node, cluster, inner.health.clone())
        };
        // Hold the health state (capacity shrinks; probes keep hands off)
        // and move routes before waiting: a drain stops new placements
        // first, then lets the in-flight tail run out.
        health.begin_drain(sim, node);
        cluster.fail_over_node(idx);
        let started = sim.now();
        self.poll_drain(sim, idx, started, 0, Box::new(then));
    }

    fn poll_drain(
        &self,
        sim: &mut Sim,
        idx: usize,
        started: SimTime,
        clean_polls: u32,
        then: Box<dyn FnOnce(&mut Sim)>,
    ) {
        let (deadline, poll, in_flight, node) = {
            let inner = self.inner.borrow();
            (
                inner.cfg.drain_deadline,
                inner.cfg.drain_poll,
                inner.cluster.in_flight_on(idx),
                inner.cluster.nodes[idx].id,
            )
        };
        let clean_polls = if in_flight == 0 { clean_polls + 1 } else { 0 };
        if clean_polls >= 2 {
            let mut inner = self.inner.borrow_mut();
            inner.counters.drains_completed += 1;
            inner.events.push(FleetEvent::DrainCompleted { node });
            drop(inner);
            then(sim);
            return;
        }
        if sim.now().saturating_since(started) >= deadline {
            let mut inner = self.inner.borrow_mut();
            inner.counters.drain_deadline_exceeded += 1;
            inner.events.push(FleetEvent::DrainDeadlineExceeded {
                node,
                in_flight_left: in_flight,
            });
            drop(inner);
            then(sim);
            return;
        }
        let ctl = self.clone();
        sim.schedule_after(poll, move |sim| {
            ctl.poll_drain(sim, idx, started, clean_polls, then);
        });
    }

    /// Upgrades node `idx` to CTX wire `target`: drain, restart for
    /// `upgrade_duration` at the new version, announce the version to all
    /// peers, restore routes, release the health hold, settle, then call
    /// `then`. A node that crashed mid-drain keeps its routes on backups —
    /// the normal probe recovery restores them once the machine is truly
    /// back (at its new version either way).
    pub fn upgrade_node(
        &self,
        sim: &mut Sim,
        idx: usize,
        target: u8,
        then: impl FnOnce(&mut Sim) + 'static,
    ) {
        let ctl = self.clone();
        self.drain(sim, idx, move |sim| {
            let (node, from, upgrade_duration) = {
                let mut inner = ctl.inner.borrow_mut();
                let node = inner.cluster.nodes[idx].id;
                let from = inner.cluster.nodes[idx].dne.wire_version();
                inner.lifecycle.insert(idx, NodeLifecycle::Upgrading);
                inner.events.push(FleetEvent::UpgradeStarted {
                    node,
                    from,
                    to: target,
                });
                (node, from, inner.cfg.upgrade_duration)
            };
            let _ = from;
            let ctl2 = ctl.clone();
            sim.schedule_after(upgrade_duration, move |sim| {
                ctl2.finish_upgrade(sim, idx, node, target, Box::new(then));
            });
        });
    }

    fn finish_upgrade(
        &self,
        sim: &mut Sim,
        idx: usize,
        node: NodeId,
        target: u8,
        then: Box<dyn FnOnce(&mut Sim)>,
    ) {
        let (cluster, health, settle) = {
            let inner = self.inner.borrow();
            (
                Rc::clone(&inner.cluster),
                inner.health.clone(),
                inner.cfg.settle,
            )
        };
        // The restarted engine speaks the new version; every peer learns
        // it (the control-plane announcement of version negotiation).
        cluster.set_node_wire_version(idx, target);
        // Return to service only if the machine is actually drained-idle:
        // a node that crashed during the drain stays on the probe path
        // (its routes come back via the normal recovery handler).
        if health.state_of(node) == Some(NodeState::Draining) {
            cluster.restore_node(idx);
            health.end_drain(sim, node);
        } else {
            // Clear the administrative hold; the probe loop owns recovery.
            health.end_drain(sim, node);
        }
        {
            let mut inner = self.inner.borrow_mut();
            inner.lifecycle.insert(idx, NodeLifecycle::InService);
            inner.counters.upgrades_completed += 1;
            inner.events.push(FleetEvent::UpgradeCompleted {
                node,
                version: target,
            });
        }
        sim.schedule_after(settle, move |sim| then(sim));
    }

    /// Rotates node `idx` out of the fleet: drain, then leave its routes
    /// on backups and mark it `Decommissioned`. The health hold stays —
    /// a decommissioned node counts against capacity until provisioned.
    pub fn decommission(&self, sim: &mut Sim, idx: usize) {
        let ctl = self.clone();
        self.drain(sim, idx, move |_sim| {
            let mut inner = ctl.inner.borrow_mut();
            let node = inner.cluster.nodes[idx].id;
            inner.lifecycle.insert(idx, NodeLifecycle::Decommissioned);
            inner.counters.decommissions += 1;
            inner.events.push(FleetEvent::Decommissioned { node });
        });
    }

    /// Brings a decommissioned node back into service: restores its
    /// routes, releases the health hold and marks it `InService`.
    pub fn provision(&self, sim: &mut Sim, idx: usize) {
        let (node, cluster, health, was) = {
            let inner = self.inner.borrow();
            let cluster = Rc::clone(&inner.cluster);
            (
                cluster.nodes[idx].id,
                cluster,
                inner.health.clone(),
                inner.lifecycle.get(&idx).copied(),
            )
        };
        if was != Some(NodeLifecycle::Decommissioned) {
            return;
        }
        let restored = cluster.restore_node(idx);
        health.end_drain(sim, node);
        let mut inner = self.inner.borrow_mut();
        inner.lifecycle.insert(idx, NodeLifecycle::InService);
        inner.counters.provisions += 1;
        inner
            .events
            .push(FleetEvent::Provisioned { node, restored });
    }

    /// Starts a rolling upgrade wave to CTX wire `target`: every
    /// `InService` node, one at a time in index order, goes through
    /// drain → restart-at-new-version → re-announce → restore. At most
    /// one node is out of service at any moment. No-op if a wave is
    /// already running.
    pub fn start_upgrade_wave(&self, sim: &mut Sim, target: u8) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.wave.is_some() {
                return;
            }
            let queue: Vec<usize> = inner
                .lifecycle
                .iter()
                .filter(|(_, l)| **l == NodeLifecycle::InService)
                .map(|(&i, _)| i)
                .collect();
            inner.wave = Some(WaveState {
                target,
                queue,
                upgraded: 0,
            });
            inner.events.push(FleetEvent::WaveStarted { target });
        }
        self.step_wave(sim);
    }

    fn step_wave(&self, sim: &mut Sim) {
        let next = {
            let mut inner = self.inner.borrow_mut();
            let Some(wave) = inner.wave.as_mut() else {
                return;
            };
            if wave.queue.is_empty() {
                let (target, upgraded) = (wave.target, wave.upgraded);
                inner.wave = None;
                inner.counters.waves_completed += 1;
                inner
                    .events
                    .push(FleetEvent::WaveCompleted { target, upgraded });
                None
            } else {
                let idx = wave.queue.remove(0);
                wave.upgraded += 1;
                Some((idx, wave.target))
            }
        };
        if let Some((idx, target)) = next {
            // The continuation re-enters `step_wave` after the settle
            // pause, so the wave strictly serializes.
            let ctl = self.clone();
            self.upgrade_node(sim, idx, target, move |sim| ctl.step_wave(sim));
        }
    }

    /// Whether an upgrade wave is in progress.
    pub fn wave_active(&self) -> bool {
        self.inner.borrow().wave.is_some()
    }

    /// Current administrative lifecycle of node `idx`.
    pub fn lifecycle_of(&self, idx: usize) -> Option<NodeLifecycle> {
        self.inner.borrow().lifecycle.get(&idx).copied()
    }

    /// Per-lifecycle node tallies.
    pub fn lifecycle_counts(&self) -> LifecycleCounts {
        let inner = self.inner.borrow();
        let mut c = LifecycleCounts::default();
        for l in inner.lifecycle.values() {
            match l {
                NodeLifecycle::InService => c.in_service += 1,
                NodeLifecycle::Draining => c.draining += 1,
                NodeLifecycle::Upgrading => c.upgrading += 1,
                NodeLifecycle::Decommissioned => c.decommissioned += 1,
            }
        }
        c
    }

    /// Controller counters (monotonic).
    pub fn counters(&self) -> FleetCounters {
        self.inner.borrow().counters
    }

    /// Every recorded fleet event, in order (deterministic per seed).
    pub fn events(&self) -> Vec<FleetEvent> {
        self.inner.borrow().events.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};
    use crate::health::HealthConfig;
    use membuf::tenant::TenantId;
    use runtime::ChainSpec;
    use simcore::SimDuration;

    fn harness() -> (
        Sim,
        Rc<Cluster>,
        crate::health::HealthMonitor,
        FleetController,
    ) {
        let mut sim = Sim::new();
        let mut cluster = Cluster::new(&mut sim, ClusterConfig::default());
        let tenant = TenantId(1);
        cluster.add_tenant(&mut sim, tenant, 1).unwrap();
        let chain = ChainSpec::new("echo", tenant, vec![1, 2, 1]);
        cluster.place_with_backup(1, 0, 1);
        cluster.place_with_backup(2, 1, 0);
        cluster.register_chain(&chain, |_| SimDuration::from_micros(5), Rc::new(|_, _| {}));
        let cluster = Rc::new(cluster);
        let until = sim.now() + SimDuration::from_millis(200);
        let monitor = cluster.enable_health_monitor(&mut sim, HealthConfig::default(), until);
        let ctl = FleetController::install(&cluster, &monitor, FleetConfig::default());
        (sim, cluster, monitor, ctl)
    }

    #[test]
    fn wave_visits_only_in_service_nodes() {
        let (mut sim, cluster, _monitor, ctl) = harness();
        for idx in 0..cluster.nodes.len() {
            cluster.set_node_wire_version(idx, obs::CTX_V1);
        }
        ctl.decommission(&mut sim, 1);
        sim.run_for(SimDuration::from_millis(10));
        assert_eq!(ctl.lifecycle_of(1), Some(NodeLifecycle::Decommissioned));
        ctl.start_upgrade_wave(&mut sim, obs::CTX_V2);
        sim.run();
        let c = ctl.counters();
        assert_eq!(c.waves_completed, 1);
        assert_eq!(c.upgrades_completed, 1, "wave touched the parked node");
        assert_eq!(cluster.nodes[0].dne.wire_version(), obs::CTX_V2);
        assert_ne!(cluster.nodes[1].dne.wire_version(), obs::CTX_V2);
        assert!(ctl
            .events()
            .iter()
            .any(|e| matches!(e, FleetEvent::WaveCompleted { upgraded: 1, .. })));
    }

    #[test]
    fn second_wave_start_is_a_noop_while_active() {
        let (mut sim, cluster, _monitor, ctl) = harness();
        ctl.start_upgrade_wave(&mut sim, obs::CTX_V2);
        assert!(ctl.wave_active());
        ctl.start_upgrade_wave(&mut sim, obs::CTX_V1);
        sim.run();
        assert!(!ctl.wave_active());
        assert_eq!(ctl.counters().waves_completed, 1);
        for node in cluster.nodes.iter() {
            assert_eq!(node.dne.wire_version(), obs::CTX_V2);
        }
        let starts = ctl
            .events()
            .iter()
            .filter(|e| matches!(e, FleetEvent::WaveStarted { .. }))
            .count();
        assert_eq!(starts, 1);
    }

    #[test]
    fn provision_requires_decommissioned() {
        let (mut sim, _cluster, _monitor, ctl) = harness();
        assert_eq!(ctl.lifecycle_of(0), Some(NodeLifecycle::InService));
        ctl.provision(&mut sim, 0);
        assert_eq!(ctl.counters().provisions, 0);
        assert!(ctl.events().is_empty());
    }

    #[test]
    fn lifecycle_counts_track_transitions() {
        let (mut sim, _cluster, _monitor, ctl) = harness();
        assert_eq!(ctl.lifecycle_counts().in_service, 2);
        ctl.decommission(&mut sim, 1);
        sim.run_for(SimDuration::from_millis(10));
        let c = ctl.lifecycle_counts();
        assert_eq!((c.in_service, c.decommissioned), (1, 1));
        ctl.provision(&mut sim, 1);
        assert_eq!(ctl.lifecycle_counts().in_service, 2);
    }
}
