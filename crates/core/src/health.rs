//! Node health tracking and cross-node failover.
//!
//! The DNE's typed [`DeliveryFailure`](dne::types::DeliveryFailure)s carry
//! the destination node they were aimed at; this module folds that stream
//! into a per-node state machine with hysteresis:
//!
//! ```text
//! Healthy ──failures ≥ suspect_after──▶ Suspect
//! Suspect ──failures ≥ down_after────▶ Down      (fail over to backups)
//! Suspect ──clean for suspect_decay──▶ Healthy   (failure burst blew over)
//! Down ────probe says node is up─────▶ Draining
//! Draining ──after drain hold-down───▶ Healthy   (routes restored)
//! ```
//!
//! Entering `Down` triggers the down handler (the cluster re-points every
//! routing table at the configured backups); leaving `Draining` triggers
//! the recovered handler (routes restored to the displaced primaries). The
//! hold-down between the probe first seeing the node up and the routes
//! moving back absorbs flapping: a node that crashes again mid-drain goes
//! straight back to `Down` without ever having taken traffic.
//!
//! Probing is driven by the fabric's [`FaultPlane`](rdma_sim::FaultPlane)
//! crash windows — the simulation's ground truth for "is the machine up" —
//! sampled on a fixed cadence so runs stay deterministic. Every transition
//! is recorded as an instant [`Stage::HealthEvent`](obs::Stage) span under
//! the synthetic trace id [`HEALTH_TRACE_ID`] and kept in an event log for
//! assertions and dashboards.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use rdma_sim::{Fabric, NodeId};
use simcore::{Sim, SimDuration, SimTime};

/// Synthetic trace id health-event spans are recorded under (health is a
/// cluster-level signal, not a per-request one).
pub const HEALTH_TRACE_ID: u64 = u64::MAX;

/// Health-monitor configuration.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Consecutive delivery failures that turn `Healthy` into `Suspect`.
    pub suspect_after: u32,
    /// Consecutive delivery failures that turn `Suspect` into `Down`.
    pub down_after: u32,
    /// A `Suspect` node with no new failure for this long returns to
    /// `Healthy` (the burst blew over without reaching the down bar).
    pub suspect_decay: SimDuration,
    /// Probe cadence: how often `Down`/`Draining` nodes are re-examined.
    pub probe_interval: SimDuration,
    /// Hold-down between the probe first seeing a `Down` node up again and
    /// the routes being restored (`Draining` → `Healthy`).
    pub drain: SimDuration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            suspect_after: 1,
            down_after: 3,
            suspect_decay: SimDuration::from_millis(10),
            probe_interval: SimDuration::from_millis(1),
            drain: SimDuration::from_millis(5),
        }
    }
}

/// A node's health state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Serving traffic normally.
    Healthy,
    /// Failures observed; still routed to, but one step from failover.
    Suspect,
    /// Considered dead: routes moved to backups.
    Down,
    /// Probe says the machine is back; waiting out the drain hold-down
    /// before routes return.
    Draining,
}

impl NodeState {
    /// Stable numeric encoding for gauges (0=healthy … 3=draining).
    pub fn as_gauge(self) -> f64 {
        match self {
            NodeState::Healthy => 0.0,
            NodeState::Suspect => 1.0,
            NodeState::Down => 2.0,
            NodeState::Draining => 3.0,
        }
    }
}

/// One recorded state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthEvent {
    pub at: SimTime,
    pub node: NodeId,
    pub from: NodeState,
    pub to: NodeState,
}

/// Invoked when a node enters `Down` (fail over) or completes `Draining`
/// (restore).
pub type NodeEventHandler = Rc<dyn Fn(&mut Sim, NodeId)>;

/// Invoked whenever the healthy-capacity fraction changes.
pub type CapacityHandler = Rc<dyn Fn(&mut Sim, f64)>;

#[derive(Debug, Clone, Copy)]
struct NodeTrack {
    state: NodeState,
    /// Consecutive failures since the last decay/recovery.
    failures: u32,
    last_failure: SimTime,
    /// When a `Draining` node may return to `Healthy`.
    drain_until: SimTime,
    /// Administrative hold (fleet controller drain): the probe loop never
    /// auto-completes this drain — only [`HealthMonitor::end_drain`] does.
    /// Survives a mid-drain crash/recovery cycle, so the probe's own
    /// `Draining → Healthy` path stays suppressed until the controller
    /// releases the node.
    admin_hold: bool,
}

struct MonitorInner {
    cfg: HealthConfig,
    /// Keyed by raw node id so iteration order is deterministic.
    nodes: BTreeMap<u16, NodeTrack>,
    events: Vec<HealthEvent>,
    tracer: obs::Tracer,
    on_down: Option<NodeEventHandler>,
    on_recovered: Option<NodeEventHandler>,
    on_capacity: Option<CapacityHandler>,
    probing: bool,
    /// Multiplier in `(0, 1]` fed by the SLO burn monitor: alerting
    /// tenants discount effective capacity so admission sheds sooner
    /// even while every node is nominally up.
    slo_pressure: f64,
}

impl MonitorInner {
    fn capacity(&self) -> f64 {
        let total = self.nodes.len().max(1) as f64;
        // Draining nodes take no new traffic (routes live on backups until
        // the drain completes), so they count against capacity just like
        // Down — the gateway's admission target shrinks during both crash
        // recovery and administrative drains (upgrade waves).
        let up = self
            .nodes
            .values()
            .filter(|t| matches!(t.state, NodeState::Healthy | NodeState::Suspect))
            .count() as f64;
        (up / total) * self.slo_pressure
    }

    /// Records a transition (event log + instant span); the caller fires
    /// any handlers after the borrow is released.
    fn transition(&mut self, now: SimTime, node: NodeId, to: NodeState) -> NodeState {
        let track = self.nodes.get_mut(&node.0).expect("tracked node");
        let from = track.state;
        track.state = to;
        self.events.push(HealthEvent {
            at: now,
            node,
            from,
            to,
        });
        if self.tracer.is_enabled() {
            self.tracer.span(
                HEALTH_TRACE_ID,
                0,
                node.0 as u32,
                obs::Stage::HealthEvent,
                now,
                now,
            );
        }
        from
    }
}

/// The cluster health monitor. Cheap to clone (shared state).
#[derive(Clone)]
pub struct HealthMonitor {
    inner: Rc<RefCell<MonitorInner>>,
}

impl HealthMonitor {
    /// Creates a monitor tracking `nodes`, all initially `Healthy`.
    pub fn new(cfg: HealthConfig, nodes: impl IntoIterator<Item = NodeId>) -> HealthMonitor {
        let tracks = nodes
            .into_iter()
            .map(|n| {
                (
                    n.0,
                    NodeTrack {
                        state: NodeState::Healthy,
                        failures: 0,
                        last_failure: SimTime::ZERO,
                        drain_until: SimTime::ZERO,
                        admin_hold: false,
                    },
                )
            })
            .collect();
        HealthMonitor {
            inner: Rc::new(RefCell::new(MonitorInner {
                cfg,
                nodes: tracks,
                events: Vec::new(),
                tracer: obs::Tracer::disabled(),
                on_down: None,
                on_recovered: None,
                on_capacity: None,
                probing: false,
                slo_pressure: 1.0,
            })),
        }
    }

    /// Installs the span tracer health events are recorded into.
    pub fn set_tracer(&self, tracer: obs::Tracer) {
        self.inner.borrow_mut().tracer = tracer;
    }

    /// Installs the handler invoked when a node enters `Down`.
    pub fn set_down_handler(&self, h: NodeEventHandler) {
        self.inner.borrow_mut().on_down = Some(h);
    }

    /// Installs the handler invoked when a node finishes `Draining`.
    pub fn set_recovered_handler(&self, h: NodeEventHandler) {
        self.inner.borrow_mut().on_recovered = Some(h);
    }

    /// Installs the handler invoked when the capacity fraction changes
    /// (e.g. the gateway's admission controller).
    pub fn set_capacity_handler(&self, h: CapacityHandler) {
        self.inner.borrow_mut().on_capacity = Some(h);
    }

    /// Current state of `node` (`None` if untracked).
    pub fn state_of(&self, node: NodeId) -> Option<NodeState> {
        self.inner.borrow().nodes.get(&node.0).map(|t| t.state)
    }

    /// The effective capacity fraction in `(0, 1]`: the fraction of
    /// tracked nodes not currently `Down`, discounted by SLO pressure.
    pub fn healthy_fraction(&self) -> f64 {
        self.inner.borrow().capacity()
    }

    /// Sets the SLO-pressure multiplier (clamped to `(0, 1]`) and fires
    /// the capacity handler if the effective capacity changed. Fed by
    /// the trace pipeline's burn monitor: each alerting tenant should
    /// discount capacity a notch so ingress sheds before the budget is
    /// gone.
    pub fn set_slo_pressure(&self, sim: &mut Sim, pressure: f64) {
        let clamped = pressure.clamp(f64::MIN_POSITIVE, 1.0);
        let (changed, capacity, handler) = {
            let mut inner = self.inner.borrow_mut();
            let changed = inner.slo_pressure != clamped;
            inner.slo_pressure = clamped;
            (changed, inner.capacity(), inner.on_capacity.clone())
        };
        if changed {
            if let Some(h) = handler {
                h(sim, capacity);
            }
        }
    }

    /// The current SLO-pressure multiplier.
    pub fn slo_pressure(&self) -> f64 {
        self.inner.borrow().slo_pressure
    }

    /// Every recorded transition, in order.
    pub fn events(&self) -> Vec<HealthEvent> {
        self.inner.borrow().events.clone()
    }

    /// `(node, state)` for every tracked node, sorted by node id.
    pub fn states(&self) -> Vec<(NodeId, NodeState)> {
        self.inner
            .borrow()
            .nodes
            .iter()
            .map(|(&id, t)| (NodeId(id), t.state))
            .collect()
    }

    /// Feeds one delivery failure attributed to `node` into the state
    /// machine. Call from the cluster failure dispatcher.
    pub fn on_failure(&self, sim: &mut Sim, node: NodeId) {
        let now = sim.now();
        let (went_down, capacity) = {
            let mut inner = self.inner.borrow_mut();
            let cfg = inner.cfg.clone();
            let Some(track) = inner.nodes.get_mut(&node.0) else {
                return;
            };
            // A stale failure streak decays before counting the new one.
            if now.saturating_since(track.last_failure) > cfg.suspect_decay {
                track.failures = 0;
            }
            track.failures += 1;
            track.last_failure = now;
            let (state, failures) = (track.state, track.failures);
            let went_down = match state {
                NodeState::Healthy if failures >= cfg.suspect_after => {
                    inner.transition(now, node, NodeState::Suspect);
                    // Straight past Suspect when one burst clears both bars.
                    let t = inner.nodes.get_mut(&node.0).expect("tracked");
                    if t.failures >= cfg.down_after {
                        inner.transition(now, node, NodeState::Down);
                        true
                    } else {
                        false
                    }
                }
                NodeState::Suspect if failures >= cfg.down_after => {
                    inner.transition(now, node, NodeState::Down);
                    true
                }
                // A failure mid-drain sends the node straight back down:
                // its routes were never restored, so no failover to redo.
                NodeState::Draining => {
                    inner.transition(now, node, NodeState::Down);
                    false
                }
                _ => false,
            };
            (went_down, inner.capacity())
        };
        if went_down {
            let (down, cap) = {
                let inner = self.inner.borrow();
                (inner.on_down.clone(), inner.on_capacity.clone())
            };
            if let Some(h) = down {
                h(sim, node);
            }
            if let Some(h) = cap {
                h(sim, capacity);
            }
        }
    }

    /// Begins an **administrative** drain of `node` (fleet controller
    /// path: decommission or upgrade). A `Healthy`/`Suspect` node enters
    /// `Draining` under an administrative hold the probe loop never
    /// auto-completes — only [`HealthMonitor::end_drain`] returns the node
    /// to service. A node that is already `Down` (crashed) takes the hold
    /// without a transition: it is already out of service, and the hold
    /// keeps the probe's crash-recovery path from restoring routes
    /// underneath the controller. Fires the capacity handler (a draining
    /// node takes no traffic). Returns `false` for untracked nodes or when
    /// a hold is already in place.
    pub fn begin_drain(&self, sim: &mut Sim, node: NodeId) -> bool {
        let now = sim.now();
        let (ok, capacity, handler) = {
            let mut inner = self.inner.borrow_mut();
            let Some(track) = inner.nodes.get_mut(&node.0) else {
                return false;
            };
            if track.admin_hold {
                return false;
            }
            track.admin_hold = true;
            track.drain_until = SimTime::MAX;
            let state = track.state;
            if matches!(state, NodeState::Healthy | NodeState::Suspect) {
                inner.transition(now, node, NodeState::Draining);
            }
            (true, inner.capacity(), inner.on_capacity.clone())
        };
        if let Some(h) = handler {
            h(sim, capacity);
        }
        ok
    }

    /// Ends an administrative drain: releases the hold and, when the node
    /// is still `Draining`, returns it to `Healthy` (failure streak
    /// cleared) and fires the capacity handler. A node that crashed
    /// mid-drain stays `Down`/recovering under the normal probe path —
    /// releasing the hold lets that path complete as usual. Route
    /// restoration is the caller's job (the controller restores routes
    /// *before* releasing, so traffic and state flip together). Returns
    /// `true` when the node re-entered `Healthy` here.
    pub fn end_drain(&self, sim: &mut Sim, node: NodeId) -> bool {
        let now = sim.now();
        let (recovered, capacity, handler) = {
            let mut inner = self.inner.borrow_mut();
            let Some(track) = inner.nodes.get_mut(&node.0) else {
                return false;
            };
            track.admin_hold = false;
            if track.state != NodeState::Draining {
                return false;
            }
            inner.transition(now, node, NodeState::Healthy);
            let t = inner.nodes.get_mut(&node.0).expect("tracked");
            t.failures = 0;
            t.drain_until = SimTime::ZERO;
            (true, inner.capacity(), inner.on_capacity.clone())
        };
        if let Some(h) = handler {
            h(sim, capacity);
        }
        recovered
    }

    /// Whether `node` is under an administrative drain hold.
    pub fn admin_held(&self, node: NodeId) -> bool {
        self.inner
            .borrow()
            .nodes
            .get(&node.0)
            .is_some_and(|t| t.admin_hold)
    }

    /// Starts the recurring probe loop against `fabric`'s fault plane,
    /// running until `until`. Idempotent.
    pub fn start_probes(&self, sim: &mut Sim, fabric: Fabric, until: SimTime) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.probing {
                return;
            }
            inner.probing = true;
        }
        self.schedule_probe(sim, fabric, until);
    }

    fn schedule_probe(&self, sim: &mut Sim, fabric: Fabric, until: SimTime) {
        let interval = self.inner.borrow().cfg.probe_interval;
        let monitor = self.clone();
        sim.schedule_after(interval, move |sim| {
            monitor.probe_once(sim, &fabric);
            if sim.now() < until {
                monitor.schedule_probe(sim, fabric, until);
            } else {
                monitor.inner.borrow_mut().probing = false;
            }
        });
    }

    /// One probe pass: decay stale suspects, notice crashed nodes coming
    /// back up, and finish drains whose hold-down elapsed.
    pub fn probe_once(&self, sim: &mut Sim, fabric: &Fabric) {
        let now = sim.now();
        let mut recovered = Vec::new();
        let capacity = {
            let mut inner = self.inner.borrow_mut();
            let cfg = inner.cfg.clone();
            let ids: Vec<u16> = inner.nodes.keys().copied().collect();
            for id in ids {
                let node = NodeId(id);
                let track = *inner.nodes.get(&id).expect("tracked");
                match track.state {
                    NodeState::Suspect
                        if now.saturating_since(track.last_failure) >= cfg.suspect_decay =>
                    {
                        inner.transition(now, node, NodeState::Healthy);
                        inner.nodes.get_mut(&id).expect("tracked").failures = 0;
                    }
                    NodeState::Down => {
                        let up = !fabric.with_fault_plane(|fp| fp.in_outage(node, now));
                        if up {
                            inner.transition(now, node, NodeState::Draining);
                            inner.nodes.get_mut(&id).expect("tracked").drain_until =
                                now + cfg.drain;
                        }
                    }
                    // An administratively held drain never auto-completes:
                    // the fleet controller decides when the node returns.
                    NodeState::Draining if now >= track.drain_until && !track.admin_hold => {
                        inner.transition(now, node, NodeState::Healthy);
                        let t = inner.nodes.get_mut(&id).expect("tracked");
                        t.failures = 0;
                        recovered.push(node);
                    }
                    _ => {}
                }
            }
            inner.capacity()
        };
        if !recovered.is_empty() {
            let (rec, cap) = {
                let inner = self.inner.borrow();
                (inner.on_recovered.clone(), inner.on_capacity.clone())
            };
            for node in recovered {
                if let Some(h) = rec.as_ref() {
                    h(sim, node);
                }
            }
            if let Some(h) = cap {
                h(sim, capacity);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    fn monitor() -> HealthMonitor {
        HealthMonitor::new(
            HealthConfig {
                suspect_after: 1,
                down_after: 3,
                suspect_decay: SimDuration::from_millis(1),
                probe_interval: SimDuration::from_micros(100),
                drain: SimDuration::from_micros(500),
            },
            [NodeId(0), NodeId(1)],
        )
    }

    #[test]
    fn failures_walk_healthy_suspect_down_with_handler() {
        let m = monitor();
        let mut sim = Sim::new();
        let downs: Rc<RefCell<Vec<NodeId>>> = Rc::new(RefCell::new(Vec::new()));
        let d = downs.clone();
        m.set_down_handler(Rc::new(move |_sim, n| d.borrow_mut().push(n)));
        assert_eq!(m.state_of(NodeId(1)), Some(NodeState::Healthy));
        m.on_failure(&mut sim, NodeId(1));
        assert_eq!(m.state_of(NodeId(1)), Some(NodeState::Suspect));
        m.on_failure(&mut sim, NodeId(1));
        assert_eq!(m.state_of(NodeId(1)), Some(NodeState::Suspect));
        m.on_failure(&mut sim, NodeId(1));
        assert_eq!(m.state_of(NodeId(1)), Some(NodeState::Down));
        assert_eq!(downs.borrow().as_slice(), &[NodeId(1)]);
        // The other node is untouched; capacity halves.
        assert_eq!(m.state_of(NodeId(0)), Some(NodeState::Healthy));
        assert_eq!(m.healthy_fraction(), 0.5);
    }

    #[test]
    fn suspect_decays_back_to_healthy_without_failover() {
        let m = monitor();
        let mut sim = Sim::new();
        m.on_failure(&mut sim, NodeId(0));
        assert_eq!(m.state_of(NodeId(0)), Some(NodeState::Suspect));
        // A clean decay window passes; the probe clears the suspicion.
        let fabric = Fabric::new(rdma_sim::RdmaCosts::default());
        sim.run_until(t(2_000));
        m.probe_once(&mut sim, &fabric);
        assert_eq!(m.state_of(NodeId(0)), Some(NodeState::Healthy));
        // And the streak restarts from zero afterwards.
        m.on_failure(&mut sim, NodeId(0));
        m.on_failure(&mut sim, NodeId(0));
        assert_eq!(m.state_of(NodeId(0)), Some(NodeState::Suspect));
    }

    #[test]
    fn down_drains_then_recovers_via_probes() {
        let m = monitor();
        let mut sim = Sim::new();
        let fabric = Fabric::new(rdma_sim::RdmaCosts::default());
        let node = fabric.add_node();
        let node2 = fabric.add_node();
        assert_eq!((node, node2), (NodeId(0), NodeId(1)));
        // Crash window [0, 1ms): failures pile up, node goes down.
        fabric.schedule_node_outage(node, t(0), t(1_000));
        for _ in 0..3 {
            m.on_failure(&mut sim, node);
        }
        let recovered: Rc<RefCell<Vec<NodeId>>> = Rc::new(RefCell::new(Vec::new()));
        let r = recovered.clone();
        m.set_recovered_handler(Rc::new(move |_sim, n| r.borrow_mut().push(n)));
        m.start_probes(&mut sim, fabric.clone(), t(3_000));
        // While the outage lasts, the node stays down.
        sim.run_until(t(900));
        assert_eq!(m.state_of(node), Some(NodeState::Down));
        // Probe sees it up at ~1ms, drains 500us, recovers at ~1.5ms.
        sim.run_until(t(1_200));
        assert_eq!(m.state_of(node), Some(NodeState::Draining));
        assert!(recovered.borrow().is_empty(), "still draining");
        sim.run_until(t(3_100));
        assert_eq!(m.state_of(node), Some(NodeState::Healthy));
        assert_eq!(recovered.borrow().as_slice(), &[node]);
        assert_eq!(m.healthy_fraction(), 1.0);
    }

    #[test]
    fn failure_mid_drain_goes_straight_back_down() {
        let m = monitor();
        let mut sim = Sim::new();
        let fabric = Fabric::new(rdma_sim::RdmaCosts::default());
        let node = fabric.add_node();
        fabric.schedule_node_outage(node, t(0), t(100));
        for _ in 0..3 {
            m.on_failure(&mut sim, node);
        }
        sim.run_until(t(200));
        m.probe_once(&mut sim, &fabric);
        assert_eq!(m.state_of(node), Some(NodeState::Draining));
        m.on_failure(&mut sim, node);
        assert_eq!(m.state_of(node), Some(NodeState::Down));
    }

    #[test]
    fn capacity_handler_fires_on_loss_and_recovery() {
        let m = monitor();
        let mut sim = Sim::new();
        let caps: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
        let c = caps.clone();
        m.set_capacity_handler(Rc::new(move |_sim, f| c.borrow_mut().push(f)));
        let fabric = Fabric::new(rdma_sim::RdmaCosts::default());
        let node = fabric.add_node();
        fabric.schedule_node_outage(node, t(0), t(100));
        for _ in 0..3 {
            m.on_failure(&mut sim, node);
        }
        assert_eq!(caps.borrow().as_slice(), &[0.5]);
        sim.run_until(t(200));
        m.probe_once(&mut sim, &fabric); // Down → Draining
        sim.run_until(t(1_000));
        m.probe_once(&mut sim, &fabric); // Draining → Healthy
        assert_eq!(caps.borrow().as_slice(), &[0.5, 1.0]);
    }

    #[test]
    fn slo_pressure_discounts_capacity_and_fires_handler() {
        let m = monitor();
        let mut sim = Sim::new();
        let caps: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
        let c = caps.clone();
        m.set_capacity_handler(Rc::new(move |_sim, f| c.borrow_mut().push(f)));
        assert_eq!(m.healthy_fraction(), 1.0);
        m.set_slo_pressure(&mut sim, 0.5);
        assert_eq!(m.healthy_fraction(), 0.5, "pressure discounts capacity");
        m.set_slo_pressure(&mut sim, 0.5); // unchanged: no re-fire
        m.set_slo_pressure(&mut sim, 1.0); // alert cleared
        assert_eq!(caps.borrow().as_slice(), &[0.5, 1.0]);
        // Pressure composes with node loss.
        m.set_slo_pressure(&mut sim, 0.5);
        for _ in 0..3 {
            m.on_failure(&mut sim, NodeId(1));
        }
        assert_eq!(m.healthy_fraction(), 0.25, "half the nodes, half budget");
    }

    #[test]
    fn transitions_emit_health_event_spans_and_log() {
        let m = monitor();
        let mut sim = Sim::new();
        let tracer = obs::Tracer::enabled();
        m.set_tracer(tracer.clone());
        for _ in 0..3 {
            m.on_failure(&mut sim, NodeId(0));
        }
        let events = m.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].from, NodeState::Healthy);
        assert_eq!(events[0].to, NodeState::Suspect);
        assert_eq!(events[1].to, NodeState::Down);
        let spans = tracer
            .records()
            .iter()
            .filter(|r| r.stage == obs::Stage::HealthEvent)
            .count();
        assert_eq!(spans, 2);
    }
}
