//! Synthetic invocation traces and trace replay.
//!
//! Production serverless platforms see highly skewed, time-varying
//! invocation patterns (the Azure Functions trace analyses the paper's
//! related work cites). This module generates deterministic synthetic
//! traces with the two structural properties that matter for data-plane
//! evaluation — Zipf-skewed chain popularity and diurnal rate modulation —
//! and replays them against a cluster with per-chain latency accounting.

use runtime::ChainSpec;
use simcore::{Sim, SimDuration, SimRng};

use crate::cluster::Cluster;
use crate::workload::ClosedLoop;

/// One trace record: invoke `chain_idx` at `at` after replay start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    pub at_s: f64,
    pub chain_idx: usize,
}

obs::impl_to_json!(TraceEntry { at_s, chain_idx });

/// Parameters of the synthetic trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Mean aggregate arrival rate (requests per second).
    pub mean_rps: f64,
    /// Trace duration.
    pub duration: SimDuration,
    /// Number of chains to spread invocations over.
    pub chains: usize,
    /// Zipf skew across chains (0 = uniform; ~1 = production-like skew).
    pub zipf_s: f64,
    /// Apply a diurnal modulation (rate swings 0.4×–1.6× of the mean).
    pub diurnal: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            mean_rps: 5_000.0,
            duration: SimDuration::from_secs(1),
            chains: 3,
            zipf_s: 1.0,
            diurnal: true,
            seed: 1,
        }
    }
}

/// Generates a deterministic synthetic trace.
///
/// Arrivals form a non-homogeneous Poisson process (thinning against the
/// peak rate); each arrival picks a chain from a Zipf distribution.
pub fn generate(cfg: &TraceConfig) -> Vec<TraceEntry> {
    assert!(cfg.mean_rps > 0.0 && cfg.chains > 0);
    let mut rng = SimRng::new(cfg.seed);
    // Zipf weights over chains.
    let weights: Vec<f64> = (1..=cfg.chains)
        .map(|k| 1.0 / (k as f64).powf(cfg.zipf_s))
        .collect();
    let duration_s = cfg.duration.as_secs_f64();
    let peak = if cfg.diurnal {
        cfg.mean_rps * 1.6
    } else {
        cfg.mean_rps
    };
    let mut entries = Vec::new();
    let mut t = 0.0f64;
    loop {
        t += rng.exponential(1.0 / peak);
        if t >= duration_s {
            break;
        }
        if cfg.diurnal {
            // One full "day" over the trace: rate(t) in [0.4, 1.6] x mean.
            let phase = (t / duration_s) * std::f64::consts::TAU;
            let rate = cfg.mean_rps * (1.0 + 0.6 * phase.sin());
            if !rng.chance(rate / peak) {
                continue; // thinned out
            }
        }
        entries.push(TraceEntry {
            at_s: t,
            chain_idx: rng.weighted_index(&weights),
        });
    }
    entries
}

/// Per-chain replay outcome.
#[derive(Debug, Clone)]
pub struct ChainOutcome {
    pub chain: String,
    pub invocations: u64,
    pub completed: u64,
    pub mean_us: f64,
    pub p99_us: f64,
}

obs::impl_to_json!(ChainOutcome {
    chain,
    invocations,
    completed,
    mean_us,
    p99_us
});

/// Replays `trace` against chains already registered on `cluster`.
///
/// Each chain must have been registered with the matching driver's
/// completion callback (see [`replay`]'s body for the wiring); the helper
/// does all of that and returns per-chain outcomes once the simulation
/// drains.
pub fn replay(
    sim: &mut Sim,
    cluster: &Cluster,
    chains: &[ChainSpec],
    exec_cost: impl Fn(u16) -> SimDuration + Copy,
    trace: &[TraceEntry],
    payload: usize,
) -> Vec<ChainOutcome> {
    let epoch = sim.now();
    let mut drivers = Vec::new();
    for (idx, chain) in chains.iter().enumerate() {
        // Chains may share functions; as on a real platform each chain gets
        // its own function *instances*. Remap function ids per chain,
        // placing each instance on the same node as the original function.
        let base = 1_000 * (idx as u16 + 1);
        let remapped = ChainSpec::new(
            &chain.name,
            chain.tenant,
            chain.hops.iter().map(|&f| base + f).collect(),
        );
        for &f in &chain.functions() {
            let node = cluster
                .node_index_of(f)
                .unwrap_or_else(|| panic!("function {f} is not placed"));
            cluster.place(base + f, node);
        }
        // `stop_at = epoch` disables closed-loop re-issue: completions only
        // record; arrivals come exclusively from the trace schedule.
        let driver = ClosedLoop::new(epoch);
        let instance_exec = move |f: u16| exec_cost(f - base);
        cluster.register_chain(&remapped, instance_exec, driver.completion());
        // Install the issuer without starting any clients.
        driver.start(sim, cluster, &remapped, 0, payload);
        drivers.push(driver);
    }
    let mut invocations = vec![0u64; chains.len()];
    for e in trace {
        let Some(driver) = drivers.get(e.chain_idx) else {
            continue;
        };
        invocations[e.chain_idx] += 1;
        let d = driver.clone();
        sim.schedule_at(epoch + SimDuration::from_secs_f64(e.at_s), move |sim| {
            d.issue_one(sim);
        });
    }
    sim.run();
    drivers
        .iter()
        .zip(chains)
        .zip(invocations)
        .map(|((d, chain), inv)| {
            let lat = d.latency();
            ChainOutcome {
                chain: chain.name.clone(),
                invocations: inv,
                completed: d.completed(),
                mean_us: lat.mean().as_micros_f64(),
                p99_us: lat.percentile(99.0).as_micros_f64(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boutique;
    use crate::cluster::ClusterConfig;
    use membuf::tenant::TenantId;

    #[test]
    fn trace_is_deterministic_and_zipf_skewed() {
        let cfg = TraceConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b, "same seed, same trace");
        // Roughly the configured volume (diurnal modulation preserves mean).
        let n = a.len() as f64;
        assert!((3_500.0..=6_500.0).contains(&n), "arrivals = {n}");
        // Chain 0 dominates under Zipf skew.
        let counts = a.iter().fold(vec![0u32; 3], |mut c, e| {
            c[e.chain_idx] += 1;
            c
        });
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
        // Arrival times are sorted and within the duration.
        assert!(a.windows(2).all(|w| w[0].at_s <= w[1].at_s));
        assert!(a.last().unwrap().at_s < 1.0);
    }

    #[test]
    fn diurnal_rate_actually_varies() {
        let cfg = TraceConfig {
            mean_rps: 20_000.0,
            diurnal: true,
            ..TraceConfig::default()
        };
        let trace = generate(&cfg);
        // First half of the "day" (rising sine) sees more arrivals than
        // the second (falling below the mean).
        let first_half = trace.iter().filter(|e| e.at_s < 0.5).count();
        let second_half = trace.len() - first_half;
        assert!(
            first_half as f64 > 1.2 * second_half as f64,
            "{first_half} vs {second_half}"
        );
    }

    #[test]
    fn replay_completes_every_invocation() {
        let mut sim = Sim::new();
        let mut cluster = Cluster::new(&mut sim, ClusterConfig::default());
        let tenant = TenantId(1);
        cluster.add_tenant(&mut sim, tenant, 1).unwrap();
        for f in boutique::all_functions() {
            cluster.place(f, boutique::hotspot_placement(f));
        }
        let chains = vec![boutique::add_to_cart(tenant), boutique::serve_ads(tenant)];
        let cfg = TraceConfig {
            mean_rps: 2_000.0,
            duration: SimDuration::from_millis(200),
            chains: 2,
            zipf_s: 0.8,
            diurnal: false,
            seed: 9,
        };
        let trace = generate(&cfg);
        let outcomes = replay(
            &mut sim,
            &cluster,
            &chains,
            boutique::exec_cost,
            &trace,
            256,
        );
        let total: u64 = outcomes.iter().map(|o| o.completed).sum();
        assert_eq!(total as usize, trace.len(), "no invocation lost");
        for o in &outcomes {
            assert_eq!(o.completed, o.invocations);
            if o.completed > 0 {
                assert!(o.mean_us > 0.0 && o.p99_us >= o.mean_us * 0.5);
            }
        }
    }
}
