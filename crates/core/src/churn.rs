//! The elastic tenant-churn scale model.
//!
//! Swift's observation — and NADINO's §3.3 concern — is that in an
//! elastic multi-tenant cell the *control plane* of RDMA is what
//! collapses: RC establishment costs tens of milliseconds, so a cell
//! where tenants continuously arrive and depart pays that cost on the
//! request path exactly when a cold tenant gets its first call. This
//! module models that regime at populations the full-fidelity
//! [`crate::cluster::Cluster`] cannot hold (its tenant ids are on-wire
//! `u16`s and every tenant carries buffer pools and RQs):
//!
//! - a **real fabric** ([`rdma_sim::Fabric`]) carries the QP state, the
//!   pre-warm stock and the RNIC cache accounting, so cold connects,
//!   pre-warm claims and cache penalties are priced by the calibrated
//!   cost model rather than re-invented;
//! - tenants are **churn-level** entities keyed by `u32` (the engine's
//!   [`dne::connpool::ConnPool`] and [`dne::routing::ShardedTable`] are
//!   generic over the key exactly for this), one function per tenant,
//!   placed round-robin over the backend nodes;
//! - per-descriptor engine work is charged **analytically** (the fig06
//!   pipeline validated those constants) instead of being simulated
//!   descriptor-by-descriptor, which is what buys the 10^5–10^6 scale.
//!
//! The workload is the elastic-cell trinity: **Poisson** arrivals and
//! exponential lifetimes hold the population near its target, **Zipf**
//! popularity concentrates traffic on a hot head while the long tail
//! stays cold (the worst case for a QP cache), and a **diurnal**
//! modulation sweeps the offered load so the pool sees both growth and
//! drain phases. Every statistic folds into a byte-stable determinism
//! digest; the CI churn-smoke job asserts same-seed identity.
//!
//! At 10^6 tenants the model is **memory-bound**, not compute-bound:
//! each live tenant holds a route entry, a pool entry and two fabric QP
//! endpoints — on the order of a few hundred bytes each, several GiB in
//! total with allocator overhead — so the default sweep stops at 10^5
//! and documents the extrapolation instead of OOM-killing CI.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use dne::connpool::{ConnPool, ElasticConfig};
use dne::routing::ShardedTable;
use ingress::prewarm::{PrewarmConfig, PrewarmController};
use membuf::tenant::TenantId;
use rdma_sim::cost::RdmaCosts;
use rdma_sim::fabric::{CqId, QpHandle, RqId};
use rdma_sim::{Fabric, NodeId};
use simcore::{Histogram, Sim, SimDuration, SimRng, SimTime};

/// Per-message wire overhead added to the payload: descriptor + headers.
const WIRE_HEADER_BYTES: usize = 64;

/// Configuration of one churn cell.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Steady-state tenant population target (arrival rate is
    /// `tenants / mean_lifetime`, balancing expected departures).
    pub tenants: usize,
    /// Fabric nodes; node 0 is the gateway every request originates
    /// from, nodes `1..` host tenant functions round-robin.
    pub nodes: usize,
    /// Virtual time the cell runs.
    pub horizon: SimDuration,
    /// Root seed for every stochastic stream.
    pub seed: u64,
    /// Fabric cost model (connect/claim delays, cache penalties).
    pub costs: RdmaCosts,
    /// Mean tenant lifetime (exponentially distributed).
    pub mean_lifetime: SimDuration,
    /// Mean request rate per live tenant at diurnal midpoint, Hz.
    pub rate_per_tenant: f64,
    /// Zipf popularity exponent across live tenants (0 = uniform).
    pub zipf_s: f64,
    /// Request payload bytes.
    pub payload: usize,
    /// Pre-warm stock target per gateway→backend link; `0` disables
    /// pre-warming (every first contact is a cold connect).
    pub prewarm_target: usize,
    /// How often the background controller restocks the pre-warm pools.
    pub prewarm_interval: SimDuration,
    /// Elastic lifecycle config of the gateway's connection pool.
    pub elastic: ElasticConfig,
    /// How often the idle reaper / teardown sweep runs.
    pub reap_interval: SimDuration,
    /// Diurnal amplitude in `[0, 1)`: offered load swings between
    /// `1 - a` and `1 + a` times the base rate.
    pub diurnal_amplitude: f64,
    /// Diurnal period (compressed; real cells use 24 h).
    pub diurnal_period: SimDuration,
    /// Goodput SLO: a request counts as *good* iff its modeled latency
    /// is within this bound (a cold connect never is).
    pub slo: SimDuration,
    /// Hard cap on modeled requests (bounds event count at high
    /// populations; `0` = uncapped).
    pub max_requests: u64,
    /// Cold-start transient excluded from the steady-state metrics: at
    /// `t = 0` the whole initial population is connectionless, so the
    /// first contacts before any restock matures are cold by
    /// construction, not by control-plane failure.
    pub warmup: SimDuration,
    /// Number of equal windows the horizon is cut into for the
    /// per-window thrash series ([`ChurnWindow`]); `0` disables it.
    pub thrash_windows: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            tenants: 1_000,
            nodes: 4,
            horizon: SimDuration::from_millis(2_000),
            seed: 42,
            costs: RdmaCosts::default(),
            mean_lifetime: SimDuration::from_millis(800),
            rate_per_tenant: 25.0,
            zipf_s: 1.1,
            payload: 1024,
            prewarm_target: 8,
            prewarm_interval: SimDuration::from_millis(5),
            elastic: ElasticConfig {
                active_capacity: 128,
                idle_teardown_age: Some(SimDuration::from_millis(200)),
                adaptive: None,
            },
            reap_interval: SimDuration::from_millis(10),
            diurnal_amplitude: 0.4,
            diurnal_period: SimDuration::from_millis(1_000),
            slo: SimDuration::from_millis(1),
            max_requests: 200_000,
            warmup: SimDuration::from_millis(400),
            thrash_windows: 8,
        }
    }
}

/// One thrash window: the QP-churn counters (`qp_evictions_total` /
/// `qp_teardowns_total` and the pre-warm columns behind the PR 8
/// `qp_*` gauges) cut into an equal slice of the horizon, with rates
/// derived so the "thrash knee" — the population where LRU eviction
/// churn takes off — is visible as a series rather than one end-of-run
/// total. Integer columns fold into the cell digest; the rate columns
/// are derived.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnWindow {
    /// Window index, 0-based.
    pub index: usize,
    /// Window start, virtual ns.
    pub start_ns: u64,
    /// Window end, virtual ns.
    pub end_ns: u64,
    /// Requests modeled inside the window.
    pub requests: u64,
    /// First contacts that went cold inside the window.
    pub cold_connects: u64,
    /// First contacts served from pre-warm stock inside the window.
    pub prewarm_claims: u64,
    /// LRU evictions forced inside the window.
    pub evictions: u64,
    /// Idle-age teardowns inside the window.
    pub teardowns: u64,
    /// Evictions per virtual second.
    pub eviction_rate_per_s: f64,
    /// Teardowns per virtual second.
    pub teardown_rate_per_s: f64,
    /// Cold connects per virtual second.
    pub cold_rate_per_s: f64,
}

obs::impl_to_json!(ChurnWindow {
    index,
    start_ns,
    end_ns,
    requests,
    cold_connects,
    prewarm_claims,
    evictions,
    teardowns,
    eviction_rate_per_s,
    teardown_rate_per_s,
    cold_rate_per_s
});

/// The outcome of one churn cell, integer-dominated for digest
/// stability.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Population target the cell ran at.
    pub tenants: usize,
    /// Pre-warm stock target the cell ran with.
    pub prewarm_target: usize,
    /// Peak concurrently-live tenants observed.
    pub peak_alive: usize,
    /// Live tenants at the end of the run.
    pub final_alive: usize,
    /// Tenant arrivals (beyond the initial population).
    pub arrivals: u64,
    /// Tenant departures.
    pub departures: u64,
    /// Requests modeled.
    pub requests: u64,
    /// Requests within the SLO.
    pub good: u64,
    /// Good requests per virtual second.
    pub goodput_rps: f64,
    /// Median modeled request latency, µs.
    pub p50_us: f64,
    /// Tail modeled request latency, µs.
    pub p99_us: f64,
    /// First contacts that paid the full RC establishment delay.
    pub cold_connects: u64,
    /// First contacts satisfied from the pre-warm stock.
    pub prewarm_claims: u64,
    /// `prewarm_claims / (prewarm_claims + cold_connects)` over the whole
    /// run, cold-start burst included; 0 when no connection was set up.
    pub prewarm_hit_rate: f64,
    /// First contacts after the warmup cutoff that went cold.
    pub steady_cold_connects: u64,
    /// First contacts after the warmup cutoff served from stock.
    pub steady_prewarm_claims: u64,
    /// Pre-warm hit rate measured only after the warmup cutoff — the
    /// steady-state figure the elastic control plane is judged on.
    pub steady_hit_rate: f64,
    /// Median modeled latency after the warmup cutoff, µs.
    pub steady_p50_us: f64,
    /// Tail modeled latency after the warmup cutoff, µs.
    pub steady_p99_us: f64,
    /// Shadow-QP picker hits (chosen QP already active).
    pub pool_hits: u64,
    /// Shadow-QP picker misses (activation required).
    pub pool_misses: u64,
    /// LRU evictions forced by the bounded active set.
    pub evictions: u64,
    /// Connections destroyed by idle-age teardown.
    pub teardowns: u64,
    /// Peak simultaneously-active QPs at the gateway RNIC.
    pub peak_active_qps: usize,
    /// Pooled connections remaining at the end.
    pub pooled_final: usize,
    /// Per-window thrash series (empty when `thrash_windows == 0`).
    pub windows: Vec<ChurnWindow>,
    /// FNV-1a digest over every integer column, the per-window integer
    /// columns included — byte-identical across same-seed runs, the CI
    /// churn-smoke invariant.
    pub digest: u64,
}

obs::impl_to_json!(ChurnReport {
    tenants,
    prewarm_target,
    peak_alive,
    final_alive,
    arrivals,
    departures,
    requests,
    good,
    goodput_rps,
    p50_us,
    p99_us,
    cold_connects,
    prewarm_claims,
    prewarm_hit_rate,
    steady_cold_connects,
    steady_prewarm_claims,
    steady_hit_rate,
    steady_p50_us,
    steady_p99_us,
    pool_hits,
    pool_misses,
    evictions,
    teardowns,
    peak_active_qps,
    pooled_final,
    windows,
    digest
});

/// All churn traffic shares one fabric-level tenant: isolation between
/// churn tenants is modeled at the pool/routing layer (that is the
/// control plane under test), not at the RNIC protection domain.
const FABRIC_TENANT: TenantId = TenantId(0);

struct ChurnState {
    cfg: ChurnConfig,
    fabric: Fabric,
    /// Per-node `(CQ, shared RQ)` wiring, indexed by node id.
    wiring: Vec<(CqId, RqId)>,
    routing: ShardedTable<u32>,
    pool: ConnPool<u32>,
    /// Live tenants in sampling order (swap-removed on departure).
    alive: Vec<u32>,
    alive_pos: HashMap<u32, usize>,
    next_tenant: u32,
    rng: SimRng,
    /// 1-based prefix sums of `1/k^s` for Zipf inversion.
    harmonic: Vec<f64>,
    end: SimTime,
    // Counters.
    arrivals: u64,
    departures: u64,
    requests: u64,
    good: u64,
    cold_connects: u64,
    prewarm_claims: u64,
    steady_cold: u64,
    steady_claims: u64,
    warmup_end: SimTime,
    /// Per-backend-link restock controllers (index = node id); each
    /// sizes its next order to a floor plus the first-contact demand
    /// observed since the last tick.
    prewarm_ctl: Vec<PrewarmController>,
    peak_alive: usize,
    latency: Histogram,
    /// Latency of requests issued after the warmup cutoff only.
    steady_latency: Histogram,
    /// Closed thrash windows.
    windows: Vec<ChurnWindow>,
    /// Cumulative-counter snapshot at the last window boundary.
    win_mark: WinMark,
}

/// Cumulative-counter snapshot taken at a thrash-window boundary.
#[derive(Debug, Clone, Copy, Default)]
struct WinMark {
    at_ns: u64,
    requests: u64,
    cold: u64,
    claims: u64,
    evictions: u64,
    teardowns: u64,
}

impl ChurnState {
    fn gateway(&self) -> NodeId {
        NodeId(0)
    }

    fn diurnal(&self, now: SimTime) -> f64 {
        let t = now.as_secs_f64();
        let period = self.cfg.diurnal_period.as_secs_f64().max(1e-9);
        1.0 + self.cfg.diurnal_amplitude * (std::f64::consts::TAU * t / period).sin()
    }

    /// Samples a live tenant by Zipf rank over the current population.
    fn sample_tenant(&mut self) -> Option<u32> {
        let n = self.alive.len();
        if n == 0 {
            return None;
        }
        let n = n.min(self.harmonic.len() - 1);
        let u = self.rng.next_f64() * self.harmonic[n];
        // First rank whose prefix mass covers `u`.
        let rank =
            match self.harmonic[1..=n].binary_search_by(|h| h.partial_cmp(&u).expect("finite")) {
                Ok(i) => i,
                Err(i) => i.min(n - 1),
            };
        Some(self.alive[rank])
    }

    fn spawn_tenant(&mut self, initial: bool) -> u32 {
        let t = self.next_tenant;
        self.next_tenant += 1;
        // Round-robin placement over the backends: deterministic, and at
        // churn scale indistinguishable from a placement service.
        let backends = (self.cfg.nodes - 1) as u32;
        let home = NodeId(1 + (t % backends) as u16);
        self.routing.set(t, home);
        self.alive_pos.insert(t, self.alive.len());
        self.alive.push(t);
        self.peak_alive = self.peak_alive.max(self.alive.len());
        if !initial {
            self.arrivals += 1;
        }
        t
    }

    fn depart_tenant(&mut self, t: u32) {
        let Some(pos) = self.alive_pos.remove(&t) else {
            return; // Already departed.
        };
        self.alive.swap_remove(pos);
        if let Some(&moved) = self.alive.get(pos) {
            self.alive_pos.insert(moved, pos);
        }
        if let Some(home) = self.routing.remove(t) {
            let handles: Vec<QpHandle> = self.pool.remove_peer(&self.fabric, t, home);
            for h in handles {
                // Lazy teardown may already have destroyed it.
                let _ = self.fabric.destroy_qp(h);
            }
        }
        self.departures += 1;
    }

    /// Closes the thrash window ending at `now`: diffs the cumulative
    /// counters against the last boundary snapshot and derives rates.
    fn close_window(&mut self, now: SimTime) {
        let now_ns = now.as_nanos();
        let evictions = self.pool.evictions();
        let teardowns = self.pool.teardowns();
        let mark = self.win_mark;
        let dt_s = ((now_ns - mark.at_ns) as f64 / 1e9).max(1e-12);
        self.windows.push(ChurnWindow {
            index: self.windows.len(),
            start_ns: mark.at_ns,
            end_ns: now_ns,
            requests: self.requests - mark.requests,
            cold_connects: self.cold_connects - mark.cold,
            prewarm_claims: self.prewarm_claims - mark.claims,
            evictions: evictions - mark.evictions,
            teardowns: teardowns - mark.teardowns,
            eviction_rate_per_s: (evictions - mark.evictions) as f64 / dt_s,
            teardown_rate_per_s: (teardowns - mark.teardowns) as f64 / dt_s,
            cold_rate_per_s: (self.cold_connects - mark.cold) as f64 / dt_s,
        });
        self.win_mark = WinMark {
            at_ns: now_ns,
            requests: self.requests,
            cold: self.cold_connects,
            claims: self.prewarm_claims,
            evictions,
            teardowns,
        };
    }
}

fn schedule_departure(state: &Rc<RefCell<ChurnState>>, sim: &mut Sim, t: u32) {
    let life = {
        let mut s = state.borrow_mut();
        let mean = s.cfg.mean_lifetime.as_secs_f64();
        SimDuration::from_secs_f64(s.rng.exponential(mean))
    };
    let st = state.clone();
    sim.schedule_after(life, move |_sim| {
        st.borrow_mut().depart_tenant(t);
    });
}

fn schedule_next_arrival(state: &Rc<RefCell<ChurnState>>, sim: &mut Sim) {
    let (gap, end) = {
        let mut s = state.borrow_mut();
        let rate = s.cfg.tenants as f64 / s.cfg.mean_lifetime.as_secs_f64().max(1e-9);
        (
            SimDuration::from_secs_f64(s.rng.exponential(1.0 / rate)),
            s.end,
        )
    };
    if sim.now() + gap >= end {
        return;
    }
    let st = state.clone();
    sim.schedule_after(gap, move |sim| {
        let t = st.borrow_mut().spawn_tenant(false);
        schedule_departure(&st, sim, t);
        schedule_next_arrival(&st, sim);
    });
}

/// Models one request for tenant `t`: connection lookup (or first-contact
/// setup) plus the analytic delivery latency, priced against the live
/// RNIC cache occupancy.
fn model_request(s: &mut ChurnState, sim: &mut Sim, t: u32) {
    let now = sim.now();
    let Ok(home) = s.routing.resolve(t) else {
        return; // Departed between sampling and service.
    };
    let gw = s.gateway();
    let mut latency = s.cfg.costs.one_way(s.cfg.payload + WIRE_HEADER_BYTES)
        + s.cfg.costs.qp_cache_penalty(s.fabric.active_qp_count(gw));
    let picked = s
        .pool
        .pick_least_congested(&s.fabric, now, t, home)
        .is_some();
    if !picked {
        // First contact (or every pooled conn torn down): the elastic
        // control plane decides whether this costs microseconds or tens
        // of milliseconds.
        let (cq_g, rq_g) = s.wiring[0];
        let (cq_h, rq_h) = s.wiring[home.0 as usize];
        let claimed = s
            .fabric
            .claim_prewarmed(sim, FABRIC_TENANT, gw, cq_g, rq_g, home, cq_h, rq_h)
            .unwrap_or(None);
        s.prewarm_ctl[home.0 as usize].note_demand(1);
        let steady = now >= s.warmup_end;
        let pair = match claimed {
            Some(pair) => {
                s.prewarm_claims += 1;
                if steady {
                    s.steady_claims += 1;
                }
                latency += s.cfg.costs.prewarm_claim_delay;
                Some(pair)
            }
            None => match s
                .fabric
                .connect(sim, FABRIC_TENANT, gw, cq_g, rq_g, home, cq_h, rq_h)
            {
                Ok(pair) => {
                    s.cold_connects += 1;
                    if steady {
                        s.steady_cold += 1;
                    }
                    latency += s.cfg.costs.connect_delay;
                    Some(pair)
                }
                Err(_) => None,
            },
        };
        if let Some((ha, _hb)) = pair {
            s.pool.add(t, home, ha, now);
            // Activate it for this request so the RNIC cache sees it.
            s.pool.pick_least_congested(&s.fabric, now, t, home);
        }
    }
    s.requests += 1;
    s.latency.record(latency);
    if now >= s.warmup_end {
        s.steady_latency.record(latency);
    }
    if latency <= s.cfg.slo {
        s.good += 1;
    }
}

fn schedule_next_request(state: &Rc<RefCell<ChurnState>>, sim: &mut Sim) {
    let (gap, end, capped) = {
        let mut s = state.borrow_mut();
        let alive = s.alive.len();
        let capped = s.cfg.max_requests > 0 && s.requests >= s.cfg.max_requests;
        let gap = if alive == 0 {
            SimDuration::from_millis(1)
        } else {
            let rate = s.cfg.rate_per_tenant * alive as f64 * s.diurnal(sim.now());
            SimDuration::from_secs_f64(s.rng.exponential(1.0 / rate.max(1e-9)))
        };
        (gap, s.end, capped)
    };
    if capped || sim.now() + gap >= end {
        return;
    }
    let st = state.clone();
    sim.schedule_after(gap, move |sim| {
        let picked = st.borrow_mut().sample_tenant();
        if let Some(t) = picked {
            let mut s = st.borrow_mut();
            model_request(&mut s, sim, t);
        }
        schedule_next_request(&st, sim);
    });
}

fn schedule_prewarm_tick(state: &Rc<RefCell<ChurnState>>, sim: &mut Sim) {
    let (interval, end) = {
        let s = state.borrow();
        (s.cfg.prewarm_interval, s.end)
    };
    if state.borrow().cfg.prewarm_target == 0 || sim.now() + interval >= end {
        return;
    }
    let st = state.clone();
    sim.schedule_after(interval, move |sim| {
        {
            let mut s = st.borrow_mut();
            let gw = s.gateway();
            for n in 1..s.cfg.nodes as u16 {
                let peer = NodeId(n);
                let stock = s.fabric.prewarmed_available(gw, peer);
                // Demand-driven restock: the controller holds a buffer of
                // `prewarm_target` *plus* whatever the last window consumed,
                // so the order pipeline (QPs take `connect_delay` to mature)
                // keeps pace with the first-contact rate, not a static floor.
                let order = s.prewarm_ctl[n as usize].order(stock);
                if order > 0 {
                    let _ = s.fabric.prewarm_link(sim, gw, peer, order);
                }
            }
        }
        schedule_prewarm_tick(&st, sim);
    });
}

fn schedule_reap_tick(state: &Rc<RefCell<ChurnState>>, sim: &mut Sim) {
    let (interval, end) = {
        let s = state.borrow();
        (s.cfg.reap_interval, s.end)
    };
    if sim.now() + interval >= end {
        return;
    }
    let st = state.clone();
    sim.schedule_after(interval, move |sim| {
        {
            let mut s = st.borrow_mut();
            let fabric = s.fabric.clone();
            s.pool.deactivate_idle(&fabric, sim.now());
            s.pool.teardown_idle(&fabric, sim.now());
        }
        schedule_reap_tick(&st, sim);
    });
}

fn schedule_window_tick(state: &Rc<RefCell<ChurnState>>, sim: &mut Sim) {
    let (interval, end) = {
        let s = state.borrow();
        let n = s.cfg.thrash_windows;
        if n == 0 {
            return;
        }
        (
            SimDuration::from_nanos(s.cfg.horizon.as_nanos() / n as u64),
            s.end,
        )
    };
    if interval.as_nanos() == 0 || sim.now() + interval > end {
        return;
    }
    let st = state.clone();
    sim.schedule_after(interval, move |sim| {
        st.borrow_mut().close_window(sim.now());
        schedule_window_tick(&st, sim);
    });
}

/// FNV-1a over a byte stream.
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs one churn cell to completion.
pub fn run(cfg: ChurnConfig) -> ChurnReport {
    assert!(cfg.nodes >= 2, "need a gateway and at least one backend");
    assert!(cfg.nodes <= u16::MAX as usize, "fabric node ids are u16s");
    let mut sim = Sim::new();
    let fabric = Fabric::new(cfg.costs.clone());
    let mut wiring = Vec::with_capacity(cfg.nodes);
    for _ in 0..cfg.nodes {
        let node = fabric.add_node();
        let cq = fabric.create_cq(node).expect("fresh node");
        let rq = fabric.create_rq(node, FABRIC_TENANT).expect("fresh node");
        wiring.push((cq, rq));
    }
    // Zipf prefix sums, sized for the population plus churn headroom.
    let cap = cfg.tenants * 2 + 1024;
    let mut harmonic = Vec::with_capacity(cap + 1);
    harmonic.push(0.0);
    let mut acc = 0.0;
    for k in 1..=cap {
        acc += 1.0 / (k as f64).powf(cfg.zipf_s);
        harmonic.push(acc);
    }
    let end = SimTime::ZERO + cfg.horizon;
    let pool = ConnPool::with_config(cfg.elastic);
    let state = Rc::new(RefCell::new(ChurnState {
        routing: ShardedTable::new(),
        pool,
        alive: Vec::with_capacity(cfg.tenants * 2),
        alive_pos: HashMap::with_capacity(cfg.tenants * 2),
        next_tenant: 0,
        rng: SimRng::new(cfg.seed),
        harmonic,
        end,
        arrivals: 0,
        departures: 0,
        requests: 0,
        good: 0,
        cold_connects: 0,
        prewarm_claims: 0,
        steady_cold: 0,
        steady_claims: 0,
        warmup_end: SimTime::ZERO + cfg.warmup,
        prewarm_ctl: (0..cfg.nodes)
            .map(|_| {
                PrewarmController::new(PrewarmConfig {
                    target: cfg.prewarm_target,
                    max_order: 4_096,
                })
            })
            .collect(),
        steady_latency: Histogram::new(),
        peak_alive: 0,
        latency: Histogram::new(),
        windows: Vec::new(),
        win_mark: WinMark::default(),
        fabric: fabric.clone(),
        wiring,
        cfg,
    }));
    // Initial population, each with its own exponential lifetime.
    let initial: Vec<u32> = {
        let mut s = state.borrow_mut();
        let n = s.cfg.tenants;
        (0..n).map(|_| s.spawn_tenant(true)).collect()
    };
    for t in initial {
        schedule_departure(&state, &mut sim, t);
    }
    // Pre-stock the pre-warm pools so steady state starts warm.
    {
        let s = state.borrow();
        if s.cfg.prewarm_target > 0 {
            let gw = s.gateway();
            for n in 1..s.cfg.nodes as u16 {
                let _ = s
                    .fabric
                    .prewarm_link(&mut sim, gw, NodeId(n), s.cfg.prewarm_target);
            }
        }
    }
    schedule_next_arrival(&state, &mut sim);
    schedule_next_request(&state, &mut sim);
    schedule_prewarm_tick(&state, &mut sim);
    schedule_reap_tick(&state, &mut sim);
    schedule_window_tick(&state, &mut sim);
    sim.run();

    let s = state.borrow();
    let (pool_hits, pool_misses) = s.pool.hit_miss();
    let horizon_s = s.cfg.horizon.as_secs_f64();
    let warm_total = s.prewarm_claims + s.cold_connects;
    let steady_total = s.steady_claims + s.steady_cold;
    let peak_active = s.fabric.peak_active_qp_count(s.gateway());
    let ints: [u64; 16] = [
        s.cfg.tenants as u64,
        s.cfg.prewarm_target as u64,
        s.peak_alive as u64,
        s.alive.len() as u64,
        s.arrivals,
        s.departures,
        s.requests,
        s.good,
        s.cold_connects,
        s.prewarm_claims,
        s.steady_cold,
        s.steady_claims,
        pool_hits,
        pool_misses,
        s.pool.evictions(),
        s.pool.teardowns(),
    ];
    let win_ints = s.windows.iter().flat_map(|w| {
        [
            w.start_ns,
            w.end_ns,
            w.requests,
            w.cold_connects,
            w.prewarm_claims,
            w.evictions,
            w.teardowns,
        ]
    });
    let digest = fnv1a(
        ints.iter()
            .copied()
            .chain(win_ints)
            .flat_map(|v| v.to_le_bytes()),
    );
    ChurnReport {
        tenants: s.cfg.tenants,
        prewarm_target: s.cfg.prewarm_target,
        peak_alive: s.peak_alive,
        final_alive: s.alive.len(),
        arrivals: s.arrivals,
        departures: s.departures,
        requests: s.requests,
        good: s.good,
        goodput_rps: if horizon_s > 0.0 {
            s.good as f64 / horizon_s
        } else {
            0.0
        },
        p50_us: s.latency.percentile(50.0).as_micros_f64(),
        p99_us: s.latency.percentile(99.0).as_micros_f64(),
        cold_connects: s.cold_connects,
        prewarm_claims: s.prewarm_claims,
        prewarm_hit_rate: if warm_total > 0 {
            s.prewarm_claims as f64 / warm_total as f64
        } else {
            0.0
        },
        steady_cold_connects: s.steady_cold,
        steady_prewarm_claims: s.steady_claims,
        steady_hit_rate: if steady_total > 0 {
            s.steady_claims as f64 / steady_total as f64
        } else {
            0.0
        },
        steady_p50_us: s.steady_latency.percentile(50.0).as_secs_f64() * 1e6,
        steady_p99_us: s.steady_latency.percentile(99.0).as_secs_f64() * 1e6,
        pool_hits,
        pool_misses,
        evictions: s.pool.evictions(),
        teardowns: s.pool.teardowns(),
        peak_active_qps: peak_active,
        pooled_final: s.pool.pooled_total(),
        windows: s.windows.clone(),
        digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(seed: u64) -> ChurnConfig {
        ChurnConfig {
            tenants: 200,
            horizon: SimDuration::from_millis(300),
            mean_lifetime: SimDuration::from_millis(150),
            max_requests: 20_000,
            warmup: SimDuration::from_millis(75),
            seed,
            ..ChurnConfig::default()
        }
    }

    #[test]
    fn default_cell_steady_hit_rate_exceeds_90_pct() {
        // The acceptance bar for the elastic control plane: in the
        // default cell (10^3 tenants, demand-driven restock) better
        // than nine of ten steady-state first contacts come from the
        // pre-warm stock.
        let rep = run(ChurnConfig::default());
        assert!(
            rep.steady_prewarm_claims + rep.steady_cold_connects > 100,
            "steady window too thin to judge"
        );
        assert!(
            rep.steady_hit_rate > 0.9,
            "default-cell steady hit rate {} <= 0.9",
            rep.steady_hit_rate
        );
    }

    #[test]
    fn churn_cell_reaches_steady_state_and_is_deterministic() {
        let a = run(quick_cfg(7));
        assert!(a.requests > 1_000, "requests {}", a.requests);
        assert!(a.arrivals > 0 && a.departures > 0, "{a:?}");
        // Population hovers near target: peak within 2x.
        assert!(
            a.peak_alive >= 200 && a.peak_alive < 400,
            "{}",
            a.peak_alive
        );
        let b = run(quick_cfg(7));
        assert_eq!(a.digest, b.digest, "same seed, same cell");
        let c = run(quick_cfg(8));
        assert_ne!(a.digest, c.digest, "different seed, different cell");
    }

    #[test]
    fn prewarm_raises_hit_rate_and_goodput() {
        let warm = run(quick_cfg(3));
        let cold = run(ChurnConfig {
            prewarm_target: 0,
            ..quick_cfg(3)
        });
        assert!(
            warm.steady_hit_rate > 0.9,
            "steady-state pre-warm hit rate {} <= 0.9",
            warm.steady_hit_rate
        );
        assert!(
            warm.prewarm_hit_rate >= warm.steady_hit_rate * 0.5,
            "whole-run rate collapsed: {} vs steady {}",
            warm.prewarm_hit_rate,
            warm.steady_hit_rate
        );
        assert_eq!(cold.prewarm_claims, 0, "no stock, no claims");
        assert!(cold.cold_connects > 0);
        assert!(
            warm.steady_p99_us < cold.steady_p99_us,
            "warm steady p99 {} !< cold steady p99 {}",
            warm.steady_p99_us,
            cold.steady_p99_us
        );
        assert!(warm.goodput_rps >= cold.goodput_rps);
    }

    #[test]
    fn teardown_and_eviction_engage_under_churn() {
        let r = run(quick_cfg(11));
        assert!(r.teardowns > 0, "idle-age teardown never engaged");
        // Departures release their pooled connections; whatever remains
        // is bounded by the live population.
        assert!(r.pooled_final <= r.final_alive, "{r:?}");
    }

    #[test]
    fn thrash_windows_tile_the_horizon_and_sum_to_totals() {
        let r = run(quick_cfg(7));
        assert_eq!(r.windows.len(), ChurnConfig::default().thrash_windows);
        // Windows tile the horizon: contiguous, in order.
        for pair in r.windows.windows(2) {
            assert_eq!(pair[0].end_ns, pair[1].start_ns);
            assert_eq!(pair[0].index + 1, pair[1].index);
        }
        // Per-window deltas sum back to the run totals (the last window
        // boundary lands on the horizon, so nothing is lost).
        let evictions: u64 = r.windows.iter().map(|w| w.evictions).sum();
        let teardowns: u64 = r.windows.iter().map(|w| w.teardowns).sum();
        let cold: u64 = r.windows.iter().map(|w| w.cold_connects).sum();
        let claims: u64 = r.windows.iter().map(|w| w.prewarm_claims).sum();
        assert_eq!(evictions, r.evictions);
        assert_eq!(teardowns, r.teardowns);
        assert_eq!(cold, r.cold_connects);
        assert_eq!(claims, r.prewarm_claims);
        assert!(teardowns > 0, "teardown churn is visible per-window");
        // The series is digest-relevant: disabling it changes the digest
        // inputs but same-seed same-config reproduces byte-for-byte.
        let again = run(quick_cfg(7));
        assert_eq!(r.digest, again.digest);
        assert_eq!(r.windows, again.windows);
    }

    #[test]
    fn zipf_head_concentrates_picks() {
        let r = run(quick_cfg(5));
        // With s=1.1 the pool sees far more re-picks (hits+misses) than
        // first contacts: the head tenants dominate traffic.
        assert!(
            r.pool_hits + r.pool_misses > (r.cold_connects + r.prewarm_claims) * 3,
            "{r:?}"
        );
    }
}
