//! Cluster assembly: worker nodes with DPUs, tenants, chains.
//!
//! A [`Cluster`] wires the full NADINO stack on a simulated testbed: a
//! fabric with one RNIC per worker node, a [`dne::Dne`] per node (DPU or
//! CPU flavoured, per the configured [`DneConfig`]), host cores, per-node
//! per-tenant unified memory pools exported cross-processor via the DOCA
//! mmap handshake, the unified I/O library, and chain-aware function
//! endpoints.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use dne::types::DneConfig;
use dne::Dne;
use dpu_sim::mmap::{doca_mmap_create_from_export, doca_mmap_export_full};
use dpu_sim::soc::{Processor, ProcessorKind};
use membuf::pool::{BufferPool, PoolConfig};
use membuf::tenant::TenantId;
use rdma_sim::{Fabric, NodeId, RdmaCosts};
use runtime::function::{ChainFunction, CompletionFn};
use runtime::{ChainSpec, IoLib, Placement};
use simcore::{Sim, SimDuration, SimTime};

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub workers: usize,
    /// Host CPU cores per worker node.
    pub host_cores: usize,
    /// Network-engine configuration (same on every node).
    pub dne: DneConfig,
    /// Fabric cost model.
    pub rdma: RdmaCosts,
    /// Buffer size of each tenant pool.
    pub buf_size: usize,
    /// Buffers per tenant pool per node.
    pub pool_bufs: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 2,
            host_cores: 32,
            dne: DneConfig::nadino_dne(),
            rdma: RdmaCosts::default(),
            buf_size: 8 * 1024,
            pool_bufs: 2048,
        }
    }
}

/// One worker node's components.
pub struct NodeHandle {
    /// Fabric identity of the node's RNIC.
    pub id: NodeId,
    /// The node's network engine (DNE on the DPU or CNE on the CPU).
    pub dne: Dne,
    /// Host cores executing functions.
    pub cpu: Rc<RefCell<Processor>>,
    /// The node's unified I/O library.
    pub iolib: IoLib,
}

/// One routing rebalance: the functions switched off a failed node, plus
/// the ones stranded there (no healthy alternative — typed
/// `DestinationDown` until a target recovers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceOutcome {
    /// The node the routes moved away from.
    pub node: NodeId,
    /// Function ids re-pointed at healthy alternatives, sorted.
    pub switched: Vec<u16>,
    /// Function ids left with no healthy target, sorted.
    pub stranded: Vec<u16>,
}

/// A typed routing-plane event fed to the fleet controller (or any other
/// registered observer) on every failover/restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetRouteEvent {
    /// Routes moved off a down node; carries the stranded keys that used
    /// to be silently discarded.
    FailedOver(RebalanceOutcome),
    /// Displaced primaries restored onto a recovered node.
    Restored { node: NodeId, restored: Vec<u16> },
}

/// Observer invoked on every [`FleetRouteEvent`].
pub type FleetRouteObserver = Rc<dyn Fn(&FleetRouteEvent)>;

/// Cluster-wide observability state shared by the failure dispatcher,
/// completion hooks and the public dump API.
#[derive(Default)]
struct ObsHub {
    /// The cluster tracer (disabled until [`Cluster::set_tracer`]).
    tracer: obs::Tracer,
    /// Tail sampler + flight recorder + SLO monitor, when enabled.
    pipeline: Option<obs::TracePipeline>,
    /// The user's delivery-failure handler, invoked after the pipeline has
    /// taken its dump.
    user_failure: Option<dne::DeliveryFailureHandler>,
    /// The health monitor, when enabled: transport failures aimed at a
    /// node feed its state machine before the user handler runs.
    health: Option<crate::health::HealthMonitor>,
    /// Tenants in the burn-alert state at the last completion, so the
    /// SLO-pressure feed into the health monitor only fires on change.
    last_alerting: usize,
    /// Observer fed every routing rebalance (fleet controller).
    fleet_observer: Option<FleetRouteObserver>,
    /// The fleet lifecycle controller, when attached: its counters and
    /// per-node lifecycle states join [`Cluster::sample_obs`] as
    /// `fleet_*` gauges.
    fleet: Option<crate::fleetctl::FleetController>,
}

/// A fully wired NADINO cluster.
pub struct Cluster {
    /// The RDMA fabric connecting the nodes.
    pub fabric: Fabric,
    /// Worker nodes, indexed 0..workers.
    pub nodes: Vec<NodeHandle>,
    /// The shared placement map.
    pub placement: Rc<RefCell<Placement>>,
    cfg: ClusterConfig,
    pools: HashMap<(TenantId, usize), BufferPool>,
    /// Per-function `(primary node index, backup node index)` registered
    /// via [`Cluster::place_with_backup`].
    backups: HashMap<u16, (usize, usize)>,
    obs_hub: Rc<RefCell<ObsHub>>,
}

impl Cluster {
    /// Builds the cluster (nodes, engines, I/O libraries).
    pub fn new(sim: &mut Sim, cfg: ClusterConfig) -> Cluster {
        assert!(cfg.workers >= 1, "need at least one worker node");
        let fabric = Fabric::new(cfg.rdma.clone());
        let placement = Rc::new(RefCell::new(Placement::new()));
        let mut nodes = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            let id = fabric.add_node();
            let dne = Dne::new(fabric.clone(), id, cfg.dne.clone())
                .expect("node creation cannot fail on a fresh fabric");
            let cpu = Rc::new(RefCell::new(Processor::new(
                ProcessorKind::HostCpu,
                cfg.host_cores,
            )));
            let iolib = IoLib::new(id, dne.clone(), cpu.clone(), placement.clone());
            nodes.push(NodeHandle {
                id,
                dne,
                cpu,
                iolib,
            });
        }
        // Every engine reports failures through the hub dispatcher: the
        // trace pipeline (when enabled) records/dumps first, then the
        // user's handler runs.
        let obs_hub: Rc<RefCell<ObsHub>> = Rc::new(RefCell::new(ObsHub::default()));
        for node in &nodes {
            let hub = obs_hub.clone();
            let reporter = node.id;
            let fabric = fabric.clone();
            node.dne.set_failure_handler(Rc::new(move |sim, failure| {
                let (health, user) = {
                    let mut h = hub.borrow_mut();
                    if let Some(p) = h.pipeline.as_mut() {
                        p.on_failure(sim.now(), failure.req_id);
                    }
                    (h.health.clone(), h.user_failure.clone())
                };
                // Transport failures aimed at a node feed its health state;
                // deadline expiries say nothing about machine health, and a
                // reporter that is itself inside a crash window is not a
                // credible witness (its own outage fails its sends, which
                // would smear Suspect/Down onto healthy destinations).
                if let Some(hm) = health {
                    let reporter_down =
                        fabric.with_fault_plane(|fp| fp.in_outage(reporter, sim.now()));
                    if !reporter_down
                        && failure.reason != dne::types::FailureReason::DeadlineExceeded
                    {
                        if let Some(dst) = failure.dst_node {
                            hm.on_failure(sim, dst);
                        }
                    }
                }
                if let Some(u) = user {
                    u(sim, failure);
                }
            }));
        }
        // Nothing is scheduled yet; run to settle any setup events.
        sim.run_until(sim.now());
        Cluster {
            fabric,
            nodes,
            placement,
            cfg,
            pools: HashMap::new(),
            backups: HashMap::new(),
            obs_hub,
        }
    }

    /// Returns the cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Provisions a tenant: one unified memory pool per node (exported to
    /// the DPU and RNIC), registration with every engine, and a pool of RC
    /// connections between every pair of nodes. Advances the simulation
    /// past connection setup.
    pub fn add_tenant(
        &mut self,
        sim: &mut Sim,
        tenant: TenantId,
        weight: u32,
    ) -> Result<(), dne::engine::DneError> {
        for (idx, node) in self.nodes.iter().enumerate() {
            let mut pc = PoolConfig::new(tenant, 0, self.cfg.buf_size, self.cfg.pool_bufs);
            pc.segment_size = membuf::hugepage::HUGEPAGE_SIZE;
            let pool = BufferPool::new(pc).expect("validated pool geometry");
            // The three-step DOCA handshake: export on the host, ship the
            // descriptor, import on the DPU.
            let export = doca_mmap_export_full(&pool).expect("grants are non-empty");
            let mapped = doca_mmap_create_from_export(&export).expect("PCI grant present");
            node.dne.register_tenant(tenant, weight, &mapped)?;
            node.iolib.register_tenant_pool(tenant, pool.clone());
            self.pools.insert((tenant, idx), pool);
        }
        // Pre-establish connection pools between every node pair.
        for i in 0..self.nodes.len() {
            for j in (i + 1)..self.nodes.len() {
                Dne::connect_pair(
                    sim,
                    &self.nodes[i].dne,
                    &self.nodes[j].dne,
                    tenant,
                    self.cfg.dne.conns_per_peer,
                )?;
            }
        }
        // Let the RC connections come up (tens of milliseconds).
        sim.run_for(self.cfg.rdma.connect_delay + SimDuration::from_millis(1));
        Ok(())
    }

    /// Returns the tenant's pool on node `idx`.
    pub fn pool(&self, tenant: TenantId, idx: usize) -> &BufferPool {
        self.pools
            .get(&(tenant, idx))
            .expect("tenant provisioned on this node")
    }

    /// Returns the tenant's pool on node `idx` if provisioned.
    pub fn try_pool(&self, tenant: TenantId, idx: usize) -> Option<&BufferPool> {
        self.pools.get(&(tenant, idx))
    }

    /// Snapshot of every provisioned `(tenant, node index, pool)` triple.
    pub fn pools_snapshot(&self) -> Vec<(TenantId, usize, BufferPool)> {
        let mut v: Vec<_> = self
            .pools
            .iter()
            .map(|(&(t, i), p)| (t, i, p.clone()))
            .collect();
        v.sort_by_key(|&(t, i, _)| (t, i));
        v
    }

    /// Places a function on worker node `idx` and syncs all routing tables.
    pub fn place(&self, fn_id: u16, idx: usize) {
        let node = self.nodes[idx].id;
        self.placement.borrow_mut().place(fn_id, node);
        for n in &self.nodes {
            n.dne.set_route(fn_id, node);
        }
    }

    /// Places `fn_id` on `primary_idx` with a standby on `backup_idx`:
    /// every routing table learns both, and endpoint registration
    /// ([`Cluster::register_chain`] / [`Cluster::register_dag`]) installs
    /// the function on both nodes so failover needs no new deployment.
    pub fn place_with_backup(&mut self, fn_id: u16, primary_idx: usize, backup_idx: usize) {
        assert_ne!(primary_idx, backup_idx, "backup must be a different node");
        self.place(fn_id, primary_idx);
        let backup = self.nodes[backup_idx].id;
        for n in &self.nodes {
            n.dne.set_backup_route(fn_id, backup);
        }
        self.backups.insert(fn_id, (primary_idx, backup_idx));
    }

    /// Re-routes every function whose primary lives on node `idx` to its
    /// backup (routing tables and the placement map). Normally driven by
    /// the health monitor.
    ///
    /// Returns the full rebalance outcome: the switched function ids
    /// **and** the stranded ones (routed at the failed node with no
    /// healthy alternative — they resolve `DestinationDown` until a target
    /// recovers). Every engine's table is updated; the outcome is
    /// aggregated across all of them so no engine's result is dropped, and
    /// it is forwarded to the registered fleet observer (if any).
    pub fn fail_over_node(&self, idx: usize) -> RebalanceOutcome {
        let failed = self.nodes[idx].id;
        let mut switched = std::collections::BTreeSet::new();
        let mut stranded = std::collections::BTreeSet::new();
        for n in &self.nodes {
            switched.extend(n.dne.fail_over_node(failed));
            stranded.extend(n.dne.stranded_on(failed));
        }
        let outcome = RebalanceOutcome {
            node: failed,
            switched: switched.into_iter().collect(),
            stranded: stranded.into_iter().collect(),
        };
        let mut placement = self.placement.borrow_mut();
        for &f in &outcome.switched {
            if let Some(&(_, backup_idx)) = self.backups.get(&f) {
                placement.place(f, self.nodes[backup_idx].id);
            }
        }
        drop(placement);
        self.notify_fleet_observer(FleetRouteEvent::FailedOver(outcome.clone()));
        outcome
    }

    /// Restores functions displaced off node `idx` by a failover. Returns
    /// the restored function ids, aggregated across every engine's table.
    pub fn restore_node(&self, idx: usize) -> Vec<u16> {
        let node = self.nodes[idx].id;
        let mut restored = std::collections::BTreeSet::new();
        for n in &self.nodes {
            restored.extend(n.dne.restore_node(node));
        }
        let restored: Vec<u16> = restored.into_iter().collect();
        let mut placement = self.placement.borrow_mut();
        for &f in &restored {
            if let Some(&(primary_idx, _)) = self.backups.get(&f) {
                placement.place(f, self.nodes[primary_idx].id);
            }
        }
        drop(placement);
        self.notify_fleet_observer(FleetRouteEvent::Restored {
            node,
            restored: restored.clone(),
        });
        restored
    }

    /// Registers the observer fed every routing rebalance (failovers with
    /// their stranded keys, restores). The fleet controller installs
    /// itself here so stranded routes surface as typed events instead of
    /// being silently discarded.
    pub fn set_fleet_route_observer(&self, observer: FleetRouteObserver) {
        self.obs_hub.borrow_mut().fleet_observer = Some(observer);
    }

    fn notify_fleet_observer(&self, event: FleetRouteEvent) {
        let observer = self.obs_hub.borrow().fleet_observer.clone();
        if let Some(obs) = observer {
            obs(&event);
        }
    }

    /// Switches node `idx`'s engine to CTX wire `version` and announces
    /// the new version to every engine in the cluster (the control-plane
    /// half of version negotiation: peers stamp toward this node at
    /// `min(own, announced)` from the next send on).
    pub fn set_node_wire_version(&self, idx: usize, version: u8) {
        let node = self.nodes[idx].id;
        self.nodes[idx].dne.set_wire_version(version);
        for n in &self.nodes {
            n.dne.set_peer_wire_version(node, version);
        }
    }

    /// Work node `idx`'s engine still owes: queued TX, pending CQEs,
    /// worker items, posted sends and parked retries. The fleet
    /// controller's drain loop polls this toward zero.
    pub fn in_flight_on(&self, idx: usize) -> usize {
        self.nodes[idx].dne.inflight_total()
    }

    /// Returns the node index hosting `fn_id`.
    pub fn node_index_of(&self, fn_id: u16) -> Option<usize> {
        let node = self.placement.borrow().node_of(fn_id)?;
        self.nodes.iter().position(|n| n.id == node)
    }

    /// Registers chain-aware endpoints for every distinct function of
    /// `chain`, using `exec_cost` to price each function's logic. Functions
    /// must already be placed.
    pub fn register_chain(
        &self,
        chain: &ChainSpec,
        exec_cost: impl Fn(u16) -> SimDuration,
        on_complete: CompletionFn,
    ) {
        let on_complete = self.hook_completion(on_complete);
        let chain = Rc::new(chain.clone());
        for f in chain.functions() {
            let idx = self
                .node_index_of(f)
                .unwrap_or_else(|| panic!("function {f} is not placed"));
            for idx in self.deploy_indices(f, idx) {
                let node = &self.nodes[idx];
                let pool = self.pool(chain.tenant, idx).clone();
                let ep = ChainFunction::endpoint(
                    chain.clone(),
                    exec_cost(f),
                    pool,
                    node.cpu.clone(),
                    node.iolib.clone(),
                    on_complete.clone(),
                );
                node.iolib.register_function(f, chain.tenant, ep);
            }
        }
    }

    /// The node indices a function is deployed on: its placement plus any
    /// standby registered via [`Cluster::place_with_backup`].
    fn deploy_indices(&self, fn_id: u16, placed_idx: usize) -> Vec<usize> {
        let mut idxs = vec![placed_idx];
        if let Some(&(primary_idx, backup_idx)) = self.backups.get(&fn_id) {
            for extra in [primary_idx, backup_idx] {
                if !idxs.contains(&extra) {
                    idxs.push(extra);
                }
            }
        }
        idxs
    }

    /// Registers DAG-aware endpoints for every function of `dag` (the
    /// paper's fan-out/fan-in dataflow layered on the same primitives).
    pub fn register_dag(
        &self,
        dag: &runtime::DagSpec,
        exec_cost: impl Fn(u16) -> SimDuration,
        on_complete: CompletionFn,
    ) {
        let on_complete = self.hook_completion(on_complete);
        let dag = Rc::new(dag.clone());
        for f in dag.functions() {
            let idx = self
                .node_index_of(f)
                .unwrap_or_else(|| panic!("function {f} is not placed"));
            for idx in self.deploy_indices(f, idx) {
                let node = &self.nodes[idx];
                let pool = self.pool(dag.tenant, idx).clone();
                let ep = runtime::DagFunction::endpoint(
                    dag.clone(),
                    f,
                    exec_cost(f),
                    pool,
                    node.cpu.clone(),
                    node.iolib.clone(),
                    on_complete.clone(),
                );
                node.iolib.register_function(f, dag.tenant, ep);
            }
        }
    }

    /// Wraps a user completion so the trace pipeline (when enabled) drains
    /// each finished trace before the user callback observes it.
    fn hook_completion(&self, on_complete: CompletionFn) -> CompletionFn {
        let hub = self.obs_hub.clone();
        Rc::new(move |sim, req| {
            let pressure_update = {
                let mut h = hub.borrow_mut();
                let mut update = None;
                if let Some(p) = h.pipeline.as_mut() {
                    // An SLO burn-alert rising edge takes its dump here;
                    // retrievable via last_dump() after the run.
                    p.on_complete(sim.now(), req);
                    let alerting = p.alerting_tenants().len();
                    if alerting != h.last_alerting {
                        h.last_alerting = alerting;
                        // Each alerting tenant discounts effective
                        // capacity a notch (floored), so ingress sheds
                        // before the whole error budget is gone.
                        let pressure = (1.0 - 0.1 * alerting as f64).max(0.5);
                        update = h.health.clone().map(|hm| (hm, pressure));
                    }
                } else {
                    // No pipeline draining traces: still retire the
                    // request's causal cursors so the per-ring maps track
                    // in-flight requests, not every request ever seen.
                    h.tracer.retire(req);
                }
                update
            };
            if let Some((hm, pressure)) = pressure_update {
                hm.set_slo_pressure(sim, pressure);
            }
            on_complete(sim, req);
        })
    }

    /// Injects one request into a DAG's root function.
    pub fn inject_dag(&self, sim: &mut Sim, dag: &runtime::DagSpec, req_id: u64) -> bool {
        let Some(idx) = self.node_index_of(dag.root) else {
            return false;
        };
        let pool = self.pool(dag.tenant, idx);
        let Ok(mut buf) = pool.get() else {
            return false;
        };
        let mut payload = runtime::encode_request_payload(req_id, 64);
        runtime::dag::set_dag_header(
            &mut payload,
            runtime::dag::DagMsg::Call,
            runtime::dag::CLIENT_CALLER,
        );
        let sampled = self.stamp_root_ctx(&mut payload, req_id, idx);
        if buf.write_payload(&payload).is_err() {
            return false;
        }
        self.nodes[idx].iolib.send_traced(
            sim,
            dag.tenant,
            buf.into_desc(dag.root),
            Some((req_id, sampled)),
        );
        true
    }

    /// Roots a trace at injection: applies the ingress sampling decision
    /// (direct injection is its own ingress when no gateway made the call),
    /// adopts any gateway-side cursor (the ingress records its spans under
    /// a synthetic node id, linked when it forwards the same request id)
    /// and stamps the initial on-wire context into the payload. An
    /// unsampled request leaves the payload's ctx flags at zero, so every
    /// downstream component skips its span sites on that one bit.
    /// Returns the sampling decision so injectors can pass it along with
    /// the descriptor instead of re-peeking the payload downstream.
    fn stamp_root_ctx(&self, payload: &mut [u8], req_id: u64, entry_idx: usize) -> bool {
        let hub = self.obs_hub.borrow();
        if !hub.tracer.decide_sample(req_id) {
            return false;
        }
        let entry_node = self.nodes[entry_idx].id.0 as u32;
        let gw = hub.tracer.cursor(req_id, ingress::gateway::GATEWAY_NODE);
        hub.tracer.adopt_parent(req_id, entry_node, gw);
        obs::ctx::write_ctx(payload, gw, true);
        true
    }

    /// Injects one request into a chain: writes the payload into the entry
    /// node's pool and delivers the descriptor to the entry function.
    ///
    /// Returns `false` when the entry pool is exhausted (the request is
    /// shed, as a real admission controller would).
    pub fn inject(
        &self,
        sim: &mut Sim,
        chain: &ChainSpec,
        req_id: u64,
        payload_len: usize,
    ) -> bool {
        self.inject_inner(sim, chain, req_id, payload_len, 0)
    }

    /// Like [`Cluster::inject`], but stamps an absolute `deadline` into the
    /// on-wire context: every downstream stage (engine send/retry paths,
    /// function dispatch) cancels the request once it expires, surfacing a
    /// typed `DeadlineExceeded` failure instead of wasted work.
    pub fn inject_with_deadline(
        &self,
        sim: &mut Sim,
        chain: &ChainSpec,
        req_id: u64,
        payload_len: usize,
        deadline: SimTime,
    ) -> bool {
        self.inject_inner(sim, chain, req_id, payload_len, deadline.as_nanos())
    }

    fn inject_inner(
        &self,
        sim: &mut Sim,
        chain: &ChainSpec,
        req_id: u64,
        payload_len: usize,
        deadline_ns: u64,
    ) -> bool {
        let entry = chain.entry();
        let Some(idx) = self.node_index_of(entry) else {
            return false;
        };
        let pool = self.pool(chain.tenant, idx);
        let Ok(mut buf) = pool.get() else {
            return false;
        };
        // Payloads are sized to carry the on-wire trace context (24 bytes,
        // deadline included) even when the caller asked for less.
        let mut payload = runtime::encode_request_payload(req_id, payload_len.max(obs::CTX_REGION));
        runtime::set_hop(&mut payload, 0);
        if deadline_ns != 0 {
            obs::write_deadline_ns(&mut payload, deadline_ns);
        }
        let sampled = self.stamp_root_ctx(&mut payload, req_id, idx);
        if buf.write_payload(&payload).is_err() {
            return false;
        }
        self.nodes[idx].iolib.send_traced(
            sim,
            chain.tenant,
            buf.into_desc(entry),
            Some((req_id, sampled)),
        );
        true
    }

    /// Installs `tracer` on every node's I/O library and network engine
    /// plus the fabric, so one tracer sees a request's spans — including
    /// fault-plane annotations — across the whole cluster.
    ///
    /// Call before [`Cluster::enable_trace_pipeline`] so the pipeline
    /// drains the same tracer.
    pub fn set_tracer(&self, tracer: &obs::Tracer) {
        for n in &self.nodes {
            n.iolib.set_tracer(tracer.clone());
        }
        self.fabric.set_tracer(tracer.clone());
        self.obs_hub.borrow_mut().tracer = tracer.clone();
    }

    /// Returns a handle to the installed tracer (disabled by default).
    /// Load drivers use it to make the ingress sampling decision when they
    /// inject requests directly, without a gateway in front.
    pub fn tracer(&self) -> obs::Tracer {
        self.obs_hub.borrow().tracer.clone()
    }

    /// Enables the trace pipeline: completed traces drain through the
    /// tail sampler, flight recorder and (optional) per-tenant SLO burn
    /// monitor; a typed `DeliveryFailure` or an SLO burn freezes a dump.
    pub fn enable_trace_pipeline(&self, cfg: obs::PipelineConfig) {
        let mut hub = self.obs_hub.borrow_mut();
        let tracer = hub.tracer.clone();
        hub.pipeline = Some(obs::TracePipeline::new(tracer, cfg));
    }

    /// Runs `f` against the trace pipeline, when one is enabled.
    pub fn with_trace_pipeline<R>(
        &self,
        f: impl FnOnce(&mut obs::TracePipeline) -> R,
    ) -> Option<R> {
        self.obs_hub.borrow_mut().pipeline.as_mut().map(f)
    }

    /// Takes an explicit flight-recorder dump: the current ring of recent
    /// traces, SLO counters and metric deltas as one self-contained JSON
    /// bundle. Returns `None` when no pipeline is enabled.
    pub fn dump_flight_recorder(&self, sim: &Sim) -> Option<obs::JsonValue> {
        self.obs_hub
            .borrow_mut()
            .pipeline
            .as_mut()
            .map(|p| p.trigger(obs::TriggerReason::Explicit, sim.now()).clone())
    }

    /// Enables node health tracking and automatic failover: transport
    /// `DeliveryFailure`s aimed at a node walk its state machine
    /// (`Healthy → Suspect → Down → Draining → Healthy`), entering `Down`
    /// fails every backed-up function over ([`Cluster::fail_over_node`]),
    /// and recovery (driven by fault-plane probes until `until`) restores
    /// them after the drain hold-down.
    ///
    /// Call after every [`Cluster::place_with_backup`], and wire the
    /// returned monitor's capacity handler to the gateway's admission
    /// controller if one is running.
    pub fn enable_health_monitor(
        self: &Rc<Self>,
        sim: &mut Sim,
        cfg: crate::health::HealthConfig,
        until: SimTime,
    ) -> crate::health::HealthMonitor {
        let monitor = crate::health::HealthMonitor::new(cfg, self.nodes.iter().map(|n| n.id));
        monitor.set_tracer(self.obs_hub.borrow().tracer.clone());
        let cluster = Rc::clone(self);
        monitor.set_down_handler(Rc::new(move |_sim, node| {
            if let Some(idx) = cluster.nodes.iter().position(|n| n.id == node) {
                cluster.fail_over_node(idx);
            }
        }));
        let cluster = Rc::clone(self);
        monitor.set_recovered_handler(Rc::new(move |_sim, node| {
            if let Some(idx) = cluster.nodes.iter().position(|n| n.id == node) {
                cluster.restore_node(idx);
            }
        }));
        self.obs_hub.borrow_mut().health = Some(monitor.clone());
        monitor.start_probes(sim, self.fabric.clone(), until);
        monitor
    }

    /// Attaches the fleet lifecycle controller so its lifecycle states and
    /// counters are emitted as `fleet_*` gauges on every
    /// [`Cluster::sample_obs`] pass.
    pub fn attach_fleet(&self, controller: crate::fleetctl::FleetController) {
        self.obs_hub.borrow_mut().fleet = Some(controller);
    }

    /// Installs `handler` on the cluster failure dispatcher, so a delivery
    /// the DNE gave up on (retry budget exhausted, no reconnectable route)
    /// reaches one place — typically the ingress, which answers the client
    /// with a `503` instead of leaving the request hanging. When the trace
    /// pipeline is enabled it records the failure (and takes its dump)
    /// before the handler runs.
    pub fn set_delivery_failure_handler(&self, handler: dne::DeliveryFailureHandler) {
        self.obs_hub.borrow_mut().user_failure = Some(handler);
    }

    /// Samples the cluster's observability signals into `reg` at virtual
    /// time `now`: per-tenant TX queue depth, DWRR deficit and shadow-QP
    /// hit rate as labelled series, plus per-node engine gauges and RBR
    /// counters. Call periodically (see [`Cluster::start_obs_sampler`]);
    /// `window` should equal the sampling cadence so each tick finalizes
    /// the previous series point.
    pub fn sample_obs(&self, now: SimTime, reg: &obs::MetricsRegistry, window: SimDuration) {
        // TimeSeries aggregates to a per-second rate; scale each sampled
        // level by the window so the stored points keep level semantics.
        let w_s = window.as_secs_f64();
        // Open a sampling epoch: any gauge not written during this pass
        // (e.g. a ratio whose denominator stayed zero) reads as stale in
        // snapshots instead of silently holding its old value.
        reg.begin_sample();
        {
            let mut hub = self.obs_hub.borrow_mut();
            if let Some(p) = hub.pipeline.as_mut() {
                // One burn-rate series point per tenant per window.
                p.sample_burn(now);
            }
            if hub.tracer.is_enabled() {
                reg.gauge("tracer_spans_dropped", &[])
                    .set(hub.tracer.dropped() as f64);
                reg.gauge("tracer_ring_flushes", &[])
                    .set(hub.tracer.ring_flushes() as f64);
                reg.gauge("tracer_flush_ns", &[])
                    .set(hub.tracer.flush_wall_ns() as f64);
            }
            if let Some(h) = hub.health.as_ref() {
                reg.gauge("cluster_capacity_factor", &[])
                    .set(h.healthy_fraction());
                for (node, state) in h.states() {
                    let label = node.0.to_string();
                    reg.gauge("node_health_state", &[("node", label.as_str())])
                        .set(state.as_gauge());
                }
            }
            if let Some(fc) = hub.fleet.as_ref() {
                let c = fc.counters();
                reg.gauge("fleet_upgrades_total", &[])
                    .set(c.upgrades_completed as f64);
                reg.gauge("fleet_waves_total", &[])
                    .set(c.waves_completed as f64);
                reg.gauge("fleet_rebalances_total", &[])
                    .set(c.rebalances as f64);
                reg.gauge("fleet_stranded_routes_total", &[])
                    .set(c.stranded_routes as f64);
                reg.gauge("fleet_drain_deadline_exceeded_total", &[])
                    .set(c.drain_deadline_exceeded as f64);
                reg.gauge("fleet_decommissions_total", &[])
                    .set(c.decommissions as f64);
                reg.gauge("fleet_provisions_total", &[])
                    .set(c.provisions as f64);
                reg.gauge("fleet_wave_active", &[])
                    .set(if fc.wave_active() { 1.0 } else { 0.0 });
                let counts = fc.lifecycle_counts();
                reg.gauge("fleet_nodes_in_service", &[])
                    .set(counts.in_service as f64);
                reg.gauge("fleet_nodes_draining", &[])
                    .set(counts.draining as f64);
                reg.gauge("fleet_nodes_upgrading", &[])
                    .set(counts.upgrading as f64);
                reg.gauge("fleet_nodes_decommissioned", &[])
                    .set(counts.decommissioned as f64);
                for (idx, node) in self.nodes.iter().enumerate() {
                    let label = idx.to_string();
                    reg.gauge("fleet_node_wire_version", &[("node", label.as_str())])
                        .set(node.dne.wire_version() as f64);
                }
            }
        }
        for (idx, node) in self.nodes.iter().enumerate() {
            let node_label = idx.to_string();
            let nl = [("node", node_label.as_str())];
            let stats = node.dne.stats();
            reg.gauge("dne_engine_queued", &nl)
                .set(node.dne.queued() as f64);
            reg.gauge("dne_tx_posted_total", &nl)
                .set(stats.tx_posted as f64);
            reg.gauge("dne_rx_delivered_total", &nl)
                .set(stats.rx_delivered as f64);
            reg.gauge("dne_drops_total", &nl).set(stats.drops as f64);
            reg.gauge("dne_retries_total", &nl)
                .set(stats.retries as f64);
            reg.gauge("dne_failovers_total", &nl)
                .set(stats.failovers as f64);
            reg.gauge("dne_reconnects_total", &nl)
                .set(stats.reconnects as f64);
            reg.gauge("dne_give_ups_total", &nl)
                .set(stats.give_ups as f64);
            if stats.retry_latency.count() > 0 {
                reg.gauge("dne_retry_latency_mean_us", &nl)
                    .set(stats.retry_latency.mean().as_micros_f64());
                reg.gauge("dne_retry_latency_p99_us", &nl)
                    .set(stats.retry_latency.percentile(99.0).as_micros_f64());
            }
            reg.gauge("rbr_replenishes_total", &nl)
                .set(stats.replenishes as f64);
            reg.gauge("rbr_replenish_failures_total", &nl)
                .set(stats.replenish_failures as f64);
            reg.gauge("qp_cache_deactivations_total", &nl)
                .set(node.dne.conn_deactivations() as f64);
            reg.gauge("rnic_active_qps", &nl)
                .set(self.fabric.active_qp_count(node.id) as f64);
            // Elastic control-plane thrash signals: cold RC establishments
            // vs pre-warm claims on the reconnect path, LRU evictions from
            // the bounded active set, and the pool-wide pre-warm hit rate.
            reg.gauge("qp_cold_connects_total", &nl)
                .set(stats.cold_connects as f64);
            reg.gauge("qp_prewarm_claims_total", &nl)
                .set(stats.prewarm_claims as f64);
            reg.gauge("qp_evictions_total", &nl)
                .set(node.dne.conn_evictions() as f64);
            reg.gauge("qp_teardowns_total", &nl)
                .set(node.dne.conn_teardowns() as f64);
            reg.gauge("qp_adaptive_shrinks_total", &nl)
                .set(node.dne.conn_adaptive_shrinks() as f64);
            reg.gauge("qp_prewarm_hit_rate", &nl).set_ratio(
                stats.prewarm_claims,
                stats.prewarm_claims + stats.cold_connects,
            );
            for t in node.dne.tenant_ids() {
                let tenant_label = t.0.to_string();
                let labels = [
                    ("node", node_label.as_str()),
                    ("tenant", tenant_label.as_str()),
                ];
                reg.series("dne_tx_queue_depth", &labels, window)
                    .record_at(now, node.dne.tenant_backlog(t) as f64 * w_s);
                if let Some(d) = node.dne.dwrr_deficit(t) {
                    reg.series("dne_dwrr_deficit", &labels, window)
                        .record_at(now, d * w_s);
                }
                let (h, m) = node.dne.conn_hit_miss_of(t);
                if h + m > 0 {
                    reg.series("shadow_qp_hit_rate", &labels, window)
                        .record_at(now, h as f64 / (h + m) as f64 * w_s);
                }
            }
        }
    }

    /// Schedules a recurring [`Cluster::sample_obs`] every `every` until
    /// `until`; the series build up inside `reg` as the simulation runs.
    pub fn start_obs_sampler(
        self: &Rc<Self>,
        sim: &mut Sim,
        reg: Rc<obs::MetricsRegistry>,
        every: SimDuration,
        until: SimTime,
    ) {
        let cluster = Rc::clone(self);
        sim.schedule_after(every, move |sim| {
            cluster.sample_obs(sim.now(), &reg, every);
            // Engine self-observation: how fast the simulator itself is
            // chewing through events (wall clock, not virtual time).
            let p = sim.profile();
            reg.gauge("sim_events_per_sec", &[]).set(p.events_per_sec());
            reg.gauge("sim_executed_events_total", &[])
                .set(p.executed_events as f64);
            reg.gauge("sim_pending_events", &[])
                .set(p.pending_events as f64);
            if sim.now() < until {
                Cluster::start_obs_sampler(&cluster, sim, reg, every, until);
            }
        });
    }

    /// Schedules a recurring out-of-band flush of the tracer's hot span
    /// rings into its cold per-trace staging tier, every `every` until
    /// `until`. The flush runs as an ordinary (low-priority) simulation
    /// timer, off the request path: data-plane span sites only ever write
    /// to the rings, and the causal-tree / critical-path / flight-recorder
    /// machinery consumes staged spans at its leisure. A no-op on a
    /// disabled tracer.
    pub fn start_trace_flusher(&self, sim: &mut Sim, every: SimDuration, until: SimTime) {
        let tracer = self.obs_hub.borrow().tracer.clone();
        if !tracer.is_enabled() {
            return;
        }
        fn tick(tracer: obs::Tracer, sim: &mut Sim, every: SimDuration, until: SimTime) {
            sim.schedule_after(every, move |sim| {
                tracer.flush_closed();
                if sim.now() < until {
                    tick(tracer, sim, every, until);
                }
            });
        }
        tick(tracer, sim, every, until);
    }

    /// Sum of network-engine core utilization across nodes over `[a, b]`
    /// (the paper's "DPU utilization" for DNE runs, "CPU" for CNE).
    pub fn engine_utilization(&self, a: SimTime, b: SimTime) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.dne.utilization_cores(a, b))
            .sum()
    }

    /// Sum of host-core utilization across nodes over `[a, b]`.
    pub fn host_utilization(&self, a: SimTime, b: SimTime) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.cpu.borrow().utilization_cores(a, b))
            .sum()
    }

    /// Registers exemplar-carrying fleet latency histograms on every
    /// node's engine: DWRR queue wait, retry latency and RNIC
    /// post-to-completion, labelled by node so the aggregation layer can
    /// project the label away and merge them exactly.
    pub fn export_latency_histograms(&self, reg: &obs::MetricsRegistry) {
        for (idx, node) in self.nodes.iter().enumerate() {
            let label = idx.to_string();
            let nl = [("node", label.as_str())];
            node.dne.set_obs_sink(dne::DneObsSink {
                tx_queue_wait: Some(reg.histogram("dne_tx_queue_wait_ns", &nl)),
                retry_latency: Some(reg.histogram("dne_retry_latency_ns", &nl)),
                post_to_completion: Some(reg.histogram("dne_post_to_completion_ns", &nl)),
            });
        }
    }

    /// Folds every engine's per-pipeline-stage busy core-time into one
    /// SoC profiler table over `[0, horizon_ns]` (rows aggregate across
    /// nodes, under the `dne_soc` processor name).
    pub fn soc_stage_table(&self, horizon_ns: u64) -> obs::SocStageTable {
        let mut stages: Vec<(&'static str, u128)> = Vec::new();
        for node in &self.nodes {
            for (stage, busy) in node.dne.stage_busy() {
                match stages.iter_mut().find(|(s, _)| *s == stage) {
                    Some((_, sum)) => *sum += busy,
                    None => stages.push((stage, busy)),
                }
            }
        }
        let mut table = obs::SocStageTable::new(horizon_ns);
        for (stage, busy) in stages {
            table.push("dne_soc", stage, busy);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ClosedLoop;

    #[test]
    fn cluster_builds_and_runs_an_echo_chain() {
        let mut sim = Sim::new();
        let mut cluster = Cluster::new(&mut sim, ClusterConfig::default());
        let tenant = TenantId(1);
        cluster.add_tenant(&mut sim, tenant, 1).unwrap();
        let chain = ChainSpec::new("echo", tenant, vec![1, 2, 1]);
        cluster.place(1, 0);
        cluster.place(2, 1);
        let driver = ClosedLoop::new(SimTime::ZERO + SimDuration::from_millis(100));
        cluster.register_chain(&chain, |_| SimDuration::from_micros(5), driver.completion());
        driver.start(&mut sim, &cluster, &chain, 8, 256);
        sim.run();
        assert!(driver.completed() > 500, "got {}", driver.completed());
        // Engines did real work on both nodes.
        assert!(cluster.nodes[0].dne.stats().tx_posted > 0);
        assert!(cluster.nodes[1].dne.stats().tx_posted > 0);
        assert_eq!(cluster.nodes[0].dne.stats().drops, 0);
    }

    #[test]
    fn dag_fan_out_beats_the_equivalent_sequential_chain() {
        use std::cell::Cell;
        // Frontend fans out to four services in parallel; the sequential
        // chain visits the same services one at a time. Same total work,
        // but the DAG overlaps it.
        let run_dag = || {
            let mut sim = Sim::new();
            let mut cluster = Cluster::new(&mut sim, ClusterConfig::default());
            let tenant = TenantId(1);
            cluster.add_tenant(&mut sim, tenant, 1).unwrap();
            for (f, node) in [(1u16, 0usize), (2, 1), (3, 1), (4, 1), (5, 0)] {
                cluster.place(f, node);
            }
            let dag = runtime::DagSpec::new("fanout", tenant, 1, &[(1, &[2, 3, 4, 5][..])]);
            let done: Rc<std::cell::Cell<Option<SimTime>>> = Rc::new(Cell::new(None));
            let sink = done.clone();
            cluster.register_dag(
                &dag,
                |_| SimDuration::from_micros(50),
                Rc::new(move |sim, _| sink.set(Some(sim.now()))),
            );
            let t0 = sim.now();
            assert!(cluster.inject_dag(&mut sim, &dag, 7));
            sim.run();
            (done.get().expect("completed") - t0).as_micros_f64()
        };
        let run_chain = || {
            let mut sim = Sim::new();
            let mut cluster = Cluster::new(&mut sim, ClusterConfig::default());
            let tenant = TenantId(1);
            cluster.add_tenant(&mut sim, tenant, 1).unwrap();
            for (f, node) in [(1u16, 0usize), (2, 1), (3, 1), (4, 1), (5, 0)] {
                cluster.place(f, node);
            }
            let chain = ChainSpec::new("seq", tenant, vec![1, 2, 1, 3, 1, 4, 1, 5, 1]);
            let done: Rc<std::cell::Cell<Option<SimTime>>> = Rc::new(Cell::new(None));
            let sink = done.clone();
            cluster.register_chain(
                &chain,
                |_| SimDuration::from_micros(50),
                Rc::new(move |sim, _| sink.set(Some(sim.now()))),
            );
            let t0 = sim.now();
            assert!(cluster.inject(&mut sim, &chain, 7, 64));
            sim.run();
            (done.get().expect("completed") - t0).as_micros_f64()
        };
        let dag_us = run_dag();
        let chain_us = run_chain();
        assert!(
            dag_us < 0.6 * chain_us,
            "fan-out ({dag_us}us) must overlap work the chain ({chain_us}us) serializes"
        );
    }

    #[test]
    fn obs_sampling_builds_per_tenant_series_and_traces_requests() {
        let mut sim = Sim::new();
        let mut cluster = Cluster::new(&mut sim, ClusterConfig::default());
        let tenant = TenantId(1);
        cluster.add_tenant(&mut sim, tenant, 1).unwrap();
        let chain = ChainSpec::new("echo", tenant, vec![1, 2, 1]);
        cluster.place(1, 0);
        cluster.place(2, 1);
        let tracer = obs::Tracer::enabled();
        cluster.set_tracer(&tracer);
        let t0 = sim.now();
        let driver = ClosedLoop::new(t0 + SimDuration::from_millis(10));
        cluster.register_chain(&chain, |_| SimDuration::from_micros(5), driver.completion());
        driver.start(&mut sim, &cluster, &chain, 4, 256);
        let cluster = Rc::new(cluster);
        let reg = Rc::new(obs::MetricsRegistry::new());
        cluster.start_obs_sampler(
            &mut sim,
            Rc::clone(&reg),
            SimDuration::from_millis(1),
            t0 + SimDuration::from_millis(10),
        );
        sim.run();
        assert!(driver.completed() > 0);
        // Per-tenant labelled series exist on both nodes.
        let labels = [("node", "0"), ("tenant", "1")];
        let depth = reg.series("dne_tx_queue_depth", &labels, SimDuration::from_secs(60));
        assert!(!depth.points().is_empty());
        let deficit = reg.series("dne_dwrr_deficit", &labels, SimDuration::from_secs(60));
        assert!(!deficit.points().is_empty());
        let hit = reg.series("shadow_qp_hit_rate", &labels, SimDuration::from_secs(60));
        assert!(!hit.points().is_empty());
        let snap = reg.snapshot();
        assert!(snap.gauge("dne_tx_posted_total", &[("node", "0")]).unwrap() > 0.0);
        assert!(snap.to_text().contains("dne_tx_queue_depth"));
        // Every completed request traced the full pipeline: at least six
        // distinct stages (the acceptance bar for the Perfetto export).
        let some_req = tracer.records()[0].req_id;
        assert!(
            tracer.stages_of(some_req).len() >= 6,
            "stages: {:?}",
            tracer.stages_of(some_req)
        );
    }

    #[test]
    fn inject_fails_without_placement() {
        let mut sim = Sim::new();
        let mut cluster = Cluster::new(&mut sim, ClusterConfig::default());
        let tenant = TenantId(1);
        cluster.add_tenant(&mut sim, tenant, 1).unwrap();
        let chain = ChainSpec::new("c", tenant, vec![5, 6]);
        assert!(!cluster.inject(&mut sim, &chain, 0, 64));
    }

    #[test]
    fn utilization_accessors_cover_engines_and_hosts() {
        let mut sim = Sim::new();
        let mut cluster = Cluster::new(&mut sim, ClusterConfig::default());
        let tenant = TenantId(1);
        cluster.add_tenant(&mut sim, tenant, 1).unwrap();
        let chain = ChainSpec::new("echo", tenant, vec![1, 2, 1]);
        cluster.place(1, 0);
        cluster.place(2, 1);
        let t0 = sim.now();
        let driver = ClosedLoop::new(t0 + SimDuration::from_millis(20));
        cluster.register_chain(
            &chain,
            |_| SimDuration::from_micros(50),
            driver.completion(),
        );
        driver.start(&mut sim, &cluster, &chain, 16, 128);
        sim.run();
        let t1 = sim.now();
        assert!(cluster.engine_utilization(t0, t1) > 0.0);
        assert!(cluster.host_utilization(t0, t1) > 0.0);
    }
}
