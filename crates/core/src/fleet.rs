//! The fleet-level observability report (`results/report.json`).
//!
//! This module assembles everything the obs v3 stack produces into one
//! deterministic document — the "fleet report" the evaluation and the CI
//! `obs-report` job are built on:
//!
//! - a **boutique cell**: the fig16-shaped Online Boutique chain behind
//!   a NADINO ingress, run on the full-fidelity DNE cluster with the
//!   tracer, trace pipeline (multi-window SLO burn monitor included),
//!   exemplar-carrying latency histograms and the windowed
//!   [`obs::Aggregator`] all enabled — producing per-window fleet
//!   rollups, merged histograms whose every exemplar resolves to a
//!   retained flight-recorder/tail-sampler trace, the per-tenant
//!   burn-rate series, and a flight-recorder dump;
//! - a **host-only baseline**: the same cell on the CNE (engine on a
//!   host core) to price the "SoC cores freed" table
//!   ([`obs::CoresFreed`]) next to the per-stage SoC profiler
//!   ([`obs::SocStageTable`]);
//! - a **sharded phase**: the parallel-core DAG cluster with its
//!   wall-time attribution split ([`obs::ShardSplit`]) and the client
//!   latency histogram whose exemplars resolve against the retained
//!   slow-trace table;
//! - a **churn phase**: the elastic cell's per-window QP-thrash series.
//!
//! Determinism contract: for a fixed [`FleetConfig`] seed the rendered
//! JSON is byte-identical across processes and across `--shards` worker
//! counts — every number in it derives from virtual time and seeded
//! streams, wall-clock self-observation metrics are dropped by the
//! aggregator, and worker counts are excluded from the document.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

use ingress::gateway::{Gateway, GatewayConfig, Reply, Upstream};
use ingress::rss::FlowId;
use membuf::tenant::TenantId;
use obs::JsonValue;
use simcore::{Sim, SimDuration, SimTime};

use crate::boutique;
use crate::churn::{self, ChurnConfig};
use crate::cluster::{Cluster, ClusterConfig};
use crate::shard_cluster::{self, CrashWindow, ShardClusterConfig, WorkloadKind};

/// The tenant the boutique cell runs as (on-wire id 1).
const TENANT: u16 = 1;

/// Configuration of one fleet report.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Root seed for every phase.
    pub seed: u64,
    /// Worker threads for the sharded phase. Deliberately absent from
    /// the report: byte identity must hold across worker counts.
    pub shards: usize,
    /// Inject a crash window into the sharded phase (the chaos variant;
    /// recorded in the report's meta block since it changes the run).
    pub chaos: bool,
    /// Closed-loop clients driving the boutique cell.
    pub clients: usize,
    /// Virtual time of the boutique cell.
    pub horizon: SimDuration,
    /// Aggregation window (= obs sampling cadence) of the boutique cell.
    pub obs_window: SimDuration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 42,
            shards: 1,
            chaos: false,
            clients: 20,
            horizon: SimDuration::from_millis(40),
            obs_window: SimDuration::from_millis(5),
        }
    }
}

/// `REPORT_SEED` env override (decimal or `0x`-hex), mirroring the churn
/// sweep's `CHURN_SEED`: the CI `obs-report` job sweeps a seed matrix and
/// asserts byte identity per seed.
pub fn seed_from_env(default: u64) -> u64 {
    std::env::var("REPORT_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim().to_string();
            match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(default)
}

/// What one boutique cell leaves behind.
struct CellOut {
    completed: u64,
    agg: obs::Aggregator,
    burn: JsonValue,
    flight: JsonValue,
    retained: BTreeSet<u64>,
    soc: obs::SocStageTable,
    engine_cores: f64,
    host_cores: f64,
    exemplars_kept: usize,
    exemplars_dropped: usize,
}

/// Closed-loop driver state over the gateway.
struct Driver {
    gateway: Gateway,
    upstream: Upstream,
    completed: u64,
    stop_at: SimTime,
}

fn issue(state: &Rc<RefCell<Driver>>, sim: &mut Sim, client: u32) {
    let (gateway, upstream) = {
        let st = state.borrow();
        if sim.now() >= st.stop_at {
            return;
        }
        (st.gateway.clone(), st.upstream.clone())
    };
    let st2 = state.clone();
    gateway.submit_tenant(
        sim,
        TENANT,
        FlowId::from_client(client, 0),
        boutique::PAYLOAD_BYTES,
        upstream,
        Box::new(move |sim, result| {
            if result.is_ok() {
                st2.borrow_mut().completed += 1;
            }
            issue(&st2, sim, client);
        }),
    );
}

/// Recurring obs tick: sample the cluster into the registry and close
/// one aggregation window over the snapshot.
fn obs_tick(
    cluster: Rc<Cluster>,
    reg: Rc<obs::MetricsRegistry>,
    agg: Rc<RefCell<obs::Aggregator>>,
    sim: &mut Sim,
    every: SimDuration,
    until: SimTime,
) {
    sim.schedule_after(every, move |sim| {
        cluster.sample_obs(sim.now(), &reg, every);
        agg.borrow_mut().observe(sim.now(), &reg.snapshot());
        if sim.now() < until {
            obs_tick(cluster, reg, agg, sim, every, until);
        }
    });
}

/// Runs the boutique cell once. `dne_cfg` selects the engine placement
/// (DPU-resident DNE vs host-resident CNE for the baseline).
fn run_cell(cfg: &FleetConfig, dne_cfg: dne::DneConfig) -> CellOut {
    let mut sim = Sim::new();
    let mut cluster = Cluster::new(
        &mut sim,
        ClusterConfig {
            dne: dne_cfg,
            pool_bufs: 4096,
            ..ClusterConfig::default()
        },
    );
    cluster
        .add_tenant(&mut sim, TenantId(TENANT), 1)
        .expect("fresh cluster");
    let cluster = Rc::new(cluster);
    for f in boutique::all_functions() {
        cluster.place(f, boutique::hotspot_placement(f));
    }

    // Tracing: ingress-decided sampling every 2nd request, pipeline with
    // the multi-window burn monitor sized to the cell's latency scale.
    let tracer = obs::Tracer::enabled();
    tracer.set_head_sample(2);
    cluster.set_tracer(&tracer);
    cluster.enable_trace_pipeline(obs::PipelineConfig {
        burn: Some(obs::BurnConfig {
            target_ns: 2_000_000, // 2 ms — near the cell's mean latency
            budget: 0.05,
            fast_window: SimDuration::from_millis(2),
            slow_window: SimDuration::from_millis(24),
            burn_threshold: 2.0,
            min_events: 4,
        }),
        ..obs::PipelineConfig::default()
    });

    // Exemplar-carrying observation sites: per-node engine histograms
    // plus the gateway admission-wait histogram.
    let reg = Rc::new(obs::MetricsRegistry::new());
    cluster.export_latency_histograms(&reg);

    // Completions resolve the per-request reply registered at injection.
    let chain = boutique::home_query(TenantId(TENANT));
    let pending: Rc<RefCell<HashMap<u64, Reply>>> = Rc::new(RefCell::new(HashMap::new()));
    let p2 = pending.clone();
    cluster.register_chain(
        &chain,
        boutique::exec_cost,
        Rc::new(move |sim, req| {
            if let Some(reply) = p2.borrow_mut().remove(&req) {
                reply(sim, Ok(boutique::PAYLOAD_BYTES));
            }
        }),
    );
    let p3 = pending.clone();
    cluster.set_delivery_failure_handler(Rc::new(move |sim, failure| {
        if let Some(reply) = p3.borrow_mut().remove(&failure.req_id) {
            reply(sim, Err(ingress::DeliveryFailed));
        }
    }));

    let gateway = Gateway::new(GatewayConfig {
        kind: ingress::stack::GatewayKind::Nadino,
        initial_workers: 2,
        max_backlog: SimDuration::from_millis(500),
        ..GatewayConfig::default()
    });
    gateway.set_tracer(tracer.clone());
    gateway.register_tenant(TENANT, 1);
    gateway.set_admission_histogram(Some(reg.histogram("gw_admission_wait_ns", &[])));

    // Ingress → cluster upstream: RDMA transport, then inject.
    let transport = SimDuration::from_micros(3);
    let pools = cluster.pools_snapshot();
    let entry_idx = cluster.node_index_of(chain.entry()).expect("placed");
    let entry_iolib = cluster.nodes[entry_idx].iolib.clone();
    let chain2 = chain.clone();
    let upstream: Upstream = Rc::new(move |sim, ctx: ingress::ReqCtx, reply| {
        let req_id = ctx.req_id;
        let pending = pending.clone();
        let pools = pools.clone();
        let iolib = entry_iolib.clone();
        let chain = chain2.clone();
        sim.schedule_after(transport, move |sim| {
            let pool = pools
                .iter()
                .find(|(t, i, _)| *t == chain.tenant && *i == 0)
                .map(|(_, _, p)| p);
            let Some(pool) = pool else {
                reply(sim, Ok(0));
                return;
            };
            let Ok(mut buf) = pool.get() else {
                reply(sim, Ok(0)); // shed under pool exhaustion
                return;
            };
            let mut payload = runtime::encode_request_payload(req_id, boutique::PAYLOAD_BYTES);
            runtime::set_hop(&mut payload, 0);
            buf.write_payload(&payload).expect("payload fits");
            pending.borrow_mut().insert(req_id, reply);
            iolib.send(sim, chain.tenant, buf.into_desc(chain.entry()));
        });
    });

    // Anchor the measured interval at "now": tenant setup above advanced
    // virtual time (RC establishment costs tens of ms).
    let t0 = sim.now();
    let until = t0 + cfg.horizon;
    let agg = Rc::new(RefCell::new(obs::Aggregator::new(
        obs::AggregatorConfig::default(),
    )));
    obs_tick(
        cluster.clone(),
        reg.clone(),
        agg.clone(),
        &mut sim,
        cfg.obs_window,
        until,
    );
    cluster.start_trace_flusher(&mut sim, cfg.obs_window, until);

    let driver = Rc::new(RefCell::new(Driver {
        gateway,
        upstream,
        completed: 0,
        stop_at: until,
    }));
    for c in 0..cfg.clients {
        issue(&driver, &mut sim, c as u32);
    }
    sim.run();
    let t1 = sim.now();

    // Every exemplar that survives into the report must resolve to a
    // trace the pipeline retained (flight ring ∪ slowest-k).
    let retained = cluster
        .with_trace_pipeline(|p| p.retained_trace_ids())
        .unwrap_or_default();
    let (exemplars_kept, exemplars_dropped) = agg.borrow_mut().retain_exemplars(&retained);
    let burn = cluster
        .with_trace_pipeline(|p| p.burn().map(|b| b.to_json()))
        .flatten()
        .unwrap_or(JsonValue::Null);
    let flight = cluster
        .dump_flight_recorder(&sim)
        .unwrap_or(JsonValue::Null);
    let soc = cluster.soc_stage_table(cfg.horizon.as_nanos());
    let agg = Rc::try_unwrap(agg).ok().expect("sampler done").into_inner();
    let completed = driver.borrow().completed;
    CellOut {
        completed,
        agg,
        burn,
        flight,
        retained,
        soc,
        engine_cores: cluster.engine_utilization(t0, t1),
        host_cores: cluster.host_utilization(t0, t1),
        exemplars_kept,
        exemplars_dropped,
    }
}

/// The obs riders the fig16 report embeds: the per-tenant burn-rate
/// series and the SoC per-stage utilization table, from one DNE boutique
/// cell with the trace pipeline enabled.
pub fn obs_sections(cfg: &FleetConfig) -> (JsonValue, JsonValue) {
    let cell = run_cell(cfg, dne::DneConfig::nadino_dne());
    (cell.burn, cell.soc.to_json())
}

/// FNV-1a over a string, for compact digest columns.
fn fnv1a_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the full fleet report for `cfg`.
pub fn build_report(cfg: &FleetConfig) -> JsonValue {
    // Boutique cell on the DPU-resident engine — the obs-bearing run.
    let dne = run_cell(cfg, dne::DneConfig::nadino_dne());
    // Host-only baseline: same cell, engine on a host core.
    let cne = run_cell(cfg, dne::DneConfig::nadino_cne());
    let cores_freed = obs::CoresFreed {
        baseline_host_cores: cne.host_cores + cne.engine_cores,
        dne_host_cores: dne.host_cores,
        dne_soc_cores: dne.engine_cores,
    };

    // Sharded phase: the fig16 DAG shape on the parallel core.
    let shard_cfg = ShardClusterConfig {
        nodes: 4,
        clients: 4,
        horizon: SimDuration::from_millis(1),
        seed: cfg.seed,
        workload: WorkloadKind::Dag,
        crash: cfg.chaos.then(|| CrashWindow {
            node: 1,
            from: SimTime::from_nanos(100_000),
            until: SimTime::from_nanos(400_000),
        }),
        ..ShardClusterConfig::default()
    };
    let shard = shard_cluster::run(shard_cfg, cfg.shards.max(1));
    let split = shard.shard_split();

    // Churn phase: the elastic cell's per-window thrash series.
    let churn_rep = churn::run(ChurnConfig {
        tenants: 200,
        horizon: SimDuration::from_millis(300),
        mean_lifetime: SimDuration::from_millis(150),
        max_requests: 20_000,
        warmup: SimDuration::from_millis(75),
        seed: cfg.seed,
        ..ChurnConfig::default()
    });

    use obs::ToJson;
    JsonValue::obj(vec![
        (
            "meta",
            JsonValue::obj(vec![
                ("seed", JsonValue::UInt(cfg.seed)),
                ("chaos", JsonValue::Bool(cfg.chaos)),
                ("clients", JsonValue::UInt(cfg.clients as u64)),
                ("horizon_ns", JsonValue::UInt(cfg.horizon.as_nanos())),
                ("obs_window_ns", JsonValue::UInt(cfg.obs_window.as_nanos())),
            ]),
        ),
        (
            "fleet",
            JsonValue::obj(vec![
                ("completed", JsonValue::UInt(dne.completed)),
                ("aggregation", dne.agg.to_json()),
                ("exemplars_kept", JsonValue::UInt(dne.exemplars_kept as u64)),
                (
                    "exemplars_dropped",
                    JsonValue::UInt(dne.exemplars_dropped as u64),
                ),
                (
                    "retained_traces",
                    JsonValue::UInt(dne.retained.len() as u64),
                ),
                ("burn", dne.burn),
                ("soc_stages", dne.soc.to_json()),
                ("cores_freed", cores_freed.to_json()),
                ("flight_dump", dne.flight),
            ]),
        ),
        (
            "shard",
            JsonValue::obj(vec![
                (
                    "digest_fnv",
                    JsonValue::Str(format!("{:016x}", fnv1a_str(&shard.determinism_digest()))),
                ),
                ("windows", JsonValue::UInt(shard.windows)),
                ("events", JsonValue::UInt(shard.total_events)),
                ("completed", JsonValue::UInt(shard.completed())),
                ("split", obs::ShardSplit::table_json(&split)),
                ("latency", shard.latency.to_json()),
                (
                    "exemplars_resolvable",
                    JsonValue::Bool(shard.latency.exemplars_resolvable()),
                ),
            ]),
        ),
        (
            "churn",
            JsonValue::obj(vec![
                (
                    "digest",
                    JsonValue::Str(format!("{:016x}", churn_rep.digest)),
                ),
                (
                    "steady_hit_rate",
                    JsonValue::Float(churn_rep.steady_hit_rate),
                ),
                (
                    "thrash_windows",
                    JsonValue::Arr(churn_rep.windows.iter().map(|w| w.to_json()).collect()),
                ),
            ]),
        ),
    ])
}

/// Renders the headline numbers of a built report as a text table (the
/// `experiments report` console output; the JSON twin is the document
/// itself).
pub fn render_summary(doc: &JsonValue) -> String {
    fn path<'a>(doc: &'a JsonValue, keys: &[&str]) -> Option<&'a JsonValue> {
        keys.iter().try_fold(doc, |v, k| v.get(k))
    }
    let u = |keys: &[&str]| path(doc, keys).and_then(|v| v.as_u64()).unwrap_or(0);
    let f = |keys: &[&str]| path(doc, keys).and_then(|v| v.as_f64()).unwrap_or(0.0);
    let s = |keys: &[&str]| {
        path(doc, keys)
            .and_then(|v| v.as_str())
            .unwrap_or("-")
            .to_string()
    };
    let windows = path(doc, &["fleet", "aggregation", "windows"])
        .and_then(|v| v.as_arr())
        .map_or(0, |a| a.len());
    let rows = vec![
        vec![
            "boutique".to_string(),
            format!("completed {}", u(&["fleet", "completed"])),
            format!("agg windows {windows}"),
            format!(
                "exemplars {} kept / {} dropped",
                u(&["fleet", "exemplars_kept"]),
                u(&["fleet", "exemplars_dropped"])
            ),
            format!("retained traces {}", u(&["fleet", "retained_traces"])),
        ],
        vec![
            "cores".to_string(),
            format!(
                "baseline host {:.2}",
                f(&["fleet", "cores_freed", "baseline_host_cores"])
            ),
            format!(
                "dne host {:.2}",
                f(&["fleet", "cores_freed", "dne_host_cores"])
            ),
            format!(
                "dne soc {:.2}",
                f(&["fleet", "cores_freed", "dne_soc_cores"])
            ),
            format!(
                "freed {:.2}",
                f(&["fleet", "cores_freed", "host_cores_freed"])
            ),
        ],
        vec![
            "shard".to_string(),
            format!("digest {}", s(&["shard", "digest_fnv"])),
            format!("completed {}", u(&["shard", "completed"])),
            format!("events {}", u(&["shard", "events"])),
            format!(
                "exemplars resolvable {}",
                path(doc, &["shard", "exemplars_resolvable"])
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false)
            ),
        ],
        vec![
            "churn".to_string(),
            format!("digest {}", s(&["churn", "digest"])),
            format!("steady hit {:.3}", f(&["churn", "steady_hit_rate"])),
            format!(
                "thrash windows {}",
                path(doc, &["churn", "thrash_windows"])
                    .and_then(|v| v.as_arr())
                    .map_or(0, |a| a.len())
            ),
            String::new(),
        ],
    ];
    crate::report::render_table(
        "fleet report - windowed rollups, exemplars, burn rates, SoC profile",
        &["phase", "", "", "", ""],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> FleetConfig {
        FleetConfig {
            horizon: SimDuration::from_millis(20),
            clients: 8,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn report_has_every_section_and_parses() {
        let doc = build_report(&quick());
        let text = doc.to_string_pretty();
        let parsed = obs::parse(&text).expect("report is valid JSON");
        for section in ["meta", "fleet", "shard", "churn"] {
            assert!(parsed.get(section).is_some(), "missing {section}");
        }
        let fleet = parsed.get("fleet").unwrap();
        assert!(fleet.get("aggregation").unwrap().get("windows").is_some());
        assert!(fleet.get("cores_freed").is_some());
        assert!(fleet.get("soc_stages").is_some());
        assert!(fleet.get("burn").is_some());
        assert!(
            parsed
                .get("shard")
                .unwrap()
                .get("exemplars_resolvable")
                .unwrap()
                .as_bool()
                == Some(true)
        );
    }

    #[test]
    fn same_seed_reports_are_byte_identical_across_worker_counts() {
        let a = build_report(&quick()).to_string_pretty();
        let b = build_report(&FleetConfig {
            shards: 4,
            ..quick()
        })
        .to_string_pretty();
        assert_eq!(a, b, "worker count leaked into the report");
    }

    #[test]
    fn chaos_variant_is_deterministic_too() {
        let cfg = FleetConfig {
            chaos: true,
            ..quick()
        };
        let a = build_report(&cfg).to_string_pretty();
        let b = build_report(&cfg).to_string_pretty();
        assert_eq!(a, b);
        assert_ne!(
            a,
            build_report(&quick()).to_string_pretty(),
            "chaos must actually change the run"
        );
    }

    #[test]
    fn every_fleet_exemplar_resolves_to_a_retained_trace() {
        // Rebuild the DNE cell directly to inspect retained ids.
        let cfg = quick();
        let cell = run_cell(&cfg, dne::DneConfig::nadino_dne());
        for (_, _, _, exemplars) in cell.agg.merged_histograms() {
            for ex in exemplars.exemplars() {
                assert!(
                    cell.retained.contains(&ex.trace_id),
                    "exemplar trace {} not retained",
                    ex.trace_id
                );
            }
        }
        assert!(cell.completed > 0, "cell drove real traffic");
        assert!(
            cell.exemplars_kept > 0,
            "report keeps at least one exemplar"
        );
    }
}
