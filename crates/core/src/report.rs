//! Experiment output: aligned text tables and machine-readable JSON.

use std::fmt::Write as _;
use std::path::Path;

use obs::json::ToJson;

/// Renders an aligned text table (the format the `experiments` binary
/// prints for each figure).
///
/// # Examples
///
/// ```
/// use nadino::report::render_table;
///
/// let out = render_table(
///     "Demo",
///     &["system", "rps"],
///     &[vec!["NADINO".into(), "115000".into()]],
/// );
/// assert!(out.contains("NADINO"));
/// assert!(out.contains("system"));
/// ```
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:<w$}  ");
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:<w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Formats a float with a sensible number of digits for tables.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Writes a serializable value as pretty JSON next to the text output.
pub fn write_json<T: ToJson>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = value.to_json().to_string_pretty();
    std::fs::write(path, json)
}

/// Renders a per-stage latency-attribution table from DNE stage stats.
///
/// One row per pipeline stage the engine accounts for: time waiting in the
/// tenant TX queue, scheduling delay on the engine cores, and RNIC
/// post-to-completion time.
pub fn render_stage_breakdown(title: &str, stages: &[(&str, simcore::Histogram)]) -> String {
    let headers = ["stage", "samples", "mean_us", "p50_us", "p99_us", "max_us"];
    let rows: Vec<Vec<String>> = stages
        .iter()
        .map(|(name, h)| {
            let s = h.summary();
            vec![
                name.to_string(),
                s.count.to_string(),
                fmt_f64(s.mean_us),
                fmt_f64(s.p50_us),
                fmt_f64(s.p99_us),
                fmt_f64(s.max_us),
            ]
        })
        .collect();
    render_table(title, &headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = render_table(
            "T",
            &["a", "long-header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer-cell".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("== T =="));
        // Both data rows start their second column at the same offset.
        let c1 = lines[3].find('1').unwrap();
        let c2 = lines[4].find('2').unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn float_formatting_scales() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(3.17259), "3.17");
        assert_eq!(fmt_f64(42.42), "42.4");
        assert_eq!(fmt_f64(112345.6), "112346");
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("nadino-report-test");
        let path = dir.join("out.json");
        write_json(&path, &vec![1u32, 2, 3]).unwrap();
        let back = obs::json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let values: Vec<u64> = back
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        assert_eq!(values, vec![1, 2, 3]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn stage_breakdown_renders_rows() {
        let mut h = simcore::Histogram::new();
        h.record(simcore::SimDuration::from_micros(12));
        let out = render_stage_breakdown("DNE stages", &[("tx_queue_wait", h)]);
        assert!(out.contains("tx_queue_wait"));
        assert!(out.contains("p99_us"));
    }
}
