//! BENCH churn — elastic control-plane scaling under tenant churn.
//!
//! Sweeps the churn cell of [`crate::churn`] across tenant populations
//! (10^2–10^5) with pre-warming off and on, holding everything else at
//! the default cell. The contrast per population isolates what the
//! elastic control plane buys: with `prewarm = 0` every tenant's first
//! contact pays the full RC establishment delay on the request path;
//! with the demand-driven restock controller it pays a claim measured
//! in microseconds, and goodput/tail follow.
//!
//! 10^6 tenants is deliberately not in the default sweep: the cell is
//! memory-bound there (route + pool + two fabric QP endpoints per live
//! tenant — several GiB with allocator overhead), so CI would OOM
//! before it ran out of virtual time. The 10^2→10^5 trend is flat in
//! steady-state hit rate and sub-linear in per-lookup cost (the sharded
//! table's point), which is the extrapolation the paper's argument
//! needs.
//!
//! Every cell folds its counters into a determinism digest; the run
//! repeats one cell with the same seed and reports whether the digests
//! were byte-identical, and the CI churn-smoke job re-asserts this
//! across whole process invocations.

use crate::churn::{run as run_cell, ChurnConfig, ChurnReport, ChurnWindow};
use crate::experiment::parallel::pmap;
use crate::report::{fmt_f64, render_table};
use simcore::SimDuration;

/// One sweep cell's headline numbers (the full [`ChurnReport`] rides
/// along for the JSON twin).
#[derive(Debug, Clone)]
pub struct ChurnRow {
    /// Tenant population target.
    pub tenants: usize,
    /// Pre-warm stock floor per link (0 = cold control plane).
    pub prewarm_target: usize,
    /// Requests modeled.
    pub requests: u64,
    /// Good requests (within SLO) per virtual second.
    pub goodput_rps: f64,
    /// Steady-state pre-warm hit rate (post-warmup first contacts
    /// served from stock).
    pub steady_hit_rate: f64,
    /// First contacts that paid the full RC establishment delay.
    pub cold_connects: u64,
    /// Steady-state median latency, µs.
    pub steady_p50_us: f64,
    /// Steady-state tail latency, µs.
    pub steady_p99_us: f64,
    /// LRU evictions from the active QP set.
    pub evictions: u64,
    /// Idle QPs lazily torn down.
    pub teardowns: u64,
    /// Peak concurrently-active QPs at the gateway RNIC.
    pub peak_active_qps: usize,
    /// Per-window thrash series — the PR 8 `qp_*` gauges as eviction /
    /// teardown / cold rates over the run, so the thrash knee is a
    /// series, not one total.
    pub windows: Vec<ChurnWindow>,
    /// Determinism digest, hex.
    pub digest: String,
}

obs::impl_to_json!(ChurnRow {
    tenants,
    prewarm_target,
    requests,
    goodput_rps,
    steady_hit_rate,
    cold_connects,
    steady_p50_us,
    steady_p99_us,
    evictions,
    teardowns,
    peak_active_qps,
    windows,
    digest
});

/// The full sweep.
#[derive(Debug, Clone)]
pub struct BenchChurn {
    pub rows: Vec<ChurnRow>,
    /// `"stable"` when the repeated same-seed cell reproduced its digest
    /// byte-for-byte, `"UNSTABLE"` otherwise.
    pub determinism: String,
}

obs::impl_to_json!(BenchChurn { rows, determinism });

/// Populations swept by the full budget.
pub const FULL_POPULATIONS: [usize; 4] = [100, 1_000, 10_000, 100_000];
/// Populations swept by `--quick` (CI smoke).
pub const QUICK_POPULATIONS: [usize; 3] = [100, 1_000, 10_000];
/// The cold-vs-warm contrast: pre-warm stock floors compared.
pub const PREWARM_LEVELS: [usize; 2] = [0, 8];

/// Root seed for every cell, overridable via `CHURN_SEED` (decimal or
/// `0x`-prefixed hex) so the CI smoke job can sweep a seed matrix and
/// assert byte identity per seed.
fn churn_seed(default: u64) -> u64 {
    std::env::var("CHURN_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim().to_string();
            match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(default)
}

fn cell_cfg(tenants: usize, prewarm: usize, quick: bool) -> ChurnConfig {
    let mut cfg = ChurnConfig {
        tenants,
        prewarm_target: prewarm,
        seed: churn_seed(ChurnConfig::default().seed),
        ..ChurnConfig::default()
    };
    if quick {
        cfg.horizon = SimDuration::from_millis(500);
        cfg.warmup = SimDuration::from_millis(125);
        cfg.max_requests = 30_000;
    }
    // At large populations the request cap, not the horizon, ends the
    // cell (offered load is `rate_per_tenant * tenants`); pull the
    // warmup cutoff to a third of the expected time-to-cap so the
    // steady-state window still sees most of the samples.
    let offered = cfg.rate_per_tenant * tenants as f64;
    if cfg.max_requests > 0 && offered > 0.0 {
        let time_to_cap = SimDuration::from_secs_f64(cfg.max_requests as f64 / offered / 3.0);
        if time_to_cap < cfg.warmup {
            cfg.warmup = time_to_cap;
        }
    }
    cfg
}

fn row(rep: &ChurnReport, prewarm: usize) -> ChurnRow {
    ChurnRow {
        tenants: rep.tenants,
        prewarm_target: prewarm,
        requests: rep.requests,
        goodput_rps: rep.goodput_rps,
        steady_hit_rate: rep.steady_hit_rate,
        cold_connects: rep.cold_connects,
        steady_p50_us: rep.steady_p50_us,
        steady_p99_us: rep.steady_p99_us,
        evictions: rep.evictions,
        teardowns: rep.teardowns,
        peak_active_qps: rep.peak_active_qps,
        windows: rep.windows.clone(),
        digest: format!("{:016x}", rep.digest),
    }
}

/// Runs the sweep sequentially.
pub fn run(quick: bool) -> BenchChurn {
    run_jobs(quick, 1)
}

/// Runs the sweep with cells fanned out across `jobs` threads; row
/// order matches the sequential run exactly.
pub fn run_jobs(quick: bool, jobs: usize) -> BenchChurn {
    let populations: &[usize] = if quick {
        &QUICK_POPULATIONS
    } else {
        &FULL_POPULATIONS
    };
    let mut cells: Vec<Box<dyn FnOnce() -> ChurnRow + Send>> = Vec::new();
    for &tenants in populations {
        for prewarm in PREWARM_LEVELS {
            cells.push(Box::new(move || {
                row(&run_cell(cell_cfg(tenants, prewarm, quick)), prewarm)
            }));
        }
    }
    // Same-seed repeat of the smallest warm cell: the digest must
    // reproduce byte-for-byte or the whole sweep is untrustworthy.
    let repeat_tenants = populations[0];
    cells.push(Box::new(move || {
        row(
            &run_cell(cell_cfg(repeat_tenants, PREWARM_LEVELS[1], quick)),
            PREWARM_LEVELS[1],
        )
    }));
    let mut rows = pmap(cells, jobs);
    let repeat = rows.pop().expect("repeat cell present");
    let original = rows
        .iter()
        .find(|r| r.tenants == repeat.tenants && r.prewarm_target == repeat.prewarm_target)
        .expect("repeated cell is part of the sweep");
    let determinism = if original.digest == repeat.digest {
        format!("stable ({})", repeat.digest)
    } else {
        format!("UNSTABLE ({} != {})", original.digest, repeat.digest)
    };
    BenchChurn { rows, determinism }
}

impl BenchChurn {
    /// Looks up a sweep row.
    pub fn get(&self, tenants: usize, prewarm: usize) -> Option<&ChurnRow> {
        self.rows
            .iter()
            .find(|r| r.tenants == tenants && r.prewarm_target == prewarm)
    }

    /// Renders the sweep as a text table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.tenants.to_string(),
                    r.prewarm_target.to_string(),
                    r.requests.to_string(),
                    fmt_f64(r.goodput_rps),
                    fmt_f64(r.steady_hit_rate),
                    r.cold_connects.to_string(),
                    fmt_f64(r.steady_p50_us),
                    fmt_f64(r.steady_p99_us),
                    r.evictions.to_string(),
                    r.teardowns.to_string(),
                    r.peak_active_qps.to_string(),
                ]
            })
            .collect();
        let mut text = render_table(
            "BENCH churn - elastic control plane vs tenant population",
            &[
                "tenants",
                "prewarm",
                "requests",
                "goodput_rps",
                "steady_hit",
                "cold",
                "p50_us",
                "p99_us",
                "evict",
                "teardown",
                "peak_qps",
            ],
            &rows,
        );
        text.push_str(&format!("determinism: {}\n", self.determinism));
        if let Some(thrash) = self.thrash_cell() {
            let win_rows: Vec<Vec<String>> = thrash
                .windows
                .iter()
                .map(|w| {
                    vec![
                        w.index.to_string(),
                        format!("{:.1}", w.start_ns as f64 / 1e6),
                        format!("{:.1}", w.end_ns as f64 / 1e6),
                        w.cold_connects.to_string(),
                        w.prewarm_claims.to_string(),
                        fmt_f64(w.eviction_rate_per_s),
                        fmt_f64(w.teardown_rate_per_s),
                        fmt_f64(w.cold_rate_per_s),
                    ]
                })
                .collect();
            text.push('\n');
            text.push_str(&render_table(
                &format!(
                    "QP thrash per window - {} tenants, prewarm {}",
                    thrash.tenants, thrash.prewarm_target
                ),
                &[
                    "window",
                    "start_ms",
                    "end_ms",
                    "cold",
                    "claims",
                    "evict/s",
                    "teardown/s",
                    "cold/s",
                ],
                &win_rows,
            ));
        }
        text
    }

    /// The cell whose thrash series the text report shows: the largest
    /// warm population — the place the eviction knee appears first.
    pub fn thrash_cell(&self) -> Option<&ChurnRow> {
        self.rows
            .iter()
            .filter(|r| r.prewarm_target > 0 && !r.windows.is_empty())
            .max_by_key(|r| r.tenants)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_warm_beats_cold_at_every_population() {
        let bench = run_jobs(true, 2);
        assert_eq!(bench.rows.len(), QUICK_POPULATIONS.len() * 2);
        for &tenants in &QUICK_POPULATIONS {
            let cold = bench.get(tenants, 0).unwrap();
            let warm = bench.get(tenants, 8).unwrap();
            assert_eq!(cold.steady_hit_rate, 0.0, "no stock, no hits");
            assert!(
                warm.steady_hit_rate > 0.5,
                "warm hit rate at {tenants} tenants: {}",
                warm.steady_hit_rate
            );
            assert!(
                warm.steady_p99_us <= cold.steady_p99_us,
                "warm tail at {tenants} tenants: {} > {}",
                warm.steady_p99_us,
                cold.steady_p99_us
            );
            assert!(warm.goodput_rps >= cold.goodput_rps);
        }
    }

    #[test]
    fn sweep_is_deterministic_across_repeats() {
        let bench = run(true);
        assert!(
            bench.determinism.starts_with("stable"),
            "{}",
            bench.determinism
        );
    }

    #[test]
    fn thrash_table_rides_the_largest_warm_cell() {
        let bench = run_jobs(true, 2);
        let cell = bench.thrash_cell().expect("warm cells carry windows");
        assert_eq!(cell.tenants, *QUICK_POPULATIONS.last().unwrap());
        assert!(cell.prewarm_target > 0);
        assert!(!cell.windows.is_empty());
        let rendered = bench.render();
        assert!(
            rendered.contains("QP thrash per window"),
            "thrash table missing from render:\n{rendered}"
        );
    }
}
