//! Fig. 16 & Table 2 — end-to-end Online Boutique evaluation.
//!
//! The full system comparison of §4.3: three chains (Home Query, View
//! Cart, Product Query) served by seven data planes behind their
//! respective cluster ingresses, under 20/60/80 closed-loop clients.
//! NADINO (DNE) and NADINO (CNE) run the real engine on a real cluster;
//! the baselines run their calibrated system models. For every
//! configuration we record RPS, mean latency (Table 2) and the
//! network-engine core usage (Fig. 16 (4)-(6)).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use baselines::{SystemKind, SystemModel};
use ingress::gateway::{Gateway, GatewayConfig, Reply, Upstream};
use ingress::rss::FlowId;
use membuf::tenant::TenantId;
use runtime::ChainSpec;
use simcore::{Histogram, Sim, SimDuration, SimTime};

use crate::baseline_cluster::BaselineCluster;
use crate::boutique;
use crate::cluster::{Cluster, ClusterConfig};
use crate::report::{fmt_f64, render_table};

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Fig16Row {
    pub system: String,
    pub chain: String,
    pub clients: usize,
    pub rps: f64,
    pub mean_ms: f64,
    /// Network-engine cores busy (DPU cores for NADINO (DNE), CPU
    /// otherwise), including cores dedicated to polling/scheduling.
    pub engine_cores: f64,
    /// True when the engine runs on the DPU.
    pub engine_is_dpu: bool,
    /// Host cores busy executing functions (and, for deferred-conversion
    /// baselines, worker-side TCP termination).
    pub host_cores: f64,
}

obs::impl_to_json!(Fig16Row {
    system,
    chain,
    clients,
    rps,
    mean_ms,
    engine_cores,
    engine_is_dpu,
    host_cores
});

/// "SoC cores freed vs host-only baseline" row: NADINO (DNE) against
/// NADINO (CNE) — the same engine on host cores — for one
/// (chain, clients) cell.
/// Both variants run closed-loop, so the DNE completes more requests in
/// the same horizon and its hosts are busier doing *useful* function
/// work; raw busy-core counts would hide the offload. Normalizing per
/// 1000 RPS makes the comparison work-for-work.
#[derive(Debug, Clone)]
pub struct CoresFreedRow {
    pub chain: String,
    pub clients: usize,
    /// Host cores per 1000 RPS under the CNE baseline (functions + engine).
    pub baseline_host_cores_per_krps: f64,
    /// Host cores per 1000 RPS with the engine offloaded to the SoC.
    pub dne_host_cores_per_krps: f64,
    /// SoC cores per 1000 RPS the offloaded engine consumes instead.
    pub dne_soc_cores_per_krps: f64,
    /// Host cores freed per 1000 RPS of served load.
    pub host_cores_freed_per_krps: f64,
}

obs::impl_to_json!(CoresFreedRow {
    chain,
    clients,
    baseline_host_cores_per_krps,
    dne_host_cores_per_krps,
    dne_soc_cores_per_krps,
    host_cores_freed_per_krps
});

/// The full figure + table.
#[derive(Debug, Clone)]
pub struct Fig16 {
    pub rows: Vec<Fig16Row>,
    /// The "SoC cores freed" table (one row per DNE/CNE cell pair).
    pub cores_freed: Vec<CoresFreedRow>,
    /// Per-tenant multi-window burn-rate series from the obs-bearing
    /// boutique cell (`Null` when the DNE/CNE pair was filtered out).
    pub burn: obs::JsonValue,
    /// SoC per-stage utilization table from the same cell.
    pub soc_stages: obs::JsonValue,
}

obs::impl_to_json!(Fig16 {
    rows,
    cores_freed,
    burn,
    soc_stages
});

/// Client counts of Table 2.
pub const CLIENTS: [usize; 3] = [20, 60, 80];

/// Ingress transport latency to the worker nodes, per direction.
fn ingress_transport(kind: ingress::stack::GatewayKind) -> SimDuration {
    match kind {
        ingress::stack::GatewayKind::Nadino => SimDuration::from_micros(3),
        ingress::stack::GatewayKind::FIngress => SimDuration::from_micros(12),
        ingress::stack::GatewayKind::KIngress => SimDuration::from_micros(25),
    }
}

/// Shared closed-loop measurement harness over any upstream.
struct GwDriver {
    gateway: Gateway,
    upstream: Upstream,
    hist: Histogram,
    completed: u64,
    stop_at: SimTime,
    began: SimTime,
    last_done: SimTime,
}

fn gw_issue(state: &Rc<RefCell<GwDriver>>, sim: &mut Sim, client: u32) {
    let (gateway, upstream) = {
        let st = state.borrow();
        if sim.now() >= st.stop_at {
            return;
        }
        (st.gateway.clone(), st.upstream.clone())
    };
    let began = sim.now();
    let st2 = state.clone();
    gateway.submit(
        sim,
        FlowId::from_client(client, 0),
        boutique::PAYLOAD_BYTES,
        upstream,
        Box::new(move |sim, result| {
            if result.is_ok() {
                let mut st = st2.borrow_mut();
                st.hist.record(sim.now().saturating_since(began));
                st.completed += 1;
                st.last_done = sim.now();
            }
            gw_issue(&st2, sim, client);
        }),
    );
}

fn drive(
    sim: &mut Sim,
    gateway: Gateway,
    upstream: Upstream,
    clients: usize,
    duration: SimDuration,
) -> (f64, f64) {
    let began = sim.now();
    let state = Rc::new(RefCell::new(GwDriver {
        gateway,
        upstream,
        hist: Histogram::new(),
        completed: 0,
        stop_at: began + duration,
        began,
        last_done: began,
    }));
    for c in 0..clients {
        gw_issue(&state, sim, c as u32);
    }
    sim.run();
    let st = state.borrow();
    let span = st.last_done.saturating_since(st.began).as_secs_f64();
    let rps = if span > 0.0 {
        st.completed as f64 / span
    } else {
        0.0
    };
    (rps, st.hist.mean().as_millis_f64())
}

/// Runs a NADINO variant (DNE or CNE) for one chain/clients cell.
fn run_nadino(
    model: &SystemModel,
    chain_tpl: &ChainSpec,
    clients: usize,
    duration: SimDuration,
) -> Fig16Row {
    let mut sim = Sim::new();
    let dne_cfg = model.dne.clone().expect("NADINO variant");
    let engine_is_dpu = dne_cfg.processor == dpu_sim::soc::ProcessorKind::DpuArm;
    let mut cluster = Cluster::new(
        &mut sim,
        ClusterConfig {
            dne: dne_cfg,
            pool_bufs: 4096,
            ..ClusterConfig::default()
        },
    );
    let tenant = TenantId(chain_tpl.tenant.0);
    cluster.add_tenant(&mut sim, tenant, 1).unwrap();
    for f in boutique::all_functions() {
        cluster.place(f, boutique::hotspot_placement(f));
    }
    // Completions resolve the per-request reply registered at injection.
    let pending: Rc<RefCell<HashMap<u64, Reply>>> = Rc::new(RefCell::new(HashMap::new()));
    let p2 = pending.clone();
    cluster.register_chain(
        chain_tpl,
        boutique::exec_cost,
        Rc::new(move |sim, req| {
            if let Some(reply) = p2.borrow_mut().remove(&req) {
                reply(sim, Ok(boutique::PAYLOAD_BYTES));
            }
        }),
    );
    // A delivery the DNE gave up on resolves the same pending reply with a
    // typed failure, so the gateway answers 503 instead of hanging.
    let p3 = pending.clone();
    cluster.set_delivery_failure_handler(Rc::new(move |sim, failure| {
        if let Some(reply) = p3.borrow_mut().remove(&failure.req_id) {
            reply(sim, Err(ingress::DeliveryFailed));
        }
    }));
    let gateway = Gateway::new(GatewayConfig {
        kind: model.ingress,
        initial_workers: 2,
        max_backlog: SimDuration::from_millis(500),
        ..GatewayConfig::default()
    });
    // Ingress → cluster upstream: RDMA transport, then inject.
    let transport = ingress_transport(model.ingress);
    let pools = cluster.pools_snapshot();
    let entry_idx = cluster.node_index_of(chain_tpl.entry()).expect("placed");
    let entry_iolib = cluster.nodes[entry_idx].iolib.clone();
    let chain2 = chain_tpl.clone();
    let upstream: Upstream = Rc::new(move |sim, ctx: ingress::ReqCtx, reply| {
        let req_id = ctx.req_id;
        let pending = pending.clone();
        let pools = pools.clone();
        let iolib = entry_iolib.clone();
        let chain = chain2.clone();
        sim.schedule_after(transport, move |sim| {
            let pool = pools
                .iter()
                .find(|(t, i, _)| *t == chain.tenant && *i == 0)
                .map(|(_, _, p)| p);
            let Some(pool) = pool else {
                reply(sim, Ok(0));
                return;
            };
            let Ok(mut buf) = pool.get() else {
                reply(sim, Ok(0)); // shed under pool exhaustion
                return;
            };
            let mut payload = runtime::encode_request_payload(req_id, boutique::PAYLOAD_BYTES);
            runtime::set_hop(&mut payload, 0);
            buf.write_payload(&payload).expect("payload fits");
            pending.borrow_mut().insert(req_id, reply);
            iolib.send(sim, chain.tenant, buf.into_desc(chain.entry()));
        });
    });
    let t0 = sim.now();
    let (rps, mean_ms) = drive(&mut sim, gateway, upstream, clients, duration);
    let t1 = sim.now();
    Fig16Row {
        system: model.name.to_string(),
        chain: chain_tpl.name.clone(),
        clients,
        rps,
        mean_ms,
        engine_cores: cluster.engine_utilization(t0, t1),
        engine_is_dpu,
        host_cores: cluster.host_utilization(t0, t1),
    }
}

/// Runs a baseline system for one chain/clients cell.
fn run_baseline(
    model: &SystemModel,
    chain_tpl: &ChainSpec,
    clients: usize,
    duration: SimDuration,
) -> Fig16Row {
    let mut sim = Sim::new();
    let bc = BaselineCluster::new(model.clone(), 2, ClusterConfig::default().host_cores);
    for f in boutique::all_functions() {
        bc.place(f, boutique::hotspot_placement(f));
    }
    let gateway = Gateway::new(GatewayConfig {
        kind: model.ingress,
        // NightCore relies on its built-in single-worker kernel ingress.
        initial_workers: if model.single_node_only { 1 } else { 2 },
        max_backlog: SimDuration::from_millis(500),
        ..GatewayConfig::default()
    });
    let worker_cost = gateway.worker_side_cost();
    let transport = ingress_transport(model.ingress);
    let chain = Rc::new(chain_tpl.clone());
    let bc2 = bc.clone();
    let upstream: Upstream = Rc::new(move |sim, ctx: ingress::ReqCtx, reply| {
        let bytes = ctx.req_bytes;
        let bc = bc2.clone();
        let chain = chain.clone();
        sim.schedule_after(transport, move |sim| {
            // Deferred conversion: the worker node terminates TCP first.
            let entry_done = bc.charge(sim, chain.entry(), worker_cost);
            let bc3 = bc.clone();
            let chain3 = chain.clone();
            sim.schedule_at(entry_done, move |sim| {
                bc3.run_request(
                    sim,
                    chain3,
                    Rc::new(boutique::exec_cost),
                    bytes,
                    Box::new(move |sim| reply(sim, Ok(bytes))),
                );
            });
        });
    });
    let t0 = sim.now();
    let (rps, mean_ms) = drive(&mut sim, gateway, upstream, clients, duration);
    let t1 = sim.now();
    Fig16Row {
        system: model.name.to_string(),
        chain: chain_tpl.name.clone(),
        clients,
        rps,
        mean_ms,
        // Polling engines already report a full core each; non-polling
        // systems with dedicated cores (Junction's scheduler) add them.
        engine_cores: bc.engine_utilization(t0, t1)
            + if bc.engine_polls() {
                0.0
            } else {
                bc.dedicated_cores() as f64
            },
        engine_is_dpu: false,
        host_cores: bc.host_utilization(t0, t1),
    }
}

/// Runs the full matrix (`millis` of virtual time per cell).
pub fn run(millis: u64) -> Fig16 {
    run_filtered(millis, &SystemKind::all(), &CLIENTS)
}

/// Runs a subset of the matrix (used by tests and quick benches).
pub fn run_filtered(millis: u64, systems: &[SystemKind], clients: &[usize]) -> Fig16 {
    let duration = SimDuration::from_millis(millis);
    let tenant = TenantId(1);
    let chains = boutique::evaluation_chains(tenant);
    let mut rows = Vec::new();
    for &kind in systems {
        let model = SystemModel::for_kind(kind);
        for chain in &chains {
            for &c in clients {
                let row = if model.dne.is_some() {
                    run_nadino(&model, chain, c, duration)
                } else {
                    run_baseline(&model, chain, c, duration)
                };
                rows.push(row);
            }
        }
    }
    let cores_freed: Vec<CoresFreedRow> = rows
        .iter()
        .filter(|r| r.system == "NADINO (DNE)")
        .filter_map(|d| {
            let c = rows.iter().find(|r| {
                r.system == "NADINO (CNE)" && r.chain == d.chain && r.clients == d.clients
            })?;
            let per_krps = |cores: f64, rps: f64| {
                if rps > 0.0 {
                    cores / rps * 1000.0
                } else {
                    0.0
                }
            };
            let freed = obs::CoresFreed {
                baseline_host_cores: per_krps(c.host_cores + c.engine_cores, c.rps),
                dne_host_cores: per_krps(d.host_cores, d.rps),
                dne_soc_cores: per_krps(d.engine_cores, d.rps),
            };
            Some(CoresFreedRow {
                chain: d.chain.clone(),
                clients: d.clients,
                baseline_host_cores_per_krps: freed.baseline_host_cores,
                dne_host_cores_per_krps: freed.dne_host_cores,
                dne_soc_cores_per_krps: freed.dne_soc_cores,
                host_cores_freed_per_krps: freed.freed(),
            })
        })
        .collect();
    // Obs riders: the burn-rate series and SoC stage table come from one
    // obs-bearing boutique cell (trace pipeline + burn monitor enabled) —
    // skipped when the DNE/CNE pair was filtered out of this run.
    let (burn, soc_stages) = if cores_freed.is_empty() {
        (obs::JsonValue::Null, obs::JsonValue::Null)
    } else {
        crate::fleet::obs_sections(&crate::fleet::FleetConfig::default())
    };
    Fig16 {
        rows,
        cores_freed,
        burn,
        soc_stages,
    }
}

impl Fig16 {
    /// Looks up one cell.
    pub fn get(&self, system: &str, chain: &str, clients: usize) -> Option<&Fig16Row> {
        self.rows
            .iter()
            .find(|r| r.system == system && r.chain == chain && r.clients == clients)
    }

    /// Renders Fig. 16 (RPS + engine cores).
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.system.clone(),
                    r.chain.clone(),
                    r.clients.to_string(),
                    fmt_f64(r.rps),
                    format!(
                        "{}% {}",
                        fmt_f64(r.engine_cores * 100.0),
                        if r.engine_is_dpu { "DPU" } else { "CPU" }
                    ),
                    format!("{}%", fmt_f64(r.host_cores * 100.0)),
                ]
            })
            .collect();
        let mut text = render_table(
            "Fig. 16 - Online Boutique: RPS and engine usage",
            &["system", "chain", "clients", "rps", "engine", "host_cpu"],
            &rows,
        );
        if !self.cores_freed.is_empty() {
            let freed_rows: Vec<Vec<String>> = self
                .cores_freed
                .iter()
                .map(|r| {
                    vec![
                        r.chain.clone(),
                        r.clients.to_string(),
                        fmt_f64(r.baseline_host_cores_per_krps),
                        fmt_f64(r.dne_host_cores_per_krps),
                        fmt_f64(r.dne_soc_cores_per_krps),
                        fmt_f64(r.host_cores_freed_per_krps),
                    ]
                })
                .collect();
            text.push('\n');
            text.push_str(&render_table(
                "SoC cores freed vs host-only baseline (DNE vs CNE, per 1000 RPS)",
                &[
                    "chain",
                    "clients",
                    "baseline_host",
                    "dne_host",
                    "dne_soc",
                    "freed",
                ],
                &freed_rows,
            ));
        }
        text
    }

    /// Renders Table 2 (mean latency in milliseconds).
    pub fn render_table2(&self) -> String {
        let mut systems: Vec<&str> = Vec::new();
        for r in &self.rows {
            if !systems.contains(&r.system.as_str()) {
                systems.push(&r.system);
            }
        }
        let chains = ["Home Query", "View Cart", "Product Query"];
        let mut headers: Vec<String> = vec!["system".to_string()];
        for chain in &chains {
            for c in CLIENTS {
                headers.push(format!("{chain}@{c}"));
            }
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut rows = Vec::new();
        for system in systems {
            let mut row = vec![system.to_string()];
            for chain in &chains {
                for c in CLIENTS {
                    row.push(
                        self.get(system, chain, c)
                            .map(|r| fmt_f64(r.mean_ms))
                            .unwrap_or_else(|| "-".to_string()),
                    );
                }
            }
            rows.push(row);
        }
        render_table("Table 2 - mean latency (ms)", &header_refs, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One shared matrix at 20 and 80 clients, 200 ms per cell.
    fn fig() -> &'static Fig16 {
        static FIG: OnceLock<Fig16> = OnceLock::new();
        FIG.get_or_init(|| run_filtered(200, &SystemKind::all(), &[20, 80]))
    }

    fn rps(system: &str, clients: usize) -> f64 {
        fig().get(system, "Home Query", clients).unwrap().rps
    }

    #[test]
    fn dne_beats_cne_under_load() {
        let ratio = rps("NADINO (DNE)", 80) / rps("NADINO (CNE)", 80);
        assert!(
            (1.3..=1.9).contains(&ratio),
            "DNE/CNE at 80 clients = {ratio} (paper: 1.3-1.8x)"
        );
    }

    #[test]
    fn dne_beats_fuyao_and_spright() {
        let dne = rps("NADINO (DNE)", 80);
        let fuyao = rps("FUYAO-F", 80);
        let spright = rps("SPRIGHT", 80);
        assert!(
            (1.9..=4.5).contains(&(dne / fuyao)),
            "DNE/FUYAO-F = {} (paper: 2.1-4.1x)",
            dne / fuyao
        );
        assert!(
            (2.2..=4.5).contains(&(dne / spright)),
            "DNE/SPRIGHT = {} (paper: 2.4-4.1x)",
            dne / spright
        );
    }

    #[test]
    fn nightcore_trails_by_a_wide_margin() {
        let ratio = rps("NADINO (DNE)", 80) / rps("NightCore", 80);
        assert!(ratio > 4.5, "DNE/NightCore = {ratio} (paper: 5.1-20.9x)");
    }

    #[test]
    fn junction_trails_dne_by_about_half() {
        let dne = rps("NADINO (DNE)", 80);
        let junction = rps("Junction", 80);
        assert!(
            junction < 0.6 * dne,
            "Junction {junction} must be >47% below DNE {dne}"
        );
    }

    #[test]
    fn fuyao_f_beats_fuyao_k() {
        assert!(rps("FUYAO-F", 80) > rps("FUYAO-K", 80));
    }

    #[test]
    fn table2_latency_shape() {
        let f = fig();
        // DNE Home Query at 20 clients is about a millisecond.
        let dne20 = f.get("NADINO (DNE)", "Home Query", 20).unwrap().mean_ms;
        assert!(
            (0.8..=1.4).contains(&dne20),
            "DNE@20 = {dne20}ms (paper 1.12)"
        );
        // Latency grows with clients for every system.
        for row in &f.rows {
            if row.clients == 20 {
                let at80 = f.get(&row.system, &row.chain, 80).unwrap().mean_ms;
                assert!(
                    at80 > row.mean_ms,
                    "{}: {} -> {at80}",
                    row.system,
                    row.mean_ms
                );
            }
        }
        // NightCore has the worst latency everywhere.
        for chain in ["Home Query", "View Cart", "Product Query"] {
            for c in [20usize, 80] {
                let nc = f.get("NightCore", chain, c).unwrap().mean_ms;
                let dne = f.get("NADINO (DNE)", chain, c).unwrap().mean_ms;
                assert!(nc > 1.5 * dne, "NightCore {nc} vs DNE {dne} ({chain}@{c})");
            }
        }
    }

    #[test]
    fn cne_has_lower_latency_at_light_load() {
        let f = fig();
        let dne = f.get("NADINO (DNE)", "Home Query", 20).unwrap().mean_ms;
        let cne = f.get("NADINO (CNE)", "Home Query", 20).unwrap().mean_ms;
        assert!(
            cne < dne * 1.1,
            "CNE@20 {cne} vs DNE {dne} (paper: slightly lower)"
        );
    }

    #[test]
    fn dpu_offload_frees_host_cpu_cores() {
        let f = fig();
        // NADINO (DNE)'s engine runs on DPU cores; every other system burns
        // host CPU cores for its engine.
        let dne = f.get("NADINO (DNE)", "Home Query", 80).unwrap();
        assert!(dne.engine_is_dpu);
        assert!(dne.engine_cores <= 2.05, "two wimpy DPU cores suffice");
        let fuyao = f.get("FUYAO-F", "Home Query", 80).unwrap();
        assert!(!fuyao.engine_is_dpu);
        assert!(
            fuyao.engine_cores > 1.9,
            "FUYAO's polling receivers saturate their cores"
        );
    }

    #[test]
    fn cores_freed_table_pairs_dne_with_cne() {
        let f = fig();
        assert!(
            !f.cores_freed.is_empty(),
            "DNE+CNE both ran, so the pairing exists"
        );
        for row in &f.cores_freed {
            let d = f.get("NADINO (DNE)", &row.chain, row.clients).unwrap();
            assert!(d.engine_is_dpu);
            assert!(row.dne_soc_cores_per_krps > 0.0, "engine moved to the SoC");
            assert!(row.host_cores_freed_per_krps >= 0.0);
        }
        // Under load, serving the same unit of work must cost fewer host
        // cores once the engine is off the host.
        let loaded = f
            .cores_freed
            .iter()
            .find(|r| r.chain == "Home Query" && r.clients == 80)
            .unwrap();
        assert!(
            loaded.host_cores_freed_per_krps > 0.0,
            "offload frees host cores per krps: {loaded:?}"
        );
        // The obs riders came along with the pairing.
        assert!(f.burn != obs::JsonValue::Null, "burn series present");
        assert!(f.soc_stages != obs::JsonValue::Null, "SoC table present");
        assert!(f.render().contains("SoC cores freed"));
    }

    #[test]
    fn renders_figure_and_table() {
        let f = fig();
        assert!(f.render().contains("NADINO (DNE)"));
        let t2 = f.render_table2();
        assert!(t2.contains("Home Query@20"));
        assert!(t2.contains("NightCore"));
    }
}
