//! Fig. 13 — performance of the cluster-ingress designs.
//!
//! An echo HTTP function on a worker node behind a single-core cluster
//! ingress. We sweep the number of closed-loop clients and compare
//! NADINO's early-conversion ingress against the deferred-conversion
//! *K-Ingress* (kernel TCP NGINX) and *F-Ingress* (F-stack NGINX).
//!
//! Paper targets: NADINO up to 11.4× the RPS of K-Ingress and 3.2× that of
//! F-Ingress, with correspondingly lower end-to-end latency (up to 11.7×).

use std::cell::RefCell;
use std::rc::Rc;

use ingress::gateway::{Gateway, GatewayConfig, Reply, Upstream};
use ingress::rss::FlowId;
use ingress::stack::GatewayKind;
use simcore::{Histogram, MultiServer, Sim, SimDuration, SimTime};

use crate::report::{fmt_f64, render_table};

/// One measured cell.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    pub ingress: String,
    pub clients: usize,
    pub mean_us: f64,
    pub rps: f64,
}

obs::impl_to_json!(Fig13Row {
    ingress,
    clients,
    mean_us,
    rps
});

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig13 {
    pub rows: Vec<Fig13Row>,
}

obs::impl_to_json!(Fig13 { rows });

/// Client counts swept.
pub const CLIENTS: [usize; 4] = [1, 4, 8, 16];

/// The ingress designs, in the paper's order.
pub const KINDS: [(GatewayKind, &str); 3] = [
    (GatewayKind::Nadino, "NADINO"),
    (GatewayKind::FIngress, "F-Ingress"),
    (GatewayKind::KIngress, "K-Ingress"),
];

/// Builds the worker-node upstream for an ingress design: transport to the
/// worker, worker-side stack cost (zero for NADINO), the echo function.
pub(crate) fn worker_upstream(kind: GatewayKind, worker_cost: SimDuration) -> Upstream {
    // Transport latency per direction between ingress and worker.
    let transport = match kind {
        GatewayKind::Nadino => SimDuration::from_micros(3),
        GatewayKind::FIngress => SimDuration::from_micros(12),
        GatewayKind::KIngress => SimDuration::from_micros(25),
    };
    // The worker node runs the echo function on several host cores so the
    // ingress — the component under test — is the bottleneck.
    let fn_exec = SimDuration::from_micros(5);
    let worker = Rc::new(RefCell::new(MultiServer::new(4)));
    Rc::new(move |sim: &mut Sim, ctx: ingress::ReqCtx, reply: Reply| {
        let worker = worker.clone();
        let req_bytes = ctx.req_bytes;
        sim.schedule_after(transport, move |sim| {
            let done = worker.borrow_mut().admit(sim.now(), worker_cost + fn_exec);
            sim.schedule_at(done + transport, move |sim| reply(sim, Ok(req_bytes)));
        });
    })
}

struct Driver {
    gateway: Gateway,
    upstream: Upstream,
    hist: Histogram,
    completed: u64,
    dropped: u64,
    stop_at: SimTime,
    last_done: SimTime,
    began: SimTime,
}

fn issue(state: &Rc<RefCell<Driver>>, sim: &mut Sim, client: u32) {
    let (gateway, upstream) = {
        let st = state.borrow();
        if sim.now() >= st.stop_at {
            return;
        }
        (st.gateway.clone(), st.upstream.clone())
    };
    let began = sim.now();
    let st2 = state.clone();
    gateway.submit(
        sim,
        FlowId::from_client(client, 0),
        128,
        upstream,
        Box::new(move |sim, result| {
            {
                let mut st = st2.borrow_mut();
                match result {
                    Ok(_) => {
                        st.hist.record(sim.now().saturating_since(began));
                        st.completed += 1;
                        st.last_done = sim.now();
                    }
                    Err(_) => st.dropped += 1,
                }
            }
            issue(&st2, sim, client);
        }),
    );
}

/// Runs one `(kind, clients)` cell for `millis` of virtual time.
fn run_one(kind: GatewayKind, clients: usize, millis: u64) -> (f64, f64) {
    let mut sim = Sim::new();
    let gateway = Gateway::new(GatewayConfig {
        kind,
        initial_workers: 1,
        ..GatewayConfig::default()
    });
    let worker_cost = gateway.worker_side_cost();
    let state = Rc::new(RefCell::new(Driver {
        gateway,
        upstream: worker_upstream(kind, worker_cost),
        hist: Histogram::new(),
        completed: 0,
        dropped: 0,
        stop_at: SimTime::ZERO + SimDuration::from_millis(millis),
        last_done: SimTime::ZERO,
        began: SimTime::ZERO,
    }));
    for c in 0..clients {
        issue(&state, &mut sim, c as u32);
    }
    sim.run();
    let st = state.borrow();
    let span = st.last_done.saturating_since(st.began).as_secs_f64();
    let rps = if span > 0.0 {
        st.completed as f64 / span
    } else {
        0.0
    };
    (st.hist.mean().as_micros_f64(), rps)
}

/// Runs the full sweep.
pub fn run(millis: u64) -> Fig13 {
    let mut rows = Vec::new();
    for (kind, name) in KINDS {
        for clients in CLIENTS {
            let (mean_us, rps) = run_one(kind, clients, millis);
            rows.push(Fig13Row {
                ingress: name.to_string(),
                clients,
                mean_us,
                rps,
            });
        }
    }
    Fig13 { rows }
}

impl Fig13 {
    /// Looks up a row.
    pub fn get(&self, ingress: &str, clients: usize) -> Option<&Fig13Row> {
        self.rows
            .iter()
            .find(|r| r.ingress == ingress && r.clients == clients)
    }

    /// Renders the figure.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.ingress.clone(),
                    r.clients.to_string(),
                    fmt_f64(r.mean_us),
                    fmt_f64(r.rps),
                ]
            })
            .collect();
        render_table(
            "Fig. 13 - cluster ingress designs (1 ingress core, echo function)",
            &["ingress", "clients", "mean_us", "rps"],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nadino_ingress_dominates_at_high_client_counts() {
        let fig = run(60);
        let n = fig.get("NADINO", 16).unwrap().rps;
        let f = fig.get("F-Ingress", 16).unwrap().rps;
        let k = fig.get("K-Ingress", 16).unwrap().rps;
        let f_ratio = n / f;
        let k_ratio = n / k;
        assert!(
            (2.5..=4.0).contains(&f_ratio),
            "NADINO/F-Ingress = {f_ratio} (paper: 3.2x)"
        );
        assert!(
            (8.0..=14.0).contains(&k_ratio),
            "NADINO/K-Ingress = {k_ratio} (paper: 11.4x)"
        );
    }

    #[test]
    fn latency_ordering_matches() {
        let fig = run(60);
        for clients in CLIENTS {
            let n = fig.get("NADINO", clients).unwrap().mean_us;
            let f = fig.get("F-Ingress", clients).unwrap().mean_us;
            let k = fig.get("K-Ingress", clients).unwrap().mean_us;
            assert!(n < f && f < k, "at {clients} clients: {n} < {f} < {k}");
        }
        // Latency gap grows with load (paper: up to 11.7x).
        let n16 = fig.get("NADINO", 16).unwrap().mean_us;
        let k16 = fig.get("K-Ingress", 16).unwrap().mean_us;
        assert!(k16 / n16 > 5.0, "K/NADINO latency at 16 = {}", k16 / n16);
    }

    #[test]
    fn all_cells_present() {
        let fig = run(15);
        assert_eq!(fig.rows.len(), 12);
        assert!(fig.render().contains("K-Ingress"));
    }
}
