//! Fig. 17 (Appendix A) — scalability of multi-tenancy support.
//!
//! Six tenants with equal weights join one at a time (one every 30 s of
//! the paper's timeline) and then leave in arrival order. The DNE should
//! keep every concurrently active tenant at an equal share while the
//! aggregate stays pinned at the single-DPU-core ceiling (~110 K RPS),
//! whether three or six tenants are active.

use dne::types::SchedPolicy;
use simcore::SimDuration;

use crate::experiment::fig15::{run_variant, Fig15Run, TenantSpec};
use crate::report::{fmt_f64, render_table};

/// The full appendix figure.
#[derive(Debug, Clone)]
pub struct Fig17 {
    pub duration_s: f64,
    pub run: Fig15Run,
}

obs::impl_to_json!(Fig17 { duration_s, run });

/// Six equal-weight tenants joining/leaving every 30 s (paper timeline),
/// scaled by `scale`.
pub fn tenant_specs(scale: f64) -> Vec<TenantSpec> {
    (0..6u16)
        .map(|i| TenantSpec {
            tenant: i + 1,
            weight: 1,
            start_s: 30.0 * i as f64 * scale,
            // First joined, first removed: removals start at 180 s.
            end_s: (180.0 + 30.0 * i as f64) * scale,
        })
        .collect()
}

/// Runs the appendix experiment at `scale` of the paper's 330 s timeline.
pub fn run(scale: f64) -> Fig17 {
    let specs = tenant_specs(scale);
    let duration = SimDuration::from_secs_f64(330.0 * scale);
    let window = SimDuration::from_secs_f64(2.0 * scale.max(0.05));
    Fig17 {
        duration_s: 330.0 * scale,
        run: run_variant(
            SchedPolicy::Dwrr { quantum: 1.0 },
            "DWRR",
            &specs,
            duration,
            window,
            48,
        ),
    }
}

impl Fig17 {
    /// Aggregate RPS over `[a_s, b_s]`.
    pub fn aggregate_rps(&self, a_s: f64, b_s: f64) -> f64 {
        (1..=6u16).map(|t| self.run.mean_rps(t, a_s, b_s)).sum()
    }

    /// Renders the traces.
    pub fn render(&self) -> String {
        let mut rows = Vec::new();
        for trace in &self.run.traces {
            for &(t, rps) in &trace.points {
                rows.push(vec![
                    format!("tenant-{}", trace.tenant),
                    fmt_f64(t),
                    fmt_f64(rps),
                ]);
            }
        }
        render_table(
            "Fig. 17 - six equal-weight tenants joining and leaving",
            &["tenant", "t_s", "rps"],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    const SCALE: f64 = 0.05; // 16.5 s compressed timeline

    fn fig() -> &'static Fig17 {
        static FIG: OnceLock<Fig17> = OnceLock::new();
        FIG.get_or_init(|| run(SCALE))
    }

    /// All six tenants are active between 150 s and 180 s (paper timeline).
    fn all_active_window() -> (f64, f64) {
        (152.0 * SCALE, 178.0 * SCALE)
    }

    #[test]
    fn equal_weights_get_equal_shares_with_six_tenants() {
        let (a, b) = all_active_window();
        let shares: Vec<f64> = (1..=6u16).map(|t| fig().run.mean_rps(t, a, b)).collect();
        let mean = shares.iter().sum::<f64>() / 6.0;
        for (i, s) in shares.iter().enumerate() {
            assert!(
                (s - mean).abs() / mean < 0.3,
                "tenant {} share {s} deviates from mean {mean}",
                i + 1
            );
        }
    }

    #[test]
    fn aggregate_stays_saturated_from_three_to_six_tenants() {
        // Three tenants active around 75-85 s; six around 152-178 s.
        let three = fig().aggregate_rps(72.0 * SCALE, 88.0 * SCALE);
        let six = {
            let (a, b) = all_active_window();
            fig().aggregate_rps(a, b)
        };
        for (label, v) in [("three", three), ("six", six)] {
            assert!(
                (90_000.0..=130_000.0).contains(&v),
                "aggregate with {label} tenants = {v} (paper: ~110K)"
            );
        }
        let drift = (six - three).abs() / three;
        assert!(drift < 0.15, "saturation must hold: {three} vs {six}");
    }

    #[test]
    fn renders() {
        assert!(fig().render().contains("tenant-6"));
    }
}
