//! Reproductions of every table and figure in the paper's evaluation.
//!
//! Each submodule builds the workload of one experiment, runs it on the
//! deterministic simulator and returns a serializable result structure
//! with a text rendering. The `experiments` binary in the `bench` crate
//! drives them all; EXPERIMENTS.md records paper-vs-measured values.

pub mod ablations;
pub mod churn;
pub mod fig06;
pub mod fig09;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod parallel;
pub mod summary;
pub mod upgrade;
