//! Thread fan-out for independent experiment cells.
//!
//! Every sweep point in fig06/fig09/fig11/fig12 builds a *fresh* `Sim`
//! and shares nothing with its siblings, so the cells can run on separate
//! OS threads. `Sim` itself is `!Send` (components share state via `Rc`),
//! which is why [`pmap`] takes `Send` *constructor* closures: each job
//! creates its whole simulation inside the worker thread. Results come
//! back in input index order regardless of completion order, so rendered
//! tables and JSON are byte-identical to a sequential run — determinism
//! per cell (seeded RNG, virtual time) plus deterministic collection
//! equals determinism of the whole figure.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `jobs` closures on up to `threads` worker threads, returning
/// their results in input order.
///
/// `threads <= 1` runs inline on the caller's thread (the `--jobs 1`
/// path is the same code shape, just without the fan-out). A panicking
/// job propagates the panic to the caller once the pool joins.
pub fn pmap<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }
    let queue: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let f = queue[i].lock().unwrap().take().expect("job taken once");
                let r = f();
                *results[i].lock().unwrap() = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("job completed"))
        .collect()
}

/// The machine's available parallelism (the `--jobs` default).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a user-facing thread-count request: `0` means "auto" —
/// [`default_jobs`], i.e. `available_parallelism()` — anything else is
/// taken literally. Every entry point that accepts `--jobs` or
/// `--shards` routes through this, so `0` means the same thing
/// everywhere, and callers print the resolved value in their run header.
pub fn resolve_jobs(requested: usize) -> usize {
    if requested == 0 {
        default_jobs()
    } else {
        requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        // Jobs finish in scrambled wall-clock order; index order must hold.
        let jobs: Vec<_> = (0..32u64)
            .map(|i| {
                move || {
                    if i % 3 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    i * i
                }
            })
            .collect();
        let seq: Vec<u64> = (0..32).map(|i| i * i).collect();
        assert_eq!(pmap(jobs.clone(), 1), seq);
        assert_eq!(pmap(jobs, 8), seq);
    }

    #[test]
    fn handles_empty_and_oversubscribed_pools() {
        let empty: Vec<fn() -> u32> = Vec::new();
        assert!(pmap(empty, 4).is_empty());
        let jobs: Vec<_> = (0..3u32).map(|i| move || i).collect();
        assert_eq!(pmap(jobs, 64), vec![0, 1, 2], "threads capped at job count");
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn zero_resolves_to_available_parallelism() {
        assert_eq!(resolve_jobs(0), default_jobs());
        assert_eq!(resolve_jobs(1), 1);
        assert_eq!(resolve_jobs(7), 7);
    }

    #[test]
    fn each_job_can_own_a_full_simulation() {
        // The whole point: !Send sims built inside the worker threads.
        let jobs: Vec<_> = (0..4u64)
            .map(|i| {
                move || {
                    let mut sim = simcore::Sim::new();
                    let hits = std::rc::Rc::new(std::cell::Cell::new(0u64));
                    for t in 0..=i {
                        let h = hits.clone();
                        sim.schedule_at(simcore::SimTime::from_nanos(t), move |_| {
                            h.set(h.get() + 1)
                        });
                    }
                    hits.set(0);
                    sim.run();
                    hits.get()
                }
            })
            .collect();
        assert_eq!(pmap(jobs, 4), vec![1, 2, 3, 4]);
    }
}
