//! Fig. 15 — multi-tenant RDMA bandwidth sharing.
//!
//! Three tenants with weights 6:1:2 push one-way transfers between a
//! client function on node 0 and a server function on node 1 through a
//! DNE configured to sustain ≈ 110 K RPS on its single DPU core. Tenant 1
//! is active for the whole run; tenant 2 joins early and leaves late;
//! tenant 3 runs a burst in the middle. We compare NADINO's DWRR scheduler
//! against the FCFS engine without multi-tenancy handling.
//!
//! Paper targets (scaled to our compressed timeline): with DWRR, shares
//! track the 6:1:2 weights exactly — 90 K/15 K when tenants 1+2 compete,
//! 65 K/11 K/22 K with all three — while FCFS splits capacity by arrival
//! order and starves tenant 1.

use dne::types::{DneConfig, SchedPolicy};
use membuf::tenant::TenantId;
use runtime::ChainSpec;
use simcore::{Sim, SimDuration};

use crate::cluster::{Cluster, ClusterConfig};
use crate::report::{fmt_f64, render_table};
use crate::workload::ClosedLoop;

/// One tenant's activity window and weight.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    pub tenant: u16,
    pub weight: u32,
    pub start_s: f64,
    pub end_s: f64,
}

obs::impl_to_json!(TenantSpec {
    tenant,
    weight,
    start_s,
    end_s
});

/// One tenant's measured throughput series.
#[derive(Debug, Clone)]
pub struct TenantTrace {
    pub tenant: u16,
    pub weight: u32,
    pub points: Vec<(f64, f64)>,
    pub completed: u64,
}

obs::impl_to_json!(TenantTrace {
    tenant,
    weight,
    points,
    completed
});

/// One scheduler's full run.
#[derive(Debug, Clone)]
pub struct Fig15Run {
    pub scheduler: String,
    pub traces: Vec<TenantTrace>,
}

obs::impl_to_json!(Fig15Run { scheduler, traces });

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig15 {
    pub duration_s: f64,
    pub runs: Vec<Fig15Run>,
}

obs::impl_to_json!(Fig15 { duration_s, runs });

/// The paper's three tenants (windows scaled by `scale` from the paper's
/// 240 s timeline: T1 always on, T2 20 s–200 s, T3 90 s–150 s).
pub fn tenant_specs(scale: f64) -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            tenant: 1,
            weight: 6,
            start_s: 0.0,
            end_s: 240.0 * scale,
        },
        TenantSpec {
            tenant: 2,
            weight: 1,
            start_s: 20.0 * scale,
            end_s: 200.0 * scale,
        },
        TenantSpec {
            tenant: 3,
            weight: 2,
            start_s: 90.0 * scale,
            end_s: 150.0 * scale,
        },
    ]
}

/// The engine throttle that pins a single DPU core at ≈ 110 K RPS (§4.2).
pub fn throttled(policy: SchedPolicy) -> DneConfig {
    DneConfig {
        sched: policy,
        extra_per_msg: SimDuration::from_nanos(2_500),
        ..DneConfig::nadino_dne()
    }
}

/// Runs one scheduler variant with the given tenant specs.
pub fn run_variant(
    policy: SchedPolicy,
    name: &str,
    specs: &[TenantSpec],
    duration: SimDuration,
    window: SimDuration,
    outstanding: usize,
) -> Fig15Run {
    let mut sim = Sim::new();
    let mut cluster = Cluster::new(
        &mut sim,
        ClusterConfig {
            dne: throttled(policy),
            pool_bufs: 4096,
            ..ClusterConfig::default()
        },
    );
    // Provision every tenant first; RC connection setup advances the
    // clock, so the experiment timeline starts at `epoch`.
    let mut chains = Vec::new();
    for spec in specs {
        let tenant = TenantId(spec.tenant);
        cluster.add_tenant(&mut sim, tenant, spec.weight).unwrap();
        // One-way transfer: client fn on node 0, server fn on node 1.
        let client_fn = spec.tenant * 10 + 1;
        let server_fn = spec.tenant * 10 + 2;
        cluster.place(client_fn, 0);
        cluster.place(server_fn, 1);
        chains.push((
            spec.clone(),
            ChainSpec::new("transfer", tenant, vec![client_fn, server_fn]),
        ));
    }
    let epoch = sim.now();
    let mut drivers = Vec::new();
    for (spec, chain) in chains {
        let end_at = epoch + SimDuration::from_secs_f64(spec.end_s);
        let driver = ClosedLoop::new(end_at).with_series(window);
        cluster.register_chain(&chain, |_| SimDuration::ZERO, driver.completion());
        driver.start(&mut sim, &cluster, &chain, 0, 1024);
        // The window opens later: issue the outstanding burst then.
        let d2 = driver.clone();
        let start_at = epoch + SimDuration::from_secs_f64(spec.start_s);
        sim.schedule_at(start_at, move |sim| {
            for _ in 0..outstanding {
                d2.issue_one(sim);
            }
        });
        drivers.push((spec, driver));
    }
    let end = epoch + duration;
    sim.run_until(end + SimDuration::from_secs(1));
    Fig15Run {
        scheduler: name.to_string(),
        traces: drivers
            .into_iter()
            .map(|(spec, d)| TenantTrace {
                tenant: spec.tenant,
                weight: spec.weight,
                completed: d.completed(),
                points: d.series(end),
            })
            .collect(),
    }
}

/// Runs both schedulers at `scale` of the paper's timeline.
pub fn run(scale: f64) -> Fig15 {
    let specs = tenant_specs(scale);
    let duration = SimDuration::from_secs_f64(240.0 * scale);
    let window = SimDuration::from_secs_f64(2.0 * scale.max(0.05));
    let outstanding = 64;
    Fig15 {
        duration_s: 240.0 * scale,
        runs: vec![
            run_variant(
                SchedPolicy::Fcfs,
                "FCFS",
                &specs,
                duration,
                window,
                outstanding,
            ),
            run_variant(
                SchedPolicy::Dwrr { quantum: 1.0 },
                "DWRR",
                &specs,
                duration,
                window,
                outstanding,
            ),
        ],
    }
}

impl Fig15 {
    /// Returns one run by scheduler name.
    pub fn run_named(&self, name: &str) -> Option<&Fig15Run> {
        self.runs.iter().find(|r| r.scheduler == name)
    }

    /// Renders the traces as text tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for run in &self.runs {
            let mut rows = Vec::new();
            for trace in &run.traces {
                for &(t, rps) in &trace.points {
                    rows.push(vec![
                        format!("tenant-{} (w={})", trace.tenant, trace.weight),
                        fmt_f64(t),
                        fmt_f64(rps),
                    ]);
                }
            }
            out.push_str(&render_table(
                &format!(
                    "Fig. 15 - RDMA bandwidth shares, {} scheduler",
                    run.scheduler
                ),
                &["tenant", "t_s", "rps"],
                &rows,
            ));
            out.push('\n');
        }
        out
    }
}

impl Fig15Run {
    /// Mean RPS of `tenant` over `[a_s, b_s]`.
    pub fn mean_rps(&self, tenant: u16, a_s: f64, b_s: f64) -> f64 {
        let trace = self
            .traces
            .iter()
            .find(|t| t.tenant == tenant)
            .expect("tenant present");
        let pts: Vec<f64> = trace
            .points
            .iter()
            .filter(|(t, _)| *t > a_s && *t <= b_s)
            .map(|&(_, r)| r)
            .collect();
        if pts.is_empty() {
            0.0
        } else {
            pts.iter().sum::<f64>() / pts.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn fig() -> &'static Fig15 {
        static FIG: OnceLock<Fig15> = OnceLock::new();
        FIG.get_or_init(|| run(0.05)) // 12 s compressed timeline
    }

    /// Scaled window landmarks for scale = 0.05.
    const TWO_TENANTS: (f64, f64) = (2.0, 4.0); // T1+T2 active
    const THREE_TENANTS: (f64, f64) = (5.0, 7.0); // all three active

    #[test]
    fn dwrr_tracks_61_ratio_with_two_tenants() {
        let dwrr = fig().run_named("DWRR").unwrap();
        let t1 = dwrr.mean_rps(1, TWO_TENANTS.0, TWO_TENANTS.1);
        let t2 = dwrr.mean_rps(2, TWO_TENANTS.0, TWO_TENANTS.1);
        let ratio = t1 / t2;
        assert!(
            (4.8..=7.2).contains(&ratio),
            "T1/T2 = {ratio} (paper: 6.0, 90K vs 15K)"
        );
    }

    #[test]
    fn dwrr_tracks_612_ratio_with_three_tenants() {
        let dwrr = fig().run_named("DWRR").unwrap();
        let t1 = dwrr.mean_rps(1, THREE_TENANTS.0, THREE_TENANTS.1);
        let t2 = dwrr.mean_rps(2, THREE_TENANTS.0, THREE_TENANTS.1);
        let t3 = dwrr.mean_rps(3, THREE_TENANTS.0, THREE_TENANTS.1);
        assert!(
            (4.8..=7.2).contains(&(t1 / t2)),
            "T1/T2 = {} (paper: 6)",
            t1 / t2
        );
        assert!(
            (1.5..=2.5).contains(&(t3 / t2)),
            "T3/T2 = {} (paper: 2)",
            t3 / t2
        );
    }

    #[test]
    fn aggregate_sits_near_the_110k_ceiling() {
        let dwrr = fig().run_named("DWRR").unwrap();
        let total: f64 = [1u16, 2, 3]
            .iter()
            .map(|&t| dwrr.mean_rps(t, THREE_TENANTS.0, THREE_TENANTS.1))
            .sum();
        assert!(
            (90_000.0..=130_000.0).contains(&total),
            "aggregate = {total} (paper: ~110K)"
        );
    }

    #[test]
    fn fcfs_starves_the_heavy_tenant() {
        let fcfs = fig().run_named("FCFS").unwrap();
        let dwrr = fig().run_named("DWRR").unwrap();
        // Under FCFS tenant 1 gets roughly an equal (arrival-order) share,
        // far below its 6/9 weighted entitlement.
        let t1_fcfs = fcfs.mean_rps(1, THREE_TENANTS.0, THREE_TENANTS.1);
        let t1_dwrr = dwrr.mean_rps(1, THREE_TENANTS.0, THREE_TENANTS.1);
        assert!(
            t1_fcfs < 0.7 * t1_dwrr,
            "FCFS must starve T1: fcfs {t1_fcfs} vs dwrr {t1_dwrr}"
        );
    }

    #[test]
    fn tenant1_regains_full_bandwidth_after_others_leave() {
        let dwrr = fig().run_named("DWRR").unwrap();
        let end = fig().duration_s;
        let t1_late = dwrr.mean_rps(1, end - 1.5, end - 0.5);
        let t1_contended = dwrr.mean_rps(1, THREE_TENANTS.0, THREE_TENANTS.1);
        assert!(
            t1_late > 1.3 * t1_contended,
            "T1 should recover after contention: {t1_contended} -> {t1_late}"
        );
    }
}
