//! One-screen summary: the paper's headline claims, measured.
//!
//! Gathers the key ratios from quick-budget runs of the underlying
//! experiments into a single table — the "abstract numbers" of the paper
//! (§1: 20.9× RPS, 21× latency, 7 CPU cores saved on two wimpy DPU cores).

use baselines::SystemKind;

use crate::experiment::{fig12, fig13, fig16};
use crate::report::{fmt_f64, render_table};

/// One headline claim.
#[derive(Debug, Clone)]
pub struct Claim {
    pub claim: String,
    pub paper: String,
    pub measured: f64,
}

obs::impl_to_json!(Claim {
    claim,
    paper,
    measured
});

/// The summary table.
#[derive(Debug, Clone)]
pub struct Summary {
    pub claims: Vec<Claim>,
}

obs::impl_to_json!(Summary { claims });

/// Runs the quick-budget summary.
pub fn run(millis: u64, requests: u64) -> Summary {
    let mut claims = Vec::new();

    let f12 = fig12::run(requests);
    claims.push(Claim {
        claim: "two-sided echo RTT @64B (us)".into(),
        paper: "8.4".into(),
        measured: f12.mean_us("NADINO (two-sided)", 64).unwrap_or(0.0),
    });
    claims.push(Claim {
        claim: "two-sided echo RTT @4KiB (us)".into(),
        paper: "11.6".into(),
        measured: f12.mean_us("NADINO (two-sided)", 4096).unwrap_or(0.0),
    });
    claims.push(Claim {
        claim: "OWDL / two-sided latency @4KiB".into(),
        paper: "2.3x".into(),
        measured: f12.mean_us("OWDL", 4096).unwrap_or(0.0)
            / f12.mean_us("NADINO (two-sided)", 4096).unwrap_or(1.0),
    });

    let f13 = fig13::run(millis);
    let n = f13.get("NADINO", 16).map(|r| r.rps).unwrap_or(0.0);
    claims.push(Claim {
        claim: "ingress RPS vs K-Ingress".into(),
        paper: "11.4x".into(),
        measured: n / f13.get("K-Ingress", 16).map(|r| r.rps).unwrap_or(1.0),
    });
    claims.push(Claim {
        claim: "ingress RPS vs F-Ingress".into(),
        paper: "3.2x".into(),
        measured: n / f13.get("F-Ingress", 16).map(|r| r.rps).unwrap_or(1.0),
    });

    let f16 = fig16::run_filtered(
        millis,
        &[
            SystemKind::NadinoDne,
            SystemKind::NadinoCne,
            SystemKind::NightCore,
        ],
        &[80],
    );
    let dne = f16
        .get("NADINO (DNE)", "Home Query", 80)
        .map(|r| r.rps)
        .unwrap_or(0.0);
    claims.push(Claim {
        claim: "Boutique RPS: DNE vs CNE".into(),
        paper: "1.3-1.8x".into(),
        measured: dne
            / f16
                .get("NADINO (CNE)", "Home Query", 80)
                .map(|r| r.rps)
                .unwrap_or(1.0),
    });
    claims.push(Claim {
        claim: "Boutique RPS: DNE vs NightCore".into(),
        paper: "5.1-20.9x".into(),
        measured: dne
            / f16
                .get("NightCore", "Home Query", 80)
                .map(|r| r.rps)
                .unwrap_or(1.0),
    });
    claims.push(Claim {
        claim: "DPU cores used by the whole data plane".into(),
        paper: "2".into(),
        measured: f16
            .get("NADINO (DNE)", "Home Query", 80)
            .map(|r| r.engine_cores)
            .unwrap_or(0.0),
    });

    Summary { claims }
}

impl Summary {
    /// Renders the summary table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .claims
            .iter()
            .map(|c| vec![c.claim.clone(), c.paper.clone(), fmt_f64(c.measured)])
            .collect();
        render_table(
            "Summary - headline claims, paper vs measured",
            &["claim", "paper", "measured"],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_claims_land_in_paper_bands() {
        let s = run(100, 200);
        let get = |name: &str| {
            s.claims
                .iter()
                .find(|c| c.claim.starts_with(name))
                .map(|c| c.measured)
                .expect("claim present")
        };
        assert!((7.0..=10.0).contains(&get("two-sided echo RTT @64B")));
        assert!((8.0..=14.0).contains(&get("ingress RPS vs K-Ingress")));
        assert!((1.2..=2.0).contains(&get("Boutique RPS: DNE vs CNE")));
        assert!(get("DPU cores used") <= 2.05);
        assert!(s.render().contains("Summary"));
    }
}
