//! Fig. 14 — horizontal scaling of NADINO's ingress.
//!
//! Load ramps up by adding one saturating client every ramp interval.
//! NADINO's ingress (and, for fairness, F-Ingress) run the hysteresis
//! autoscaler (spawn at 60% average utilization, retire below 30%);
//! K-Ingress runs with a fixed worker pool and overloads. We record the
//! gateway CPU-usage and RPS time series.
//!
//! Paper targets: NADINO's ingress tracks load with far less CPU while
//! achieving > 5× the RPS of K-Ingress, which collapses (client
//! disconnects) once all its cores saturate; scale events appear as brief
//! service dips.

use std::cell::RefCell;
use std::rc::Rc;

use ingress::autoscale::AutoscaleConfig;
use ingress::gateway::{Gateway, GatewayConfig, Upstream};
use ingress::rss::FlowId;
use ingress::stack::GatewayKind;
use simcore::{Sim, SimDuration, SimTime, TimeSeries};

use crate::experiment::fig13;
use crate::report::{fmt_f64, render_table};

/// One time-series sample.
#[derive(Debug, Clone)]
pub struct Fig14Sample {
    pub at_secs: f64,
    pub rps: f64,
    pub cpu_cores: f64,
    pub workers: usize,
}

obs::impl_to_json!(Fig14Sample {
    at_secs,
    rps,
    cpu_cores,
    workers
});

/// One ingress design's full trace.
#[derive(Debug, Clone)]
pub struct Fig14Trace {
    pub ingress: String,
    pub samples: Vec<Fig14Sample>,
    pub total_completed: u64,
    pub total_dropped: u64,
}

obs::impl_to_json!(Fig14Trace {
    ingress,
    samples,
    total_completed,
    total_dropped
});

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig14 {
    pub traces: Vec<Fig14Trace>,
}

obs::impl_to_json!(Fig14 { traces });

struct RampState {
    gateway: Gateway,
    upstream: Upstream,
    series: TimeSeries,
    stop_at: SimTime,
    completed: u64,
    dropped: u64,
}

/// Connections each saturating client keeps in flight (the paper's
/// clients are "configured to fully use up a CPU core ... with multiple
/// connections").
pub const CONNS_PER_CLIENT: u32 = 16;

fn client_loop(state: &Rc<RefCell<RampState>>, sim: &mut Sim, client: u32, conn: u32) {
    let (gateway, upstream, stopped) = {
        let st = state.borrow();
        (
            st.gateway.clone(),
            st.upstream.clone(),
            sim.now() >= st.stop_at,
        )
    };
    if stopped {
        return;
    }
    let st2 = state.clone();
    gateway.submit(
        sim,
        FlowId::from_client(client, conn),
        128,
        upstream,
        Box::new(move |sim, result| {
            {
                let mut st = st2.borrow_mut();
                match result {
                    Ok(_) => {
                        st.completed += 1;
                        let now = sim.now();
                        st.series.record_at(now, 1.0);
                    }
                    Err(_) => st.dropped += 1,
                }
            }
            // A dropped client was disconnected; it reconnects only after
            // a full timeout (the paper's clients mostly stay disconnected).
            let delay = if result_is_err(&result) {
                SimDuration::from_secs(1)
            } else {
                SimDuration::ZERO
            };
            sim.schedule_after(delay, move |sim| client_loop(&st2, sim, client, conn));
        }),
    );
}

fn result_is_err<T, E>(r: &Result<T, E>) -> bool {
    r.is_err()
}

/// Runs one design's ramp and returns its trace.
///
/// `ramp_every` seconds a new client joins, up to `max_clients`; the run
/// lasts `duration` of virtual time, sampled every second.
fn run_trace(
    kind: GatewayKind,
    name: &str,
    autoscale: bool,
    max_clients: u32,
    ramp_every: SimDuration,
    duration: SimDuration,
) -> Fig14Trace {
    let mut sim = Sim::new();
    let cfg = GatewayConfig {
        kind,
        // The fixed-pool baseline gets all cores up front (the paper's
        // K-Ingress "quickly overloaded after using up all CPU cores").
        initial_workers: if autoscale { 1 } else { 8 },
        autoscale: autoscale.then(|| AutoscaleConfig {
            max_workers: 8,
            ..AutoscaleConfig::default()
        }),
        autoscale_interval: SimDuration::from_millis(500),
        max_backlog: SimDuration::from_millis(1),
        ..GatewayConfig::default()
    };
    let gateway = Gateway::new(cfg);
    gateway.start_autoscaler(&mut sim);
    let worker_cost = gateway.worker_side_cost();
    let stop_at = SimTime::ZERO + duration;
    let state = Rc::new(RefCell::new(RampState {
        gateway: gateway.clone(),
        upstream: fig13::worker_upstream(kind, worker_cost),
        series: TimeSeries::new(SimDuration::from_secs(1)),
        stop_at,
        completed: 0,
        dropped: 0,
    }));
    // Ramp: client c joins at c * ramp_every, opening all its connections.
    for c in 0..max_clients {
        let st = state.clone();
        sim.schedule_at(SimTime::ZERO + ramp_every * c as u64, move |sim| {
            for conn in 0..CONNS_PER_CLIENT {
                client_loop(&st, sim, c, conn);
            }
        });
    }
    // Sample CPU usage every second.
    let cpu_samples: Rc<RefCell<Vec<(f64, f64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
    fn sample(
        gw: Gateway,
        out: Rc<RefCell<Vec<(f64, f64, usize)>>>,
        sim: &mut Sim,
        last: SimTime,
        stop: SimTime,
    ) {
        let now = sim.now();
        let busy = gw.utilization_cores(last, now);
        out.borrow_mut()
            .push((now.as_secs_f64(), busy, gw.active_workers()));
        if now < stop {
            let gw2 = gw.clone();
            let out2 = out.clone();
            sim.schedule_after(SimDuration::from_secs(1), move |sim| {
                sample(gw2, out2, sim, now, stop);
            });
        }
    }
    {
        let gw = gateway.clone();
        let out = cpu_samples.clone();
        sim.schedule_after(SimDuration::from_secs(1), move |sim| {
            sample(gw, out, sim, SimTime::ZERO, stop_at);
        });
    }
    sim.run_until(stop_at + SimDuration::from_secs(1));

    let (rps_points, completed, dropped) = {
        let mut st = state.borrow_mut();
        st.series.roll_to(stop_at);
        (st.series.points().to_vec(), st.completed, st.dropped)
    };
    let cpu = cpu_samples.borrow();
    let samples = rps_points
        .iter()
        .map(|&(t, rps)| {
            let (cpu_cores, workers) = cpu
                .iter()
                .min_by(|a, b| {
                    (a.0 - t)
                        .abs()
                        .partial_cmp(&(b.0 - t).abs())
                        .expect("finite")
                })
                .map(|&(_, c, w)| (c, w))
                .unwrap_or((0.0, 0));
            Fig14Sample {
                at_secs: t,
                rps,
                cpu_cores,
                workers,
            }
        })
        .collect();
    Fig14Trace {
        ingress: name.to_string(),
        samples,
        total_completed: completed,
        total_dropped: dropped,
    }
}

/// Runs the ramp for the three designs (`seconds` of virtual time).
pub fn run(seconds: u64) -> Fig14 {
    let duration = SimDuration::from_secs(seconds);
    let ramp = SimDuration::from_secs((seconds / 8).max(1));
    Fig14 {
        traces: vec![
            run_trace(GatewayKind::Nadino, "NADINO", true, 8, ramp, duration),
            run_trace(GatewayKind::FIngress, "F-Ingress", true, 8, ramp, duration),
            run_trace(GatewayKind::KIngress, "K-Ingress", false, 8, ramp, duration),
        ],
    }
}

impl Fig14 {
    /// Looks up one trace.
    pub fn trace(&self, name: &str) -> Option<&Fig14Trace> {
        self.traces.iter().find(|t| t.ingress == name)
    }

    /// Renders time series as a text table (one row per sample).
    pub fn render(&self) -> String {
        let mut rows = Vec::new();
        for t in &self.traces {
            for s in &t.samples {
                rows.push(vec![
                    t.ingress.clone(),
                    fmt_f64(s.at_secs),
                    fmt_f64(s.rps),
                    fmt_f64(s.cpu_cores),
                    s.workers.to_string(),
                ]);
            }
        }
        let mut out = render_table(
            "Fig. 14 - ingress horizontal scaling (1 client added per ramp step)",
            &["ingress", "t_s", "rps", "cpu_cores", "workers"],
            &rows,
        );
        for t in &self.traces {
            out.push_str(&format!(
                "{}: completed={} dropped={}\n",
                t.ingress, t.total_completed, t.total_dropped
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn fig() -> &'static Fig14 {
        static FIG: OnceLock<Fig14> = OnceLock::new();
        FIG.get_or_init(|| run(24))
    }

    #[test]
    fn nadino_scales_workers_with_load() {
        let fig = fig();
        let t = fig.trace("NADINO").unwrap();
        let first = t.samples.first().unwrap().workers;
        let peak = t.samples.iter().map(|s| s.workers).max().unwrap();
        assert!(
            peak > first,
            "workers must grow under ramp: {first} -> {peak}"
        );
    }

    #[test]
    fn nadino_beats_k_ingress_by_over_5x_in_total_rps() {
        let fig = fig();
        let n = fig.trace("NADINO").unwrap().total_completed;
        let k = fig.trace("K-Ingress").unwrap().total_completed;
        assert!(
            n as f64 / k as f64 > 5.0,
            "NADINO {n} vs K-Ingress {k} (paper: >5x)"
        );
    }

    #[test]
    fn k_ingress_drops_clients_under_overload() {
        let fig = fig();
        let k = fig.trace("K-Ingress").unwrap();
        assert!(k.total_dropped > 0, "K-Ingress must disconnect clients");
        let n = fig.trace("NADINO").unwrap();
        assert!(
            n.total_dropped * 100 < n.total_completed,
            "NADINO drops must be rare: {} vs {}",
            n.total_dropped,
            n.total_completed
        );
    }

    #[test]
    fn nadino_uses_less_cpu_than_k_ingress() {
        let fig = fig();
        let avg = |name: &str| {
            let t = fig.trace(name).unwrap();
            t.samples.iter().map(|s| s.cpu_cores).sum::<f64>() / t.samples.len() as f64
        };
        let n = avg("NADINO");
        let k = avg("K-Ingress");
        assert!(n < k, "NADINO cpu {n} must be below K-Ingress {k}");
    }
}
