//! BENCH upgrade — rolling DNE upgrade wave under live traffic.
//!
//! Runs the fig16 boutique topology (hotspot placement on nodes 0/1,
//! standbys on node 2) three times on the same seed:
//!
//! - `baseline`: fault-free, every node stays at wire v1;
//! - `wave`: a rolling v1→v2 upgrade wave drains, upgrades and restores
//!   each node in turn while a compliant tenant and a 3x-rate rogue
//!   tenant keep driving traffic through the real version skew;
//! - `wave+crash`: the same wave with a node-1 outage window landing
//!   inside it, so the controller, health monitor and fault plane
//!   contend for the same node.
//!
//! The contrast quantifies the lifecycle controller's claim: a full
//! rolling upgrade costs zero hung requests and bounded compliant-tenant
//! goodput loss (the CI gate holds the `wave+crash` row to >= 80% of the
//! baseline row). Each row folds its integer outcome into an FNV-1a
//! digest; the run repeats the `wave+crash` row same-seed and reports
//! whether the digests were byte-identical, which the regress gate
//! enforces against the committed baseline.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use ingress::gateway::Reply;
use ingress::rss::FlowId;
use ingress::{AdmissionConfig, DeliveryFailed, Gateway, GatewayConfig};
use membuf::tenant::TenantId;
use rdma_sim::FaultPlane;
use runtime::ChainSpec;
use simcore::{Sim, SimDuration, SimTime};

use crate::boutique;
use crate::cluster::{Cluster, ClusterConfig};
use crate::fleetctl::{FleetConfig, FleetController};
use crate::health::HealthConfig;
use crate::report::{fmt_f64, render_table};

/// One scenario's outcome.
#[derive(Debug, Clone)]
pub struct UpgradeRow {
    /// `baseline`, `wave` or `wave+crash`.
    pub scenario: String,
    /// Requests submitted at the gateway (both tenants).
    pub issued: u64,
    /// Requests whose gateway callback fired (completed, shed, expired
    /// or failed — anything but hung).
    pub resolved: u64,
    /// `issued - resolved`: must be zero in every scenario.
    pub hung: u64,
    /// Compliant-tenant completions within deadline.
    pub compliant_ok: u64,
    /// Compliant-tenant requests shed at admission.
    pub compliant_shed: u64,
    /// Rogue-tenant completions.
    pub rogue_ok: u64,
    /// Rogue-tenant requests shed at admission.
    pub rogue_shed: u64,
    /// Packets dropped by the scheduled outage window.
    pub outage_drops: u64,
    /// Upgrade waves driven to completion.
    pub waves_completed: u64,
    /// Nodes drained, upgraded and returned to service.
    pub upgrades_completed: u64,
    /// Drains that quiesced before the deadline.
    pub drains_completed: u64,
    /// Drains that hit the drain deadline and proceeded anyway.
    pub drain_deadline_exceeded: u64,
    /// Route-table rebalances (drain failovers + restores).
    pub rebalances: u64,
    /// Route keys left with no standby during a failover.
    pub stranded_routes: u64,
    /// Final per-node wire versions, e.g. `"2,2,2"`.
    pub final_versions: String,
    /// FNV-1a digest over the full integer outcome, the health and fleet
    /// event logs and the flight-recorder dump. Hex.
    pub digest: String,
}

obs::impl_to_json!(UpgradeRow {
    scenario,
    issued,
    resolved,
    hung,
    compliant_ok,
    compliant_shed,
    rogue_ok,
    rogue_shed,
    outage_drops,
    waves_completed,
    upgrades_completed,
    drains_completed,
    drain_deadline_exceeded,
    rebalances,
    stranded_routes,
    final_versions,
    digest
});

/// The full experiment.
#[derive(Debug, Clone)]
pub struct BenchUpgrade {
    pub rows: Vec<UpgradeRow>,
    /// `wave+crash` compliant goodput as a percentage of baseline.
    pub goodput_retention_pct: f64,
    /// `"stable"` when the repeated same-seed `wave+crash` row
    /// reproduced its digest byte-for-byte, `"UNSTABLE"` otherwise.
    pub determinism: String,
}

obs::impl_to_json!(BenchUpgrade {
    rows,
    goodput_retention_pct,
    determinism
});

/// Root seed, overridable via `UPGRADE_SEED` (decimal or `0x`-prefixed
/// hex) so CI can sweep a seed matrix and assert per-seed byte identity.
fn upgrade_seed(default: u64) -> u64 {
    std::env::var("UPGRADE_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim().to_string();
            match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(default)
}

fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const ROGUE_PER_TICK: u32 = 3;

/// Drives one scenario to completion.
fn scenario(name: &str, seed: u64, ticks: u32, wave: bool, crash: bool) -> UpgradeRow {
    let mut sim = Sim::new();
    let mut cluster = Cluster::new(
        &mut sim,
        ClusterConfig {
            workers: 3,
            ..ClusterConfig::default()
        },
    );
    let tracer = obs::Tracer::enabled();
    cluster.set_tracer(&tracer);
    cluster.enable_trace_pipeline(obs::PipelineConfig {
        tail_k: 8,
        flight_cap: 32,
        burn: None,
    });
    let compliant_t = TenantId(1);
    let rogue_t = TenantId(2);
    cluster.add_tenant(&mut sim, compliant_t, 3).unwrap();
    cluster.add_tenant(&mut sim, rogue_t, 1).unwrap();
    for f in boutique::all_functions() {
        cluster.place_with_backup(f, boutique::hotspot_placement(f), 2);
    }
    cluster.place_with_backup(21, 0, 2);
    cluster.place_with_backup(22, 1, 2);
    let cluster = Rc::new(cluster);
    for idx in 0..3 {
        cluster.set_node_wire_version(idx, obs::CTX_V1);
    }

    let pending: Rc<RefCell<HashMap<u64, Reply>>> = Rc::new(RefCell::new(HashMap::new()));
    let compliant_chain = boutique::home_query(compliant_t);
    let rogue_chain = ChainSpec::new("rogue", rogue_t, vec![21, 22, 21]);
    let on_complete = {
        let pending = pending.clone();
        Rc::new(move |sim: &mut Sim, req: u64| {
            if let Some(reply) = pending.borrow_mut().remove(&req) {
                reply(sim, Ok(64));
            }
        })
    };
    let cost = |f: u16| boutique::exec_cost(f) / 10;
    cluster.register_chain(&compliant_chain, cost, on_complete.clone());
    cluster.register_chain(&rogue_chain, cost, on_complete);
    {
        let pending = pending.clone();
        cluster.set_delivery_failure_handler(Rc::new(move |sim, failure| {
            if let Some(reply) = pending.borrow_mut().remove(&failure.req_id) {
                reply(sim, Err(DeliveryFailed));
            }
        }));
    }

    let mut fp = FaultPlane::new(seed);
    fp.set_default_loss(0.02);
    cluster.fabric.install_fault_plane(fp);
    let drive_start = sim.now();
    if crash {
        let from = drive_start + SimDuration::from_millis(6);
        cluster.fabric.schedule_node_outage(
            cluster.nodes[1].id,
            from,
            from + SimDuration::from_micros(1500),
        );
    }
    let until = drive_start + SimDuration::from_millis(80);
    let monitor = cluster.enable_health_monitor(&mut sim, HealthConfig::default(), until);

    let gateway = Gateway::new(GatewayConfig {
        deadline: Some(SimDuration::from_millis(5)),
        admission: Some(AdmissionConfig {
            target: SimDuration::from_micros(300),
            interval: SimDuration::from_millis(1),
            retry_after_secs: 1,
        }),
        max_backlog: SimDuration::from_secs(10),
        ..GatewayConfig::default()
    });
    gateway.set_tracer(tracer.clone());
    gateway.register_tenant(compliant_t.0, 3);
    gateway.register_tenant(rogue_t.0, 1);
    {
        let gw = gateway.clone();
        monitor.set_capacity_handler(Rc::new(move |_sim, f| gw.set_capacity_factor(f)));
    }

    let ctl = FleetController::install(&cluster, &monitor, FleetConfig::default());
    if wave {
        let ctl2 = ctl.clone();
        sim.schedule_after(SimDuration::from_millis(4), move |sim| {
            ctl2.start_upgrade_wave(sim, obs::CTX_V2);
        });
    }

    let upstream_for = |chain: ChainSpec| -> ingress::Upstream {
        let cluster = cluster.clone();
        let pending = pending.clone();
        Rc::new(move |sim: &mut Sim, ctx: ingress::ReqCtx, reply: Reply| {
            let injected = if ctx.deadline_ns != 0 {
                cluster.inject_with_deadline(
                    sim,
                    &chain,
                    ctx.req_id,
                    boutique::PAYLOAD_BYTES,
                    SimTime::from_nanos(ctx.deadline_ns),
                )
            } else {
                cluster.inject(sim, &chain, ctx.req_id, boutique::PAYLOAD_BYTES)
            };
            if injected {
                pending.borrow_mut().insert(ctx.req_id, reply);
            } else {
                reply(sim, Err(DeliveryFailed));
            }
        })
    };
    let compliant_up = upstream_for(compliant_chain);
    let rogue_up = upstream_for(rogue_chain);

    let issued = Rc::new(Cell::new(0u64));
    let resolved = Rc::new(Cell::new(0u64));
    let submit = |sim: &mut Sim, tenant: u16, flow: u32, up: &ingress::Upstream| {
        issued.set(issued.get() + 1);
        let resolved = resolved.clone();
        gateway.submit_tenant(
            sim,
            tenant,
            FlowId::from_client(flow, 0),
            64,
            up.clone(),
            Box::new(move |_sim, _r| resolved.set(resolved.get() + 1)),
        );
    };
    for tick in 0..ticks {
        submit(&mut sim, compliant_t.0, tick, &compliant_up);
        for k in 0..ROGUE_PER_TICK {
            submit(
                &mut sim,
                rogue_t.0,
                100_000 + tick * ROGUE_PER_TICK + k,
                &rogue_up,
            );
        }
        sim.run_for(SimDuration::from_micros(50));
    }
    sim.run();

    let cs = gateway.tenant_stats(compliant_t.0);
    let rs = gateway.tenant_stats(rogue_t.0);
    let counters = ctl.counters();
    let versions: Vec<u8> = cluster.nodes.iter().map(|n| n.dne.wire_version()).collect();
    let dump = cluster
        .with_trace_pipeline(|p| p.last_dump().map(|d| d.to_string_compact()))
        .unwrap()
        .unwrap_or_default();
    let health: String = monitor
        .events()
        .iter()
        .map(|e| format!("{}:{:?}->{:?}@{};", e.node.0, e.from, e.to, e.at.as_nanos()))
        .collect();
    let fleet_log = format!("{:?}", ctl.events());
    let outage_drops = cluster.fabric.fault_stats().outage_drops;
    let ints: [u64; 16] = [
        issued.get(),
        resolved.get(),
        cs.completed,
        cs.shed,
        cs.expired,
        cs.failed,
        rs.completed,
        rs.shed,
        rs.expired,
        rs.failed,
        outage_drops,
        counters.upgrades_completed,
        counters.rebalances,
        counters.stranded_routes,
        versions.iter().map(|&v| v as u64).sum(),
        sim.now().as_nanos(),
    ];
    let digest = fnv1a(
        ints.iter()
            .flat_map(|v| v.to_le_bytes())
            .chain(health.bytes())
            .chain(fleet_log.bytes())
            .chain(dump.bytes()),
    );
    UpgradeRow {
        scenario: name.to_string(),
        issued: issued.get(),
        resolved: resolved.get(),
        hung: issued.get() - resolved.get(),
        compliant_ok: cs.completed,
        compliant_shed: cs.shed,
        rogue_ok: rs.completed,
        rogue_shed: rs.shed,
        outage_drops,
        waves_completed: counters.waves_completed,
        upgrades_completed: counters.upgrades_completed,
        drains_completed: counters.drains_completed,
        drain_deadline_exceeded: counters.drain_deadline_exceeded,
        rebalances: counters.rebalances,
        stranded_routes: counters.stranded_routes,
        final_versions: versions
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(","),
        digest: format!("{digest:016x}"),
    }
}

/// Runs all three scenarios plus the same-seed determinism repeat.
pub fn run(quick: bool) -> BenchUpgrade {
    let seed = upgrade_seed(0xC4A0);
    let ticks = if quick { 150 } else { 400 };
    let rows = vec![
        scenario("baseline", seed, ticks, false, false),
        scenario("wave", seed, ticks, true, false),
        scenario("wave+crash", seed, ticks, true, true),
    ];
    let repeat = scenario("wave+crash", seed, ticks, true, true);
    let chaotic = &rows[2];
    let determinism = if chaotic.digest == repeat.digest {
        format!("stable ({})", repeat.digest)
    } else {
        format!("UNSTABLE ({} != {})", chaotic.digest, repeat.digest)
    };
    let goodput_retention_pct = if rows[0].compliant_ok > 0 {
        chaotic.compliant_ok as f64 / rows[0].compliant_ok as f64 * 100.0
    } else {
        0.0
    };
    BenchUpgrade {
        rows,
        goodput_retention_pct,
        determinism,
    }
}

impl BenchUpgrade {
    /// Renders the experiment as a text table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.scenario.clone(),
                    r.issued.to_string(),
                    r.hung.to_string(),
                    r.compliant_ok.to_string(),
                    r.compliant_shed.to_string(),
                    r.rogue_ok.to_string(),
                    r.rogue_shed.to_string(),
                    r.upgrades_completed.to_string(),
                    r.drain_deadline_exceeded.to_string(),
                    r.rebalances.to_string(),
                    r.final_versions.clone(),
                ]
            })
            .collect();
        let mut text = render_table(
            "BENCH upgrade - rolling wave under live traffic",
            &[
                "scenario",
                "issued",
                "hung",
                "ok",
                "shed",
                "rogue_ok",
                "rogue_shed",
                "upgrades",
                "ddl_exceeded",
                "rebalances",
                "versions",
            ],
            &rows,
        );
        text.push_str(&format!(
            "compliant goodput retention (wave+crash vs baseline): {}%\n",
            fmt_f64(self.goodput_retention_pct)
        ));
        text.push_str(&format!("determinism: {}\n", self.determinism));
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_holds_the_acceptance_bars() {
        let bench = run(true);
        assert_eq!(bench.rows.len(), 3);
        for row in &bench.rows {
            assert_eq!(row.hung, 0, "{}: hung requests", row.scenario);
        }
        let baseline = &bench.rows[0];
        let chaotic = &bench.rows[2];
        assert_eq!(baseline.final_versions, "1,1,1");
        assert_eq!(baseline.upgrades_completed, 0);
        assert_eq!(chaotic.final_versions, "2,2,2");
        assert_eq!(chaotic.waves_completed, 1);
        assert_eq!(chaotic.upgrades_completed, 3);
        assert!(chaotic.outage_drops > 0, "crash window never fired");
        assert!(
            bench.goodput_retention_pct >= 80.0,
            "retention {}%",
            bench.goodput_retention_pct
        );
        assert!(
            bench.determinism.starts_with("stable"),
            "{}",
            bench.determinism
        );
        let rendered = bench.render();
        assert!(rendered.contains("wave+crash"));
    }
}
