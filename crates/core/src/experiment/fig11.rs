//! Fig. 11 — off-path DNE (cross-processor shared memory) vs. on-path DNE.
//!
//! An echo function pair across two worker nodes, once with the off-path
//! engine (RNIC DMA straight to host memory) and once with the on-path
//! engine (payloads staged in DPU memory through the slow SoC DMA, plus
//! the engine work to program each transfer). Two sweeps:
//!
//! 1. RPS across payload sizes on a single connection;
//! 2. RPS across concurrency levels at 1 KiB payloads.
//!
//! Paper targets: off-path wins up to ~30% RPS with > 20% lower latency,
//! and the gap widens with concurrency as the SoC DMA engine saturates.

use dne::types::DneConfig;
use membuf::tenant::TenantId;
use runtime::ChainSpec;
use simcore::{Sim, SimDuration};

use crate::cluster::{Cluster, ClusterConfig};
use crate::experiment::parallel::pmap;
use crate::report::{fmt_f64, render_table};
use crate::workload::ClosedLoop;

/// One measured cell.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    pub mode: String,
    pub payload: usize,
    pub concurrency: usize,
    pub mean_us: f64,
    pub rps: f64,
}

obs::impl_to_json!(Fig11Row {
    mode,
    payload,
    concurrency,
    mean_us,
    rps
});

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig11 {
    pub payload_sweep: Vec<Fig11Row>,
    pub concurrency_sweep: Vec<Fig11Row>,
}

obs::impl_to_json!(Fig11 {
    payload_sweep,
    concurrency_sweep
});

/// Payload sizes of sweep (1).
pub const PAYLOADS: [usize; 4] = [64, 512, 1024, 4096];

/// Concurrency levels of sweep (2).
pub const CONCURRENCY: [usize; 4] = [1, 4, 16, 64];

fn run_one(cfg: DneConfig, payload: usize, clients: usize, millis: u64) -> (f64, f64) {
    let mut sim = Sim::new();
    let mut cluster = Cluster::new(
        &mut sim,
        ClusterConfig {
            dne: cfg,
            ..ClusterConfig::default()
        },
    );
    let tenant = TenantId(1);
    cluster.add_tenant(&mut sim, tenant, 1).unwrap();
    let chain = ChainSpec::new("echo", tenant, vec![1, 2, 1]);
    cluster.place(1, 0);
    cluster.place(2, 1);
    let stop = sim.now() + SimDuration::from_millis(millis);
    let driver = ClosedLoop::new(stop);
    // The echo pair performs light application work per hop, as real
    // functions would; the data-plane difference rides on top of it.
    cluster.register_chain(
        &chain,
        |_| SimDuration::from_micros(25),
        driver.completion(),
    );
    driver.start(&mut sim, &cluster, &chain, clients, payload);
    sim.run();
    (driver.latency().mean().as_micros_f64(), driver.rps())
}

/// Runs both sweeps with `millis` of virtual time per cell.
pub fn run(millis: u64) -> Fig11 {
    run_jobs(millis, 1)
}

/// Same experiment with all sixteen independent sweep points (each a
/// fresh `Sim`) fanned out across `jobs` threads; row order in both
/// panels matches the sequential run exactly.
pub fn run_jobs(millis: u64, jobs: usize) -> Fig11 {
    let modes = [
        (DneConfig::nadino_dne(), "off-path"),
        (DneConfig::on_path_dne(), "on-path"),
    ];
    let mut cells: Vec<Box<dyn FnOnce() -> Fig11Row + Send>> = Vec::new();
    for (cfg, name) in &modes {
        for payload in PAYLOADS {
            let cfg = cfg.clone();
            cells.push(Box::new(move || {
                let (mean_us, rps) = run_one(cfg, payload, 1, millis);
                Fig11Row {
                    mode: name.to_string(),
                    payload,
                    concurrency: 1,
                    mean_us,
                    rps,
                }
            }));
        }
    }
    for (cfg, name) in &modes {
        for clients in CONCURRENCY {
            let cfg = cfg.clone();
            cells.push(Box::new(move || {
                let (mean_us, rps) = run_one(cfg, 1024, clients, millis);
                Fig11Row {
                    mode: name.to_string(),
                    payload: 1024,
                    concurrency: clients,
                    mean_us,
                    rps,
                }
            }));
        }
    }
    let mut rows = pmap(cells, jobs);
    let concurrency_sweep = rows.split_off(PAYLOADS.len() * modes.len());
    Fig11 {
        payload_sweep: rows,
        concurrency_sweep,
    }
}

impl Fig11 {
    fn find<'a>(rows: &'a [Fig11Row], mode: &str, key: usize, by_payload: bool) -> &'a Fig11Row {
        rows.iter()
            .find(|r| {
                r.mode == mode
                    && if by_payload {
                        r.payload == key
                    } else {
                        r.concurrency == key
                    }
            })
            .expect("cell present")
    }

    /// Off-path / on-path RPS ratio in the concurrency sweep.
    pub fn rps_gain_at(&self, concurrency: usize) -> f64 {
        let off = Self::find(&self.concurrency_sweep, "off-path", concurrency, false);
        let on = Self::find(&self.concurrency_sweep, "on-path", concurrency, false);
        off.rps / on.rps
    }

    /// Latency reduction (1 - off/on) in the payload sweep.
    pub fn latency_reduction_at(&self, payload: usize) -> f64 {
        let off = Self::find(&self.payload_sweep, "off-path", payload, true);
        let on = Self::find(&self.payload_sweep, "on-path", payload, true);
        1.0 - off.mean_us / on.mean_us
    }

    /// Renders both panels as text tables.
    pub fn render(&self) -> String {
        let render_rows = |rows: &[Fig11Row]| -> Vec<Vec<String>> {
            rows.iter()
                .map(|r| {
                    vec![
                        r.mode.clone(),
                        r.payload.to_string(),
                        r.concurrency.to_string(),
                        fmt_f64(r.mean_us),
                        fmt_f64(r.rps),
                    ]
                })
                .collect()
        };
        let mut out = render_table(
            "Fig. 11 (1) - off-path vs on-path, payload sweep (1 connection)",
            &["mode", "payload_B", "conc", "mean_us", "rps"],
            &render_rows(&self.payload_sweep),
        );
        out.push('\n');
        out.push_str(&render_table(
            "Fig. 11 (2) - off-path vs on-path, concurrency sweep (1 KiB)",
            &["mode", "payload_B", "conc", "mean_us", "rps"],
            &render_rows(&self.concurrency_sweep),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_path_wins_and_gap_grows_with_concurrency() {
        let fig = run(40);
        let low = fig.rps_gain_at(1);
        let high = fig.rps_gain_at(64);
        assert!(
            low > 1.0,
            "off-path must win even at low concurrency: {low}"
        );
        assert!(
            high > low,
            "the gap must widen as the SoC DMA saturates: {low} -> {high}"
        );
        assert!(
            (1.1..=1.5).contains(&high),
            "off-path gain at 64 conns = {high} (paper: up to ~1.3x)"
        );
    }

    #[test]
    fn off_path_cuts_latency() {
        let fig = run(40);
        for payload in PAYLOADS {
            let cut = fig.latency_reduction_at(payload);
            assert!(
                (0.03..=0.45).contains(&cut),
                "latency reduction at {payload}B = {cut} (paper: >20% under load)"
            );
        }
    }

    #[test]
    fn renders_both_panels() {
        let fig = run(10);
        let text = fig.render();
        assert!(text.contains("payload sweep"));
        assert!(text.contains("concurrency sweep"));
        assert_eq!(fig.payload_sweep.len(), 8);
        assert_eq!(fig.concurrency_sweep.len(), 8);
    }
}
