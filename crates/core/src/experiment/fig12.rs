//! Fig. 12 — selection of RDMA primitives.
//!
//! Two DNE-grade endpoints on different worker nodes act as an echo
//! client/server pair with one core each; we compare two-sided RDMA
//! against OWDL (one-sided write + distributed locks) and OWRC (one-sided
//! write + receiver-side copy, Best/Worst cache variants) across payload
//! sizes, reporting mean end-to-end latency and throughput.
//!
//! Paper targets: two-sided ≈ 8.4 µs at 64 B and 11.6 µs at 4 KiB; at
//! 4 KiB two-sided beats OWRC-Best 1.3×, OWRC-Worst 1.5× and OWDL 2.3× in
//! latency, and is ≥ 2.1× OWDL in throughput.

use baselines::{run_echo, EchoConfig, Primitive};

use crate::experiment::parallel::pmap;
use crate::report::{fmt_f64, render_table};

/// One measured cell of the figure.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    pub primitive: String,
    pub payload: usize,
    pub mean_us: f64,
    pub p99_us: f64,
    pub rps: f64,
}

obs::impl_to_json!(Fig12Row {
    primitive,
    payload,
    mean_us,
    p99_us,
    rps
});

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig12 {
    pub rows: Vec<Fig12Row>,
}

obs::impl_to_json!(Fig12 { rows });

/// Payload sizes swept (bytes).
pub const PAYLOADS: [usize; 4] = [64, 256, 1024, 4096];

/// The primitives compared, in the paper's order.
pub const PRIMITIVES: [(Primitive, &str); 4] = [
    (Primitive::TwoSided, "NADINO (two-sided)"),
    (Primitive::OwrcBest, "OWRC-Best"),
    (Primitive::OwrcWorst, "OWRC-Worst"),
    (Primitive::Owdl, "OWDL"),
];

/// One cell: latency (window 1) and throughput (window 8) runs.
fn cell(primitive: Primitive, name: &str, payload: usize, requests: u64) -> Fig12Row {
    let lat = run_echo(EchoConfig {
        primitive,
        payload,
        window: 1,
        requests,
        ..EchoConfig::default()
    });
    // Throughput: a window of 8 keeps the pipe full.
    let thr = run_echo(EchoConfig {
        primitive,
        payload,
        window: 8,
        requests,
        ..EchoConfig::default()
    });
    Fig12Row {
        primitive: name.to_string(),
        payload,
        mean_us: lat.latency.mean().as_micros_f64(),
        p99_us: lat.latency.percentile(99.0).as_micros_f64(),
        rps: thr.rps,
    }
}

/// Runs the experiment with `requests` echoes per cell.
pub fn run(requests: u64) -> Fig12 {
    run_jobs(requests, 1)
}

/// Same experiment with the sixteen independent cells fanned out across
/// `jobs` threads; row order matches the sequential run exactly.
pub fn run_jobs(requests: u64, jobs: usize) -> Fig12 {
    let mut cells: Vec<Box<dyn FnOnce() -> Fig12Row + Send>> = Vec::new();
    for (primitive, name) in PRIMITIVES {
        for payload in PAYLOADS {
            cells.push(Box::new(move || cell(primitive, name, payload, requests)));
        }
    }
    Fig12 {
        rows: pmap(cells, jobs),
    }
}

impl Fig12 {
    /// Returns the mean latency for `(primitive name, payload)`.
    pub fn mean_us(&self, primitive: &str, payload: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.primitive == primitive && r.payload == payload)
            .map(|r| r.mean_us)
    }

    /// Returns the throughput for `(primitive name, payload)`.
    pub fn rps(&self, primitive: &str, payload: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.primitive == primitive && r.payload == payload)
            .map(|r| r.rps)
    }

    /// Renders the figure as a text table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.primitive.clone(),
                    r.payload.to_string(),
                    fmt_f64(r.mean_us),
                    fmt_f64(r.p99_us),
                    fmt_f64(r.rps),
                ]
            })
            .collect();
        render_table(
            "Fig. 12 - RDMA primitive selection (echo, 2 nodes, 1 core each)",
            &["primitive", "payload_B", "mean_us", "p99_us", "rps"],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_shape() {
        let fig = run(400);
        let two64 = fig.mean_us("NADINO (two-sided)", 64).unwrap();
        let two4k = fig.mean_us("NADINO (two-sided)", 4096).unwrap();
        assert!((7.0..=10.0).contains(&two64), "64B = {two64}us (paper 8.4)");
        assert!(
            (10.0..=13.5).contains(&two4k),
            "4KB = {two4k}us (paper 11.6)"
        );

        let owdl4k = fig.mean_us("OWDL", 4096).unwrap();
        let best4k = fig.mean_us("OWRC-Best", 4096).unwrap();
        let worst4k = fig.mean_us("OWRC-Worst", 4096).unwrap();
        assert!(
            (1.8..=3.0).contains(&(owdl4k / two4k)),
            "OWDL ratio {}",
            owdl4k / two4k
        );
        assert!(best4k > two4k && best4k < worst4k && worst4k < owdl4k);

        // Throughput: two-sided beats OWDL by > 2.1x, and the full
        // ordering of Fig. 12 (2) holds.
        let t = fig.rps("NADINO (two-sided)", 1024).unwrap();
        let b = fig.rps("OWRC-Best", 1024).unwrap();
        let w = fig.rps("OWRC-Worst", 1024).unwrap();
        let o = fig.rps("OWDL", 1024).unwrap();
        assert!(t / o > 2.1, "throughput ratio = {}", t / o);
        assert!(t > b && b >= w && w > o, "ordering: {t} > {b} >= {w} > {o}");
    }

    #[test]
    fn render_contains_all_cells() {
        let fig = run(50);
        let text = fig.render();
        assert_eq!(fig.rows.len(), 16);
        assert!(text.contains("OWDL"));
        assert!(text.contains("4096"));
    }
}
