//! Fig. 9 — viable communication channels between DPU and host.
//!
//! Multiple host functions issue back-to-back 16-byte descriptor echoes to
//! a single-core DNE on the DPU; we compare Comch-E (event-driven epoll),
//! Comch-P (busy-polling producer-consumer ring, whose progress-engine
//! cost grows with the number of monitored endpoints) and a kernel TCP
//! loopback baseline, sweeping the number of functions.
//!
//! Paper targets: Comch-P cuts latency > 8× vs TCP but overloads beyond
//! ~6 functions; Comch-E is 2.7–3.8× better than TCP and stays stable.

use std::cell::RefCell;
use std::rc::Rc;

use dpu_sim::comch::{ChannelKind, ComchCosts};
use dpu_sim::soc::{Processor, ProcessorKind};
use simcore::{Histogram, Sim, SimTime};

use crate::experiment::parallel::pmap;
use crate::report::{fmt_f64, render_table};

/// One measured cell.
#[derive(Debug, Clone)]
pub struct Fig09Row {
    pub channel: String,
    pub functions: usize,
    pub mean_rtt_us: f64,
    pub total_rps: f64,
}

obs::impl_to_json!(Fig09Row {
    channel,
    functions,
    mean_rtt_us,
    total_rps
});

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig09 {
    pub rows: Vec<Fig09Row>,
}

obs::impl_to_json!(Fig09 { rows });

/// Function counts swept.
pub const FUNCTION_COUNTS: [usize; 5] = [1, 2, 4, 6, 8];

/// The channels compared.
pub const CHANNELS: [(ChannelKind, &str); 3] = [
    (ChannelKind::ComchP, "Comch-P"),
    (ChannelKind::ComchE, "Comch-E"),
    (ChannelKind::Tcp, "TCP"),
];

struct EchoState {
    dne: Processor,
    costs: ComchCosts,
    functions: usize,
    completed: u64,
    target: u64,
    hist: Histogram,
    ended: SimTime,
}

/// One closed-loop descriptor echo through the single-core DNE.
fn issue(state: &Rc<RefCell<EchoState>>, sim: &mut Sim) {
    let (service_done, latency) = {
        let mut st = state.borrow_mut();
        if st.completed >= st.target {
            return;
        }
        // Host-side send cost is on the function's own core; we charge only
        // the channel latency here plus the DNE's per-descriptor service.
        let service = st
            .costs
            .dne_service(st.functions)
            .mul_f64(ProcessorKind::DpuArm.default_factor());
        let latency = st.costs.one_way_latency;
        let arrive = sim.now() + latency;
        let done = st.dne.run_unscaled(arrive, service);
        (done, latency)
    };
    let began = sim.now();
    let st2 = state.clone();
    sim.schedule_at(service_done + latency, move |sim| {
        {
            let mut st = st2.borrow_mut();
            st.hist.record(sim.now().saturating_since(began));
            st.completed += 1;
            st.ended = sim.now();
        }
        issue(&st2, sim);
    });
}

/// One sweep cell: `functions` echo loops over one channel kind.
fn cell(kind: ChannelKind, name: &str, functions: usize, per_function: u64) -> Fig09Row {
    let costs = ComchCosts::for_kind(kind);
    let state = Rc::new(RefCell::new(EchoState {
        dne: Processor::new(ProcessorKind::DpuArm, 1),
        costs,
        functions,
        completed: 0,
        target: per_function * functions as u64,
        hist: Histogram::new(),
        ended: SimTime::ZERO,
    }));
    let mut sim = Sim::new();
    for _ in 0..functions {
        issue(&state, &mut sim);
    }
    sim.run();
    let st = state.borrow();
    let secs = st.ended.as_secs_f64();
    Fig09Row {
        channel: name.to_string(),
        functions,
        mean_rtt_us: st.hist.mean().as_micros_f64(),
        total_rps: if secs > 0.0 {
            st.completed as f64 / secs
        } else {
            0.0
        },
    }
}

/// Runs the experiment with `per_function` echoes per function.
pub fn run(per_function: u64) -> Fig09 {
    run_jobs(per_function, 1)
}

/// Same experiment with the fifteen independent cells fanned out across
/// `jobs` threads; row order matches the sequential run exactly.
pub fn run_jobs(per_function: u64, jobs: usize) -> Fig09 {
    let mut cells: Vec<Box<dyn FnOnce() -> Fig09Row + Send>> = Vec::new();
    for (kind, name) in CHANNELS {
        for functions in FUNCTION_COUNTS {
            cells.push(Box::new(move || cell(kind, name, functions, per_function)));
        }
    }
    Fig09 {
        rows: pmap(cells, jobs),
    }
}

impl Fig09 {
    /// Looks up a row.
    pub fn get(&self, channel: &str, functions: usize) -> Option<&Fig09Row> {
        self.rows
            .iter()
            .find(|r| r.channel == channel && r.functions == functions)
    }

    /// Renders the figure as a text table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.channel.clone(),
                    r.functions.to_string(),
                    fmt_f64(r.mean_rtt_us),
                    fmt_f64(r.total_rps),
                ]
            })
            .collect();
        render_table(
            "Fig. 9 - DPU-host descriptor channels (single-core DNE)",
            &["channel", "functions", "mean_rtt_us", "total_rps"],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comch_p_beats_tcp_by_over_8x_at_low_function_counts() {
        let fig = run(400);
        let p = fig.get("Comch-P", 1).unwrap().mean_rtt_us;
        let tcp = fig.get("TCP", 1).unwrap().mean_rtt_us;
        assert!(tcp / p > 8.0, "TCP {tcp}us / Comch-P {p}us = {}", tcp / p);
    }

    #[test]
    fn comch_e_beats_tcp_by_about_3x_and_is_stable() {
        let fig = run(400);
        for n in FUNCTION_COUNTS {
            let e = fig.get("Comch-E", n).unwrap().mean_rtt_us;
            let tcp = fig.get("TCP", n).unwrap().mean_rtt_us;
            let ratio = tcp / e;
            assert!(
                (2.0..=4.5).contains(&ratio),
                "TCP/Comch-E at {n} functions = {ratio}"
            );
        }
        // Stability: Comch-E RTT grows only mildly with function count.
        let e1 = fig.get("Comch-E", 1).unwrap().mean_rtt_us;
        let e8 = fig.get("Comch-E", 8).unwrap().mean_rtt_us;
        assert!(e8 / e1 < 2.5, "Comch-E must stay stable: {e1} -> {e8}");
    }

    #[test]
    fn comch_p_overloads_beyond_six_functions() {
        let fig = run(400);
        // Comch-P wins below ~6 functions but loses to Comch-E at 8.
        let p2 = fig.get("Comch-P", 2).unwrap().mean_rtt_us;
        let e2 = fig.get("Comch-E", 2).unwrap().mean_rtt_us;
        assert!(p2 < e2, "Comch-P fastest at low counts ({p2} vs {e2})");
        let p8 = fig.get("Comch-P", 8).unwrap();
        let e8 = fig.get("Comch-E", 8).unwrap();
        assert!(
            p8.total_rps < e8.total_rps,
            "Comch-P throughput collapses past 6 functions ({} vs {})",
            p8.total_rps,
            e8.total_rps
        );
    }

    #[test]
    fn all_cells_present() {
        let fig = run(50);
        assert_eq!(fig.rows.len(), 15);
        assert!(fig.render().contains("Comch-P"));
    }
}
