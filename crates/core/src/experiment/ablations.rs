//! Ablations of NADINO's design choices (beyond the paper's figures).
//!
//! Each sweep varies one knob of the real system and measures the end-to-
//! end effect, quantifying the design decisions DESIGN.md calls out:
//!
//! - **wimpy factor**: how slow may the DPU core get before the DNE stops
//!   beating the CNE on the Boutique workload;
//! - **connections per peer**: the value of the least-congested pick over
//!   a pool of RC connections;
//! - **DWRR quantum**: fairness error as the scheduling granularity grows;
//! - **pre-post depth**: receive-buffer headroom vs RNR stalls.

use dne::types::{DneConfig, SchedPolicy};
use membuf::tenant::TenantId;
use runtime::ChainSpec;
use simcore::{Sim, SimDuration};

use crate::boutique;
use crate::cluster::{Cluster, ClusterConfig};
use crate::experiment::fig15;
use crate::report::{fmt_f64, render_table};
use crate::workload::ClosedLoop;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct AblationRow {
    pub sweep: String,
    pub setting: String,
    pub metric: String,
    pub value: f64,
}

obs::impl_to_json!(AblationRow {
    sweep,
    setting,
    metric,
    value
});

/// The full ablation report.
#[derive(Debug, Clone)]
pub struct Ablations {
    pub rows: Vec<AblationRow>,
}

obs::impl_to_json!(Ablations { rows });

/// Boutique Home Query RPS for a given engine config (`millis` budget).
fn boutique_rps(cfg: DneConfig, clients: usize, millis: u64) -> f64 {
    let mut sim = Sim::new();
    let mut cluster = Cluster::new(
        &mut sim,
        ClusterConfig {
            dne: cfg,
            pool_bufs: 4096,
            ..ClusterConfig::default()
        },
    );
    let tenant = TenantId(1);
    cluster.add_tenant(&mut sim, tenant, 1).unwrap();
    for f in boutique::all_functions() {
        cluster.place(f, boutique::hotspot_placement(f));
    }
    let chain = boutique::home_query(tenant);
    let driver = ClosedLoop::new(sim.now() + SimDuration::from_millis(millis));
    cluster.register_chain(&chain, boutique::exec_cost, driver.completion());
    driver.start(&mut sim, &cluster, &chain, clients, boutique::PAYLOAD_BYTES);
    sim.run();
    driver.rps()
}

/// Sweep 1: wimpy factor of the DPU cores vs Boutique RPS.
pub fn wimpy_factor_sweep(millis: u64) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    let cne_rps = boutique_rps(DneConfig::nadino_cne(), 80, millis);
    rows.push(AblationRow {
        sweep: "wimpy_factor".into(),
        setting: "CNE (host core)".into(),
        metric: "home_rps".into(),
        value: cne_rps,
    });
    for factor in [1.0f64, 1.5, 2.0, 3.0, 4.0] {
        let cfg = DneConfig {
            wimpy_factor: Some(factor),
            ..DneConfig::nadino_dne()
        };
        rows.push(AblationRow {
            sweep: "wimpy_factor".into(),
            setting: format!("DNE x{factor}"),
            metric: "home_rps".into(),
            value: boutique_rps(cfg, 80, millis),
        });
    }
    rows
}

/// Sweep 2: RC connections per peer vs echo throughput at high concurrency.
pub fn conns_per_peer_sweep(millis: u64) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for conns in [1usize, 2, 4, 8] {
        let cfg = DneConfig {
            conns_per_peer: conns,
            ..DneConfig::nadino_dne()
        };
        let mut sim = Sim::new();
        let mut cluster = Cluster::new(
            &mut sim,
            ClusterConfig {
                dne: cfg,
                ..ClusterConfig::default()
            },
        );
        let tenant = TenantId(1);
        cluster.add_tenant(&mut sim, tenant, 1).unwrap();
        let chain = ChainSpec::new("echo", tenant, vec![1, 2, 1]);
        cluster.place(1, 0);
        cluster.place(2, 1);
        let driver = ClosedLoop::new(sim.now() + SimDuration::from_millis(millis));
        cluster.register_chain(&chain, |_| SimDuration::ZERO, driver.completion());
        driver.start(&mut sim, &cluster, &chain, 64, 1024);
        sim.run();
        rows.push(AblationRow {
            sweep: "conns_per_peer".into(),
            setting: conns.to_string(),
            metric: "echo_rps".into(),
            value: driver.rps(),
        });
    }
    rows
}

/// Sweep 3: DWRR quantum vs fairness error (deviation from 6:1:2).
pub fn dwrr_quantum_sweep(scale: f64) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    let specs = fig15::tenant_specs(scale);
    for quantum in [0.5f64, 1.0, 4.0, 16.0] {
        let run = fig15::run_variant(
            SchedPolicy::Dwrr { quantum },
            "DWRR",
            &specs,
            SimDuration::from_secs_f64(240.0 * scale),
            SimDuration::from_secs_f64(2.0 * scale.max(0.05)),
            64,
        );
        // Fairness error while all three tenants compete.
        let (a, b) = (100.0 * scale, 140.0 * scale);
        let t1 = run.mean_rps(1, a, b);
        let t2 = run.mean_rps(2, a, b);
        let t3 = run.mean_rps(3, a, b);
        let total = t1 + t2 + t3;
        let err = ((t1 / total - 6.0 / 9.0).abs()
            + (t2 / total - 1.0 / 9.0).abs()
            + (t3 / total - 2.0 / 9.0).abs())
            / 3.0;
        rows.push(AblationRow {
            sweep: "dwrr_quantum".into(),
            setting: quantum.to_string(),
            metric: "fairness_error".into(),
            value: err,
        });
    }
    rows
}

/// Sweep 4: pre-post depth vs RNR events and throughput.
pub fn prepost_sweep(millis: u64) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for depth in [2usize, 8, 64, 256] {
        let cfg = DneConfig {
            prepost_depth: depth,
            ..DneConfig::nadino_dne()
        };
        let mut sim = Sim::new();
        let mut cluster = Cluster::new(
            &mut sim,
            ClusterConfig {
                dne: cfg,
                ..ClusterConfig::default()
            },
        );
        let tenant = TenantId(1);
        cluster.add_tenant(&mut sim, tenant, 1).unwrap();
        let chain = ChainSpec::new("echo", tenant, vec![1, 2, 1]);
        cluster.place(1, 0);
        cluster.place(2, 1);
        let driver = ClosedLoop::new(sim.now() + SimDuration::from_millis(millis));
        cluster.register_chain(&chain, |_| SimDuration::ZERO, driver.completion());
        driver.start(&mut sim, &cluster, &chain, 48, 512);
        sim.run();
        let (_, _, rnr0) = cluster.fabric.node_counters(cluster.nodes[0].id);
        let (_, _, rnr1) = cluster.fabric.node_counters(cluster.nodes[1].id);
        rows.push(AblationRow {
            sweep: "prepost_depth".into(),
            setting: depth.to_string(),
            metric: "rnr_events".into(),
            value: (rnr0 + rnr1) as f64,
        });
        rows.push(AblationRow {
            sweep: "prepost_depth".into(),
            setting: depth.to_string(),
            metric: "echo_rps".into(),
            value: driver.rps(),
        });
    }
    rows
}

/// Runs every sweep.
pub fn run(millis: u64, scale: f64) -> Ablations {
    let mut rows = Vec::new();
    rows.extend(wimpy_factor_sweep(millis));
    rows.extend(conns_per_peer_sweep(millis));
    rows.extend(dwrr_quantum_sweep(scale));
    rows.extend(prepost_sweep(millis));
    Ablations { rows }
}

impl Ablations {
    /// Renders all sweeps as one table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.sweep.clone(),
                    r.setting.clone(),
                    r.metric.clone(),
                    fmt_f64(r.value),
                ]
            })
            .collect();
        render_table(
            "Ablations - design-choice sweeps",
            &["sweep", "setting", "metric", "value"],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wimpy_factor_degrades_dne_monotonically() {
        let rows = wimpy_factor_sweep(60);
        let rps_of = |s: &str| {
            rows.iter()
                .find(|r| r.setting == s)
                .map(|r| r.value)
                .unwrap()
        };
        let fast = rps_of("DNE x1");
        let slow = rps_of("DNE x4");
        assert!(fast > slow, "slower cores, lower RPS: {fast} vs {slow}");
        // At the real BlueField-2 factor (~2) the DNE still beats the CNE.
        assert!(rps_of("DNE x2") > rps_of("CNE (host core)"));
    }

    #[test]
    fn deep_prepost_eliminates_rnr_stalls() {
        let rows = prepost_sweep(40);
        let rnr_of = |depth: &str| {
            rows.iter()
                .find(|r| r.setting == depth && r.metric == "rnr_events")
                .map(|r| r.value)
                .unwrap()
        };
        let shallow = rnr_of("2");
        let deep = rnr_of("256");
        assert!(
            shallow > deep,
            "shallow pre-post must trigger RNR retries: {shallow} vs {deep}"
        );
        assert_eq!(deep, 0.0, "deep pre-post absorbs the window entirely");
    }

    #[test]
    fn quantum_growth_hurts_fairness_granularity() {
        let rows = dwrr_quantum_sweep(0.02);
        for r in &rows {
            assert!(
                r.value < 0.25,
                "fairness error at quantum {} = {}",
                r.setting,
                r.value
            );
        }
    }

    #[test]
    fn renders() {
        let rows = conns_per_peer_sweep(20);
        assert_eq!(rows.len(), 4);
        let a = Ablations { rows };
        assert!(a.render().contains("conns_per_peer"));
    }
}
