//! Fig. 6 — isolation cost of NADINO's DNE.
//!
//! An echo client/server function pair on two worker nodes, two-sided RDMA
//! throughout. Three settings:
//!
//! - **native RDMA (CPU)**: functions drive the verbs directly from host
//!   cores (no DNE, no isolation);
//! - **native RDMA (DPU)**: the same code on wimpy DPU cores, quantifying
//!   the inherent wimpy-core penalty for verb handling;
//! - **NADINO (DNE)**: the full proxied path — functions hand descriptors
//!   to the off-path DNE over Comch-E.
//!
//! Paper claim: "the cost introduced by DNE as an additional isolation
//! layer is limited", and the wimpy-core penalty on raw verbs is minimal.
//! The Comch crossing does add latency to the DNE path; the throughput
//! cost stays small because the engine pipelines descriptors.

use baselines::{run_echo, EchoConfig, Primitive};
use dpu_sim::soc::ProcessorKind;
use membuf::tenant::TenantId;
use runtime::ChainSpec;
use simcore::{Sim, SimDuration};

use crate::cluster::{Cluster, ClusterConfig};
use crate::experiment::parallel::pmap;
use crate::report::{fmt_f64, render_table};
use crate::workload::ClosedLoop;

/// One measured setting.
#[derive(Debug, Clone)]
pub struct Fig06Row {
    pub setting: String,
    pub payload: usize,
    pub mean_us: f64,
    pub rps: f64,
}

obs::impl_to_json!(Fig06Row {
    setting,
    payload,
    mean_us,
    rps
});

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig06 {
    pub rows: Vec<Fig06Row>,
}

obs::impl_to_json!(Fig06 { rows });

/// Payload sizes swept (bytes).
pub const PAYLOADS: [usize; 3] = [64, 1024, 4096];

/// Runs the DNE-proxied echo on a real cluster and returns `(mean_us, rps)`.
fn dne_echo(payload: usize, clients: usize, millis: u64) -> (f64, f64) {
    let mut sim = Sim::new();
    let mut cluster = Cluster::new(&mut sim, ClusterConfig::default());
    let tenant = TenantId(1);
    cluster.add_tenant(&mut sim, tenant, 1).unwrap();
    let chain = ChainSpec::new("echo", tenant, vec![1, 2, 1]);
    cluster.place(1, 0);
    cluster.place(2, 1);
    let stop = sim.now() + SimDuration::from_millis(millis);
    let driver = ClosedLoop::new(stop);
    // Echo functions do no application work; we measure the data plane.
    cluster.register_chain(&chain, |_| SimDuration::ZERO, driver.completion());
    driver.start(&mut sim, &cluster, &chain, clients, payload);
    sim.run();
    (driver.latency().mean().as_micros_f64(), driver.rps())
}

/// One native cell: raw verbs on `proc` cores, latency + throughput runs.
fn native_cell(requests: u64, payload: usize, proc: ProcessorKind, name: &str) -> Fig06Row {
    // Native functions run full verb management per message. Most
    // of that work is I/O-bound (doorbell MMIO, CQ poll waits), so
    // only a small CPU-bound fraction is penalized by wimpy cores
    // — exactly why the paper finds the DPU penalty minimal.
    let per_msg = SimDuration::from_nanos(700);
    let per_msg_unscaled = SimDuration::from_micros(3);
    let lat = run_echo(EchoConfig {
        primitive: Primitive::TwoSided,
        payload,
        window: 1,
        requests,
        proc,
        per_msg,
        per_msg_unscaled,
        ..EchoConfig::default()
    });
    let thr = run_echo(EchoConfig {
        primitive: Primitive::TwoSided,
        payload,
        window: 16,
        requests,
        proc,
        per_msg,
        per_msg_unscaled,
        ..EchoConfig::default()
    });
    Fig06Row {
        setting: name.to_string(),
        payload,
        mean_us: lat.latency.mean().as_micros_f64(),
        rps: thr.rps,
    }
}

/// One DNE cell: latency (1 client) and throughput (16 clients) runs.
fn dne_cell(payload: usize, millis: u64) -> Fig06Row {
    let (lat_us, _) = dne_echo(payload, 1, millis);
    let (_, rps) = dne_echo(payload, 16, millis);
    Fig06Row {
        setting: "NADINO (DNE)".to_string(),
        payload,
        mean_us: lat_us,
        rps,
    }
}

/// Runs the experiment (`requests` echoes per native cell, `millis` of
/// virtual time per DNE cell).
pub fn run(requests: u64, millis: u64) -> Fig06 {
    run_jobs(requests, millis, 1)
}

/// Same experiment with the nine independent cells (each a fresh `Sim`)
/// fanned out across `jobs` threads; row order — and thus rendering and
/// JSON — is byte-identical to the sequential run.
pub fn run_jobs(requests: u64, millis: u64, jobs: usize) -> Fig06 {
    let mut cells: Vec<Box<dyn FnOnce() -> Fig06Row + Send>> = Vec::new();
    for payload in PAYLOADS {
        for (proc, name) in [
            (ProcessorKind::HostCpu, "native RDMA (CPU)"),
            (ProcessorKind::DpuArm, "native RDMA (DPU)"),
        ] {
            cells.push(Box::new(move || native_cell(requests, payload, proc, name)));
        }
        cells.push(Box::new(move || dne_cell(payload, millis)));
    }
    Fig06 {
        rows: pmap(cells, jobs),
    }
}

impl Fig06 {
    /// Looks up a row.
    pub fn get(&self, setting: &str, payload: usize) -> Option<&Fig06Row> {
        self.rows
            .iter()
            .find(|r| r.setting == setting && r.payload == payload)
    }

    /// Renders the figure as a text table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.setting.clone(),
                    r.payload.to_string(),
                    fmt_f64(r.mean_us),
                    fmt_f64(r.rps),
                ]
            })
            .collect();
        render_table(
            "Fig. 6 - DNE isolation cost (two-sided echo across 2 nodes)",
            &["setting", "payload_B", "mean_us", "rps"],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wimpy_core_penalty_on_raw_verbs_is_minimal() {
        let fig = run(300, 30);
        let cpu = fig.get("native RDMA (CPU)", 1024).unwrap();
        let dpu = fig.get("native RDMA (DPU)", 1024).unwrap();
        let ratio = dpu.mean_us / cpu.mean_us;
        assert!(
            (1.0..=1.3).contains(&ratio),
            "DPU/CPU latency ratio = {ratio} (paper: minimal)"
        );
    }

    #[test]
    fn dne_throughput_cost_is_bounded() {
        let fig = run(300, 30);
        for payload in PAYLOADS {
            let native = fig.get("native RDMA (DPU)", payload).unwrap().rps;
            let dne = fig.get("NADINO (DNE)", payload).unwrap().rps;
            assert!(
                dne > native * 0.5,
                "DNE rps {dne} vs native {native} at {payload}B (paper: limited cost)"
            );
        }
    }

    #[test]
    fn all_nine_cells_present() {
        let fig = run(100, 15);
        assert_eq!(fig.rows.len(), 9);
        assert!(fig.render().contains("NADINO (DNE)"));
    }

    #[test]
    fn parallel_run_renders_identically() {
        let seq = run_jobs(100, 15, 1);
        let par = run_jobs(100, 15, 4);
        assert_eq!(seq.render(), par.render());
    }
}
