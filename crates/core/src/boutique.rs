//! The Online Boutique workload (§4.3).
//!
//! Ten microservice functions and the three chains the paper evaluates
//! ('Home Query', 'ViewCart', 'Product Query'), "each of which incur more
//! than 11 data exchanges between functions". The frontend re-enters the
//! chain between downstream calls, as in the real application's call
//! graph. Placement follows the paper: the potential hotspot functions
//! (Frontend, Checkout, Recommendation) on one node, everything else on
//! the second node.

use membuf::tenant::TenantId;
use runtime::ChainSpec;
use simcore::SimDuration;

/// Function identifiers of the ten Online Boutique services.
pub mod fns {
    pub const FRONTEND: u16 = 1;
    pub const PRODUCT_CATALOG: u16 = 2;
    pub const CURRENCY: u16 = 3;
    pub const CART: u16 = 4;
    pub const RECOMMENDATION: u16 = 5;
    pub const AD: u16 = 6;
    pub const SHIPPING: u16 = 7;
    pub const CHECKOUT: u16 = 8;
    pub const PAYMENT: u16 = 9;
    pub const EMAIL: u16 = 10;
}

/// All ten function ids.
pub fn all_functions() -> [u16; 10] {
    [
        fns::FRONTEND,
        fns::PRODUCT_CATALOG,
        fns::CURRENCY,
        fns::CART,
        fns::RECOMMENDATION,
        fns::AD,
        fns::SHIPPING,
        fns::CHECKOUT,
        fns::PAYMENT,
        fns::EMAIL,
    ]
}

/// The human-readable name of a function.
pub fn function_name(f: u16) -> &'static str {
    match f {
        fns::FRONTEND => "frontend",
        fns::PRODUCT_CATALOG => "productcatalog",
        fns::CURRENCY => "currency",
        fns::CART => "cart",
        fns::RECOMMENDATION => "recommendation",
        fns::AD => "ad",
        fns::SHIPPING => "shipping",
        fns::CHECKOUT => "checkout",
        fns::PAYMENT => "payment",
        fns::EMAIL => "email",
        _ => "unknown",
    }
}

/// The Home Query chain: frontend fans out to currency, product catalog,
/// cart, recommendation (which itself consults the catalog) and ads —
/// 12 inter-function exchanges.
pub fn home_query(tenant: TenantId) -> ChainSpec {
    use fns::*;
    ChainSpec::new(
        "Home Query",
        tenant,
        vec![
            FRONTEND,
            CURRENCY,
            FRONTEND,
            PRODUCT_CATALOG,
            FRONTEND,
            CART,
            FRONTEND,
            RECOMMENDATION,
            PRODUCT_CATALOG,
            RECOMMENDATION,
            FRONTEND,
            AD,
            FRONTEND,
        ],
    )
}

/// The ViewCart chain: cart contents, recommendations, shipping estimate
/// and currency conversion — 12 exchanges.
pub fn view_cart(tenant: TenantId) -> ChainSpec {
    use fns::*;
    ChainSpec::new(
        "View Cart",
        tenant,
        vec![
            FRONTEND,
            CART,
            FRONTEND,
            RECOMMENDATION,
            PRODUCT_CATALOG,
            RECOMMENDATION,
            FRONTEND,
            SHIPPING,
            FRONTEND,
            CURRENCY,
            FRONTEND,
            CART,
            FRONTEND,
        ],
    )
}

/// The Product Query chain: product lookup, currency conversion, cart
/// check, recommendations and ads — 12 exchanges.
pub fn product_query(tenant: TenantId) -> ChainSpec {
    use fns::*;
    ChainSpec::new(
        "Product Query",
        tenant,
        vec![
            FRONTEND,
            PRODUCT_CATALOG,
            FRONTEND,
            CURRENCY,
            FRONTEND,
            CART,
            FRONTEND,
            RECOMMENDATION,
            PRODUCT_CATALOG,
            RECOMMENDATION,
            FRONTEND,
            AD,
            FRONTEND,
        ],
    )
}

/// The three chains of Fig. 16 / Table 2.
pub fn evaluation_chains(tenant: TenantId) -> [ChainSpec; 3] {
    [home_query(tenant), view_cart(tenant), product_query(tenant)]
}

/// The checkout chain: place the order — cart, shipping quote, currency
/// conversion, payment, confirmation email — 14 exchanges.
pub fn checkout(tenant: TenantId) -> ChainSpec {
    use fns::*;
    ChainSpec::new(
        "Checkout",
        tenant,
        vec![
            FRONTEND, CHECKOUT, CART, CHECKOUT, SHIPPING, CHECKOUT, CURRENCY, CHECKOUT, PAYMENT,
            CHECKOUT, EMAIL, CHECKOUT, CART, CHECKOUT, FRONTEND,
        ],
    )
}

/// The add-to-cart chain: product lookup then a cart update — 6 exchanges.
pub fn add_to_cart(tenant: TenantId) -> ChainSpec {
    use fns::*;
    ChainSpec::new(
        "Add To Cart",
        tenant,
        vec![
            FRONTEND,
            PRODUCT_CATALOG,
            FRONTEND,
            CART,
            FRONTEND,
            CURRENCY,
            FRONTEND,
        ],
    )
}

/// The ad-serving chain: contextual ads with a catalog lookup — 5 exchanges.
pub fn serve_ads(tenant: TenantId) -> ChainSpec {
    use fns::*;
    ChainSpec::new(
        "Serve Ads",
        tenant,
        vec![FRONTEND, AD, PRODUCT_CATALOG, AD, FRONTEND],
    )
}

/// All six chains the application offers (§4.3: "up to 6 different
/// function chains").
pub fn all_chains(tenant: TenantId) -> [ChainSpec; 6] {
    [
        home_query(tenant),
        view_cart(tenant),
        product_query(tenant),
        checkout(tenant),
        add_to_cart(tenant),
        serve_ads(tenant),
    ]
}

/// Reference execution cost of one invocation of each function.
///
/// Values are chosen so a Home Query totals ≈ 1 ms of function work,
/// matching Table 2's ≈ 1.1 ms NADINO (DNE) latency at light load.
pub fn exec_cost(f: u16) -> SimDuration {
    let us = match f {
        fns::FRONTEND => 60,
        fns::PRODUCT_CATALOG => 45,
        fns::CURRENCY => 50,
        fns::CART => 60,
        fns::RECOMMENDATION => 55,
        fns::AD => 40,
        fns::SHIPPING => 55,
        fns::CHECKOUT => 80,
        fns::PAYMENT => 70,
        fns::EMAIL => 40,
        _ => 50,
    };
    SimDuration::from_micros(us)
}

/// Hotspot placement (§4.3): Frontend, Checkout and Recommendation on
/// node 0; the remaining functions on node 1. Returns the node index.
pub fn hotspot_placement(f: u16) -> usize {
    match f {
        fns::FRONTEND | fns::CHECKOUT | fns::RECOMMENDATION => 0,
        _ => 1,
    }
}

/// Typical request payload in bytes (small JSON-ish messages).
pub const PAYLOAD_BYTES: usize = 512;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_have_more_than_11_exchanges() {
        for chain in evaluation_chains(TenantId(1)) {
            assert!(
                chain.exchanges() >= 11,
                "{} has only {} exchanges",
                chain.name,
                chain.exchanges()
            );
        }
    }

    #[test]
    fn chains_start_and_end_at_the_frontend() {
        for chain in evaluation_chains(TenantId(1)) {
            assert_eq!(chain.entry(), fns::FRONTEND);
            assert_eq!(chain.exit(), fns::FRONTEND);
        }
    }

    #[test]
    fn chains_cross_the_node_boundary_repeatedly() {
        for chain in evaluation_chains(TenantId(1)) {
            let crossings = chain
                .hops
                .windows(2)
                .filter(|w| hotspot_placement(w[0]) != hotspot_placement(w[1]))
                .count();
            assert!(
                crossings >= 6,
                "{} only crosses nodes {crossings} times",
                chain.name
            );
        }
    }

    #[test]
    fn home_query_function_work_is_about_a_millisecond() {
        let chain = home_query(TenantId(1));
        let total: u64 = chain.hops.iter().map(|&f| exec_cost(f).as_nanos()).sum();
        let ms = total as f64 / 1_000_000.0;
        assert!((0.6..=1.2).contains(&ms), "total exec = {ms}ms");
    }

    #[test]
    fn all_six_chains_are_well_formed() {
        let chains = all_chains(TenantId(1));
        assert_eq!(chains.len(), 6);
        for chain in &chains {
            assert_eq!(chain.entry(), fns::FRONTEND);
            assert_eq!(chain.exit(), fns::FRONTEND);
            assert!(chain.exchanges() >= 4);
        }
        // The checkout chain reaches the payment pipeline.
        let co = checkout(TenantId(1));
        for f in [fns::PAYMENT, fns::EMAIL, fns::SHIPPING] {
            assert!(co.functions().contains(&f), "checkout must use {f}");
        }
    }

    #[test]
    fn every_function_has_a_name_and_cost() {
        for f in all_functions() {
            assert_ne!(function_name(f), "unknown");
            assert!(exec_cost(f) > SimDuration::ZERO);
        }
    }
}
