//! A node-sharded cluster model on the parallel event core.
//!
//! This is the scale path the ROADMAP's parallel-DES item asks for: one
//! [`simcore::shard`] shard per simulated node, with every cross-node
//! interaction carried as a [`NetMsg`] through the conservative mailboxes
//! and priced by the fabric cost model ([`RdmaCosts`]). The lookahead is
//! the fabric's one-way latency floor ([`RdmaCosts::latency_floor`]) —
//! no RDMA message can land on a remote node faster, so every node may
//! safely simulate that far ahead of the global minimum.
//!
//! The model mirrors the shapes the figure reproductions sweep:
//!
//! - [`WorkloadKind::Echo`] — the fig06 shape: a closed-loop client node
//!   round-robins echo calls over the server nodes;
//! - [`WorkloadKind::Dag`] — the fig16 shape: each request fans out to
//!   every server node and fans back in (the Online Boutique style
//!   scatter/gather);
//! - an optional [`CrashWindow`] — the chaos shape: one node drops
//!   everything inside a window while client timeouts and bounded
//!   retries ride it out.
//!
//! The full-fidelity [`crate::cluster::Cluster`] (DNE descriptor
//! handling, Comch, admission, tracing) stays sequential and remains the
//! semantic oracle; this model trades its per-descriptor detail for
//! node-count scale. Confinement of the `Rc<RefCell<...>>` cluster state
//! (cluster, DNE, fabric, I/O library, obs hub) is enforced by the
//! compiler, not convention — none of it is `Send`, so it *cannot* reach
//! across shards; worker threads only ever receive `Send` factories and
//! build shard state locally:
//!
//! ```compile_fail
//! fn require_send<T: Send>() {}
//! // The full-fidelity cluster must never cross a shard boundary.
//! require_send::<nadino::cluster::Cluster>();
//! ```
//!
//! ```compile_fail
//! fn require_send<T: Send>() {}
//! // Neither must the DNE event loop.
//! require_send::<dne::Dne>();
//! ```
//!
//! Every statistic it produces is an integer
//! ([`NodeStats`]), so a report's [`determinism_digest`]
//! (`ShardClusterReport::determinism_digest`) is byte-stable and the
//! differential suites can assert sharded-vs-sequential identity across
//! worker counts with plain string equality.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use rdma_sim::cost::RdmaCosts;
use simcore::shard::{
    Envelope, Outbox, ShardBuildError, ShardEnv, ShardId, ShardProfile, ShardSetup, ShardedSim,
};
use simcore::{Histogram, Sim, SimDuration, SimTime, TimerHandle};

/// Per-message wire overhead added to the payload: descriptor + headers.
const WIRE_HEADER_BYTES: usize = 64;

/// Which request shape the cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Closed-loop echo: each request is one call to one server node,
    /// round-robined — the fig06 shape.
    Echo,
    /// Scatter/gather: each request calls *every* server node and
    /// completes when all replies arrive — the fig16 shape.
    Dag,
}

/// One node dropping every incoming call inside a virtual-time window —
/// the chaos-suite crash shape (the node's event loop keeps running; its
/// service simply discards work, like a crashed DNE).
#[derive(Debug, Clone, Copy)]
pub struct CrashWindow {
    /// The node that crashes (must be a server node, i.e. `>= 1`).
    pub node: u32,
    /// First instant of the outage.
    pub from: SimTime,
    /// First instant *after* the outage.
    pub until: SimTime,
}

/// Configuration of a sharded cluster run.
#[derive(Debug, Clone)]
pub struct ShardClusterConfig {
    /// Total nodes; node 0 is the closed-loop client, the rest serve.
    pub nodes: usize,
    /// Concurrent outstanding requests on the client.
    pub clients: usize,
    /// Virtual time after which the client stops issuing new requests.
    pub horizon: SimDuration,
    /// Request payload bytes (replies echo the same size).
    pub payload: usize,
    /// Root seed; every shard derives its own streams from it.
    pub seed: u64,
    /// Fabric cost model; its latency floor becomes the lookahead.
    pub costs: RdmaCosts,
    /// Mean per-call service cost on a server core.
    pub exec_cost: SimDuration,
    /// Service cores per server node.
    pub host_cores: usize,
    /// Request shape.
    pub workload: WorkloadKind,
    /// Optional crash window on one server node.
    pub crash: Option<CrashWindow>,
    /// Client-side RPC timeout before a retry.
    pub rpc_timeout: SimDuration,
    /// Retries before the client gives a request up as failed.
    pub max_retries: u32,
}

impl Default for ShardClusterConfig {
    fn default() -> Self {
        ShardClusterConfig {
            nodes: 4,
            clients: 8,
            horizon: SimDuration::from_millis(5),
            payload: 1024,
            seed: 1,
            costs: RdmaCosts::default(),
            exec_cost: SimDuration::from_micros(10),
            host_cores: 4,
            workload: WorkloadKind::Echo,
            crash: None,
            rpc_timeout: SimDuration::from_micros(500),
            max_retries: 3,
        }
    }
}

/// The cross-shard message alphabet.
#[derive(Debug, Clone)]
pub enum NetMsg {
    /// A request leg from the client to one server.
    Call {
        /// Request id, unique per logical request.
        req_id: u64,
        /// Retry generation; replies to stale attempts are ignored.
        attempt: u32,
        /// Payload bytes.
        bytes: usize,
        /// The calling shard (where the reply goes).
        from: ShardId,
    },
    /// A server's answer to one call leg.
    Reply {
        /// Echoed request id.
        req_id: u64,
        /// Echoed retry generation.
        attempt: u32,
        /// Payload bytes.
        bytes: usize,
    },
}

/// Integer-only per-node statistics; `Debug` output is byte-stable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// The node this row describes.
    pub node: u32,
    /// Requests the client issued (client row only).
    pub issued: u64,
    /// Requests completed with all replies in hand.
    pub completed: u64,
    /// Requests abandoned after `max_retries` timeouts.
    pub failed: u64,
    /// Timeout-driven retransmissions.
    pub retries: u64,
    /// Calls a server executed to completion.
    pub served: u64,
    /// Calls a server discarded inside its crash window.
    pub dropped: u64,
    /// Sum of completed-request latencies, ns.
    pub latency_ns_sum: u64,
    /// Worst completed-request latency, ns.
    pub latency_ns_max: u64,
    /// Virtual ns of server-core busy time.
    pub busy_ns: u64,
}

impl NodeStats {
    /// Mean completed-request latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.latency_ns_sum as f64 / self.completed as f64 / 1_000.0
        }
    }
}

/// How many of the slowest completed requests the client shard retains
/// as resolvable trace records for its latency exemplars.
const SLOW_TRACE_CAP: usize = 16;

/// A retained record of one slow completed request — the shard world's
/// equivalent of a flight-recorder trace. The client shard keeps the
/// [`SLOW_TRACE_CAP`] slowest completions so every latency exemplar in
/// the fleet report resolves to a concrete record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTrace {
    /// Request id (doubles as the exemplar's trace id).
    pub req_id: u64,
    /// Virtual instant the request was first issued, ns.
    pub start_ns: u64,
    /// Virtual instant the final leg replied, ns.
    pub end_ns: u64,
    /// Timeout-driven retransmissions the request needed.
    pub retries: u32,
}

impl ShardTrace {
    /// Completed-request latency, ns.
    pub fn latency_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

obs::impl_to_json!(ShardTrace {
    req_id,
    start_ns,
    end_ns,
    retries
});

/// Client-side latency observability carried out of the shard world:
/// the request-latency histogram, its exemplars, and the retained
/// slowest-request records the exemplars resolve against.
#[derive(Debug, Clone, Default)]
pub struct ClientLatencyObs {
    /// Completed-request latency distribution.
    pub hist: Histogram,
    /// One exemplar slot per histogram bucket, keyed by request id.
    pub exemplars: obs::ExemplarSet,
    /// The [`SLOW_TRACE_CAP`] slowest completions, slowest first.
    pub slow_traces: Vec<ShardTrace>,
}

impl ClientLatencyObs {
    /// `true` when every exemplar's trace id is resolvable: either it
    /// appears in the retained slow-trace table, or its bucket is below
    /// every retained latency (fast buckets are summarized, not traced).
    pub fn exemplars_resolvable(&self) -> bool {
        let floor = self.slow_traces.last().map_or(u64::MAX, |t| t.latency_ns());
        self.exemplars.exemplars().all(|ex| {
            ex.value_ns <= floor || self.slow_traces.iter().any(|t| t.req_id == ex.trace_id)
        })
    }

    /// JSON form: quantiles, exemplars, and the slow-trace table.
    pub fn to_json(&self) -> obs::JsonValue {
        use obs::{JsonValue, ToJson};
        JsonValue::obj(vec![
            ("count", JsonValue::UInt(self.hist.count())),
            (
                "p50_ns",
                JsonValue::UInt(self.hist.percentile(50.0).as_nanos()),
            ),
            (
                "p99_ns",
                JsonValue::UInt(self.hist.percentile(99.0).as_nanos()),
            ),
            ("max_ns", JsonValue::UInt(self.hist.max().as_nanos())),
            ("exemplars", self.exemplars.to_json()),
            (
                "slow_traces",
                JsonValue::Arr(self.slow_traces.iter().map(|t| t.to_json()).collect()),
            ),
        ])
    }
}

/// The outcome of a sharded cluster run.
#[derive(Debug, Clone)]
pub struct ShardClusterReport {
    /// Per-node statistics, indexed by node id.
    pub stats: Vec<NodeStats>,
    /// Per-shard engine profiles, indexed by node id.
    pub profiles: Vec<ShardProfile>,
    /// Conservative windows executed.
    pub windows: u64,
    /// Final virtual instant, ns.
    pub now_ns: u64,
    /// Events executed across all shards.
    pub total_events: u64,
    /// Wall-clock duration of the run, ns (excluded from the digest).
    pub wall_ns: u64,
    /// Worker threads used (excluded from the digest).
    pub workers: usize,
    /// The lookahead the run synchronized on, ns.
    pub lookahead_ns: u64,
    /// Client request-latency histogram, exemplars, and slow-trace
    /// records (excluded from the digest: the histogram and exemplar
    /// content is fully determined by `stats`' deterministic inputs, and
    /// keeping the digest format fixed keeps committed baselines valid).
    pub latency: ClientLatencyObs,
}

impl ShardClusterReport {
    /// Requests the client completed.
    pub fn completed(&self) -> u64 {
        self.stats.first().map_or(0, |s| s.completed)
    }

    /// Aggregate wall-clock event throughput.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.total_events as f64 * 1e9 / self.wall_ns as f64
        }
    }

    /// A byte-stable digest of everything virtual-time-deterministic in
    /// the run: node statistics, shard profiles, window count, final
    /// clock, lookahead. Wall-clock and worker count are deliberately
    /// excluded — the digest must be identical for every `workers`
    /// value, and the differential suites assert exactly that.
    pub fn determinism_digest(&self) -> String {
        format!(
            "{:?}|{:?}|windows={}|now={}|events={}|lookahead={}",
            self.stats,
            self.profiles,
            self.windows,
            self.now_ns,
            self.total_events,
            self.lookahead_ns
        )
    }

    /// Exports the shard-health gauges through the standard metrics
    /// path, so lookahead-starved topologies show up in `--metrics-out`:
    /// `shard_barrier_stalls`, `shard_mailbox_depth` (peak single drain),
    /// `shard_window_ns` (mean conservative-window advance).
    pub fn export_metrics(&self, reg: &obs::MetricsRegistry) {
        for p in &self.profiles {
            let label = p.shard.to_string();
            let labels = [("shard", label.as_str())];
            reg.gauge("shard_barrier_stalls", &labels)
                .set(p.barrier_stalls as f64);
            reg.gauge("shard_mailbox_depth", &labels)
                .set(p.mailbox_depth_peak as f64);
            reg.gauge("shard_window_ns", &labels)
                .set(p.mean_window_ns());
        }
        reg.gauge("shard_windows_total", &[])
            .set(self.windows as f64);
        reg.gauge("shard_lookahead_ns", &[])
            .set(self.lookahead_ns as f64);
    }

    /// Per-shard wall-time attribution ({execute, barrier-stall,
    /// mailbox-drain, idle}) derived from the run's engine profiles.
    pub fn shard_split(&self) -> Vec<obs::ShardSplit> {
        obs::ShardSplit::from_profiles(&self.profiles)
    }
}

/// In-flight bookkeeping for one client request.
struct Pending {
    attempt: u32,
    outstanding: u32,
    retries: u32,
    issued_at: SimTime,
    timer: Option<TimerHandle>,
}

/// Client-shard state, confined to the client's worker thread.
struct ClientState {
    cfg: ShardClusterConfig,
    outbox: Outbox<NetMsg>,
    me: ShardId,
    next_req: u64,
    pending: HashMap<u64, Pending>,
    stats: NodeStats,
    horizon: SimTime,
    latency: ClientLatencyObs,
}

impl ClientState {
    /// Records one completed request into the latency histogram, offers
    /// an exemplar keyed by request id, and keeps the slow-trace table
    /// bounded at the [`SLOW_TRACE_CAP`] slowest completions.
    fn record_completion(&mut self, req_id: u64, issued_at: SimTime, now: SimTime, retries: u32) {
        let latency = (now - issued_at).as_nanos();
        self.latency.hist.record(now - issued_at);
        self.latency.exemplars.offer(latency, req_id, 0);
        let trace = ShardTrace {
            req_id,
            start_ns: issued_at.as_nanos(),
            end_ns: now.as_nanos(),
            retries,
        };
        let slow = &mut self.latency.slow_traces;
        slow.push(trace);
        slow.sort_by(|a, b| {
            b.latency_ns()
                .cmp(&a.latency_ns())
                .then(a.req_id.cmp(&b.req_id))
        });
        slow.truncate(SLOW_TRACE_CAP);
    }
}

impl ClientState {
    fn servers(&self) -> u32 {
        (self.cfg.nodes - 1) as u32
    }

    /// The server legs of request `req_id` under the configured shape.
    fn targets(&self, req_id: u64) -> Vec<ShardId> {
        match self.cfg.workload {
            WorkloadKind::Echo => vec![ShardId(1 + (req_id % self.servers() as u64) as u32)],
            WorkloadKind::Dag => (1..=self.servers()).map(ShardId).collect(),
        }
    }

    fn call_latency(&self) -> SimDuration {
        self.cfg.costs.one_way(self.cfg.payload + WIRE_HEADER_BYTES)
    }

    /// Sends (or resends) every leg of `req_id` at generation `attempt`.
    fn send_legs(&mut self, now: SimTime, req_id: u64, attempt: u32) {
        let latency = self.call_latency();
        for dst in self.targets(req_id) {
            self.outbox.send(
                now,
                dst,
                latency,
                NetMsg::Call {
                    req_id,
                    attempt,
                    bytes: self.cfg.payload,
                    from: self.me,
                },
            );
        }
    }
}

fn arm_timeout(state: &Rc<RefCell<ClientState>>, sim: &mut Sim, req_id: u64) -> TimerHandle {
    let deadline = sim.now() + state.borrow().cfg.rpc_timeout;
    let st = state.clone();
    sim.schedule_at(deadline, move |sim| on_timeout(&st, sim, req_id))
}

/// Issues a fresh request if the horizon has not passed.
fn issue_next(state: &Rc<RefCell<ClientState>>, sim: &mut Sim) {
    let now = sim.now();
    {
        let s = state.borrow();
        if now >= s.horizon {
            return;
        }
    }
    let req_id = {
        let mut s = state.borrow_mut();
        let id = s.next_req;
        s.next_req += 1;
        s.stats.issued += 1;
        let outstanding = s.targets(id).len() as u32;
        s.send_legs(now, id, 0);
        s.pending.insert(
            id,
            Pending {
                attempt: 0,
                outstanding,
                retries: 0,
                issued_at: now,
                timer: None,
            },
        );
        id
    };
    let timer = arm_timeout(state, sim, req_id);
    if let Some(p) = state.borrow_mut().pending.get_mut(&req_id) {
        p.timer = Some(timer);
    }
}

fn on_timeout(state: &Rc<RefCell<ClientState>>, sim: &mut Sim, req_id: u64) {
    enum Action {
        Gone,
        GiveUp,
        Retry,
    }
    let now = sim.now();
    let action = {
        let mut s = state.borrow_mut();
        let max_retries = s.cfg.max_retries;
        match s.pending.get_mut(&req_id) {
            None => Action::Gone, // Completed just before the timer fired.
            Some(p) if p.retries >= max_retries => Action::GiveUp,
            Some(p) => {
                p.retries += 1;
                p.attempt += 1;
                Action::Retry
            }
        }
    };
    match action {
        Action::Gone => {}
        Action::GiveUp => {
            let mut s = state.borrow_mut();
            s.pending.remove(&req_id);
            s.stats.failed += 1;
            drop(s);
            issue_next(state, sim);
        }
        Action::Retry => {
            {
                let mut s = state.borrow_mut();
                let attempt = s.pending[&req_id].attempt;
                let outstanding = s.targets(req_id).len() as u32;
                s.pending
                    .get_mut(&req_id)
                    .expect("still pending")
                    .outstanding = outstanding;
                s.stats.retries += 1;
                s.send_legs(now, req_id, attempt);
            }
            let timer = arm_timeout(state, sim, req_id);
            if let Some(p) = state.borrow_mut().pending.get_mut(&req_id) {
                p.timer = Some(timer);
            }
        }
    }
}

fn on_reply(state: &Rc<RefCell<ClientState>>, sim: &mut Sim, req_id: u64, attempt: u32) {
    let done = {
        let mut s = state.borrow_mut();
        let Some(p) = s.pending.get_mut(&req_id) else {
            return; // Duplicate reply after completion or give-up.
        };
        if p.attempt != attempt {
            return; // Stale generation: a pre-retry reply arriving late.
        }
        p.outstanding -= 1;
        p.outstanding == 0
    };
    if !done {
        return;
    }
    let timer = {
        let mut s = state.borrow_mut();
        let p = s.pending.remove(&req_id).expect("checked above");
        let latency = (sim.now() - p.issued_at).as_nanos();
        s.stats.completed += 1;
        s.stats.latency_ns_sum += latency;
        s.stats.latency_ns_max = s.stats.latency_ns_max.max(latency);
        s.record_completion(req_id, p.issued_at, sim.now(), p.retries);
        p.timer
    };
    if let Some(t) = timer {
        sim.cancel(t);
    }
    issue_next(state, sim);
}

/// Server-shard state, confined to its worker thread.
struct ServerState {
    node: u32,
    cfg: ShardClusterConfig,
    outbox: Outbox<NetMsg>,
    rng: simcore::SimRng,
    queue: std::collections::VecDeque<NetMsg>,
    free_cores: usize,
    stats: NodeStats,
}

impl ServerState {
    fn crashed(&self, now: SimTime) -> bool {
        match self.cfg.crash {
            Some(w) => w.node == self.node && now >= w.from && now < w.until,
            None => false,
        }
    }

    /// Service time for one call: configured cost plus ±25% jitter from
    /// this shard's private stream.
    fn service_time(&mut self) -> SimDuration {
        let base = self.cfg.exec_cost.as_nanos();
        let jitter = base / 2;
        let t = if jitter > 0 {
            base - jitter / 2 + self.rng.gen_range(jitter + 1)
        } else {
            base
        };
        SimDuration::from_nanos(t.max(1))
    }
}

fn server_pump(state: &Rc<RefCell<ServerState>>, sim: &mut Sim) {
    loop {
        let job = {
            let mut s = state.borrow_mut();
            if s.free_cores == 0 {
                return;
            }
            match s.queue.pop_front() {
                Some(j) => {
                    s.free_cores -= 1;
                    j
                }
                None => return,
            }
        };
        let NetMsg::Call {
            req_id,
            attempt,
            bytes,
            from,
        } = job
        else {
            unreachable!("servers only queue calls");
        };
        let service = state.borrow_mut().service_time();
        let st = state.clone();
        let done_at = sim.now() + service;
        sim.schedule_at(done_at, move |sim| {
            {
                let mut s = st.borrow_mut();
                s.free_cores += 1;
                s.stats.served += 1;
                s.stats.busy_ns += service.as_nanos();
                let lat = s.cfg.costs.one_way(bytes + WIRE_HEADER_BYTES);
                s.outbox.send(
                    sim.now(),
                    from,
                    lat,
                    NetMsg::Reply {
                        req_id,
                        attempt,
                        bytes,
                    },
                );
            }
            server_pump(&st, sim);
        });
    }
}

/// Builds the sharded cluster: one shard per node, client on shard 0.
///
/// Fails with [`ShardBuildError::ZeroLookahead`] when the cost model's
/// latency floor is zero — a zero-latency fabric admits no conservative
/// window.
pub fn build(cfg: ShardClusterConfig) -> Result<ShardedSim<NetMsg, NodeStats>, ShardBuildError> {
    build_inner(cfg, None)
}

/// [`build`], optionally threading a latency-observability sink into the
/// client shard. The sink is an `Arc<Mutex<..>>` because the client's
/// `finish` hook runs on a worker thread; its content is nonetheless
/// deterministic — it is written exactly once, from virtual-time state.
fn build_inner(
    cfg: ShardClusterConfig,
    latency_sink: Option<Arc<Mutex<ClientLatencyObs>>>,
) -> Result<ShardedSim<NetMsg, NodeStats>, ShardBuildError> {
    assert!(cfg.nodes >= 2, "need a client and at least one server");
    assert!(cfg.clients >= 1, "closed loop needs at least one client");
    assert!(cfg.host_cores >= 1, "servers need at least one core");
    let lookahead = cfg.costs.latency_floor();
    let mut b: simcore::shard::ShardedSimBuilder<NetMsg, NodeStats> =
        simcore::shard::ShardedSimBuilder::new(lookahead, cfg.seed);

    let client_cfg = cfg.clone();
    b.add_shard(move |env: &mut ShardEnv<'_, NetMsg>| {
        let horizon = SimTime::ZERO + client_cfg.horizon;
        let state = Rc::new(RefCell::new(ClientState {
            me: env.id(),
            outbox: env.outbox(),
            next_req: 0,
            pending: HashMap::new(),
            stats: NodeStats {
                node: env.id().0,
                ..NodeStats::default()
            },
            horizon,
            cfg: client_cfg,
            latency: ClientLatencyObs::default(),
        }));
        let clients = state.borrow().cfg.clients;
        for _ in 0..clients {
            let st = state.clone();
            env.sim.schedule_now(move |sim| issue_next(&st, sim));
        }
        let st = state.clone();
        let on_message = Box::new(move |sim: &mut Sim, env: Envelope<NetMsg>| {
            if let NetMsg::Reply {
                req_id, attempt, ..
            } = env.msg
            {
                on_reply(&st, sim, req_id, attempt);
            }
        });
        let sink = latency_sink.clone();
        let finish = Box::new(move |_: &mut Sim| {
            let s = state.borrow();
            if let Some(sink) = &sink {
                *sink.lock().expect("latency sink poisoned") = s.latency.clone();
            }
            s.stats
        });
        ShardSetup { on_message, finish }
    });

    for node in 1..cfg.nodes as u32 {
        let server_cfg = cfg.clone();
        b.add_shard(move |env: &mut ShardEnv<'_, NetMsg>| {
            let state = Rc::new(RefCell::new(ServerState {
                node,
                outbox: env.outbox(),
                rng: env.rng_stream(),
                queue: std::collections::VecDeque::new(),
                free_cores: server_cfg.host_cores,
                stats: NodeStats {
                    node,
                    ..NodeStats::default()
                },
                cfg: server_cfg,
            }));
            let st = state.clone();
            let on_message = Box::new(move |sim: &mut Sim, env: Envelope<NetMsg>| {
                if let NetMsg::Call { .. } = env.msg {
                    let crashed = st.borrow().crashed(sim.now());
                    if crashed {
                        st.borrow_mut().stats.dropped += 1;
                        return;
                    }
                    st.borrow_mut().queue.push_back(env.msg);
                    server_pump(&st, sim);
                }
            });
            let finish = Box::new(move |_: &mut Sim| state.borrow().stats);
            ShardSetup { on_message, finish }
        });
    }

    b.build()
}

/// Builds and runs the cluster on `workers` threads, folding the result
/// into a [`ShardClusterReport`].
pub fn run(cfg: ShardClusterConfig, workers: usize) -> ShardClusterReport {
    let lookahead = cfg.costs.latency_floor();
    let sink = Arc::new(Mutex::new(ClientLatencyObs::default()));
    let sharded =
        build_inner(cfg, Some(sink.clone())).expect("default cost model has a non-zero floor");
    let run = sharded.run(workers);
    let total_events = run.total_executed();
    let latency = std::mem::take(&mut *sink.lock().expect("latency sink poisoned"));
    ShardClusterReport {
        stats: run.outputs,
        profiles: run.profiles,
        windows: run.windows,
        now_ns: run.now.as_nanos(),
        total_events,
        wall_ns: run.wall_ns,
        workers: run.workers,
        lookahead_ns: lookahead.as_nanos(),
        latency,
    }
}

/// One row of the parallel-core benchmark: a workload run sequentially
/// (1 worker) and sharded (`workers` threads), with the determinism
/// check applied to the pair.
#[derive(Debug, Clone)]
pub struct ParallelRow {
    pub workload: String,
    pub nodes: usize,
    pub events: u64,
    pub seq_events_per_sec: f64,
    pub par_events_per_sec: f64,
    pub speedup: f64,
    pub byte_identical: bool,
    pub windows: u64,
    pub barrier_stalls: u64,
    pub mailbox_depth_peak: u64,
    pub completed: u64,
}

obs::impl_to_json!(ParallelRow {
    workload,
    nodes,
    events,
    seq_events_per_sec,
    par_events_per_sec,
    speedup,
    byte_identical,
    windows,
    barrier_stalls,
    mailbox_depth_peak,
    completed
});

/// The parallel-core benchmark (`results/BENCH_parallel.json`).
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// Worker threads the parallel runs used.
    pub workers: usize,
    /// Cores the machine actually has — interpret speedups against this:
    /// on a core-starved box the determinism columns are the signal and
    /// the speedup is just the measured ratio.
    pub host_cores: usize,
    pub rows: Vec<ParallelRow>,
    /// The per-workload sharded reports behind `rows`, kept (but not
    /// serialized into `BENCH_parallel.json`) so callers can export the
    /// shard-health gauges through the standard metrics path.
    pub shard_reports: Vec<(String, ShardClusterReport)>,
}

obs::impl_to_json!(ParallelReport {
    workers,
    host_cores,
    rows
});

impl ParallelReport {
    /// True when every row's sharded run matched its sequential digest.
    pub fn all_deterministic(&self) -> bool {
        self.rows.iter().all(|r| r.byte_identical)
    }

    /// Exports every workload's shard-health gauges, labelled by
    /// `(workload, shard)` so the cells don't clobber each other — this
    /// is what `experiments --shards N parallel --metrics-out m.json`
    /// writes into the metrics snapshot.
    pub fn export_metrics(&self, reg: &obs::MetricsRegistry) {
        for (workload, rep) in &self.shard_reports {
            for p in &rep.profiles {
                let shard = p.shard.to_string();
                let labels = [("workload", workload.as_str()), ("shard", shard.as_str())];
                reg.gauge("shard_barrier_stalls", &labels)
                    .set(p.barrier_stalls as f64);
                reg.gauge("shard_mailbox_depth", &labels)
                    .set(p.mailbox_depth_peak as f64);
                reg.gauge("shard_window_ns", &labels)
                    .set(p.mean_window_ns());
            }
            let wl = [("workload", workload.as_str())];
            reg.gauge("shard_windows_total", &wl)
                .set(rep.windows as f64);
            reg.gauge("shard_lookahead_ns", &wl)
                .set(rep.lookahead_ns as f64);
        }
    }

    /// Renders the benchmark as a text table.
    pub fn render(&self) -> String {
        use crate::report::{fmt_f64, render_table};
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    r.nodes.to_string(),
                    r.events.to_string(),
                    fmt_f64(r.seq_events_per_sec),
                    fmt_f64(r.par_events_per_sec),
                    fmt_f64(r.speedup),
                    r.byte_identical.to_string(),
                    r.windows.to_string(),
                    r.barrier_stalls.to_string(),
                ]
            })
            .collect();
        render_table(
            &format!(
                "Parallel event core - sharded vs sequential ({} workers, {} host cores)",
                self.workers, self.host_cores
            ),
            &[
                "workload",
                "nodes",
                "events",
                "seq_ev_per_s",
                "par_ev_per_s",
                "speedup",
                "byte_identical",
                "windows",
                "stalls",
            ],
            &rows,
        )
    }
}

/// The benchmark workload matrix: echo, scatter/gather DAG, and echo
/// through a crash window.
fn bench_cfg(workload: WorkloadKind, crash: bool, quick: bool) -> ShardClusterConfig {
    let horizon = if quick {
        SimDuration::from_millis(5)
    } else {
        SimDuration::from_millis(40)
    };
    ShardClusterConfig {
        nodes: 8,
        clients: 48,
        horizon,
        seed: 42,
        workload,
        crash: crash.then_some(CrashWindow {
            node: 2,
            from: SimTime::from_nanos(horizon.as_nanos() / 4),
            until: SimTime::from_nanos(horizon.as_nanos() / 2),
        }),
        ..ShardClusterConfig::default()
    }
}

/// Runs the sharded-vs-sequential benchmark: each workload once on one
/// worker (the oracle) and once on `workers` threads, asserting digest
/// equality and recording the measured throughput ratio.
pub fn bench_report(quick: bool, workers: usize) -> ParallelReport {
    let cells = [
        ("echo", WorkloadKind::Echo, false),
        ("dag", WorkloadKind::Dag, false),
        ("echo+crash", WorkloadKind::Echo, true),
    ];
    let mut rows = Vec::new();
    let mut shard_reports = Vec::new();
    for (name, workload, crash) in cells {
        let seq = run(bench_cfg(workload, crash, quick), 1);
        let par = run(bench_cfg(workload, crash, quick), workers);
        let byte_identical = seq.determinism_digest() == par.determinism_digest();
        rows.push(ParallelRow {
            workload: name.to_string(),
            nodes: 8,
            events: par.total_events,
            seq_events_per_sec: seq.events_per_sec(),
            par_events_per_sec: par.events_per_sec(),
            speedup: if seq.events_per_sec() > 0.0 {
                par.events_per_sec() / seq.events_per_sec()
            } else {
                0.0
            },
            byte_identical,
            windows: par.windows,
            barrier_stalls: par.profiles.iter().map(|p| p.barrier_stalls).sum(),
            mailbox_depth_peak: par
                .profiles
                .iter()
                .map(|p| p.mailbox_depth_peak as u64)
                .max()
                .unwrap_or(0),
            completed: par.completed(),
        });
        shard_reports.push((name.to_string(), par));
    }
    ParallelReport {
        workers,
        host_cores: crate::experiment::parallel::default_jobs(),
        rows,
        shard_reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(workload: WorkloadKind, seed: u64) -> ShardClusterConfig {
        ShardClusterConfig {
            nodes: 4,
            clients: 4,
            horizon: SimDuration::from_millis(1),
            seed,
            workload,
            ..ShardClusterConfig::default()
        }
    }

    #[test]
    fn echo_completes_requests_and_is_deterministic() {
        let a = run(quick_cfg(WorkloadKind::Echo, 42), 1);
        assert!(a.completed() > 10, "completed {}", a.completed());
        assert_eq!(a.stats[0].failed, 0, "no failures without faults");
        let b = run(quick_cfg(WorkloadKind::Echo, 42), 2);
        assert_eq!(a.determinism_digest(), b.determinism_digest());
    }

    #[test]
    fn dag_waits_for_every_leg() {
        let r = run(quick_cfg(WorkloadKind::Dag, 7), 1);
        assert!(r.completed() > 5);
        let served: u64 = r.stats.iter().map(|s| s.served).sum();
        // Every completed request touched all three servers.
        assert!(served >= r.completed() * 3, "served {served}");
    }

    #[test]
    fn crash_window_forces_retries_but_not_hangs() {
        let mut cfg = quick_cfg(WorkloadKind::Echo, 9001);
        cfg.crash = Some(CrashWindow {
            node: 1,
            from: SimTime::from_nanos(100_000),
            until: SimTime::from_nanos(400_000),
        });
        let r = run(cfg.clone(), 1);
        assert!(r.stats[0].retries > 0, "outage must force retries");
        assert!(r.stats[1].dropped > 0, "node 1 dropped traffic");
        assert!(r.completed() > 0, "traffic resumes after the window");
        let r2 = run(cfg, 2);
        assert_eq!(r.determinism_digest(), r2.determinism_digest());
    }

    #[test]
    fn latency_obs_matches_stats_and_exemplars_resolve() {
        let r = run(quick_cfg(WorkloadKind::Echo, 42), 2);
        assert_eq!(
            r.latency.hist.count(),
            r.completed(),
            "every completion lands in the histogram"
        );
        assert_eq!(
            r.latency.hist.max().as_nanos(),
            r.stats[0].latency_ns_max,
            "histogram max agrees with the integer stats"
        );
        assert!(!r.latency.exemplars.is_empty(), "exemplars were offered");
        assert!(!r.latency.slow_traces.is_empty());
        assert!(
            r.latency.slow_traces.len() <= SLOW_TRACE_CAP,
            "slow-trace table is bounded"
        );
        assert!(
            r.latency.exemplars_resolvable(),
            "every tail exemplar resolves to a retained slow trace"
        );
        // The slowest retained trace is the worst completion.
        assert_eq!(
            r.latency.slow_traces[0].latency_ns(),
            r.stats[0].latency_ns_max
        );
        // Latency obs is as deterministic as the digest.
        let r2 = run(quick_cfg(WorkloadKind::Echo, 42), 1);
        assert_eq!(
            r.latency.to_json().to_string_pretty(),
            r2.latency.to_json().to_string_pretty(),
            "latency obs must be byte-identical across worker counts"
        );
    }

    #[test]
    fn zero_latency_fabric_is_rejected() {
        let mut cfg = quick_cfg(WorkloadKind::Echo, 1);
        cfg.costs.rnic_tx_fixed = SimDuration::ZERO;
        cfg.costs.rnic_rx_fixed = SimDuration::ZERO;
        cfg.costs.propagation = SimDuration::ZERO;
        assert_eq!(build(cfg).err(), Some(ShardBuildError::ZeroLookahead));
    }

    #[test]
    fn bench_report_is_deterministic_and_renders() {
        let rep = bench_report(true, 2);
        assert_eq!(rep.rows.len(), 3);
        assert!(rep.all_deterministic(), "{}", rep.render());
        assert!(rep.render().contains("echo+crash"));
        assert!(rep.rows.iter().all(|r| r.events > 0 && r.completed > 0));
    }

    #[test]
    fn bench_report_exports_workload_labelled_gauges() {
        let rep = bench_report(true, 2);
        let reg = obs::MetricsRegistry::new();
        rep.export_metrics(&reg);
        let snap = reg.snapshot();
        for workload in ["echo", "dag", "echo+crash"] {
            assert!(snap
                .gauge(
                    "shard_barrier_stalls",
                    &[("workload", workload), ("shard", "0")]
                )
                .is_some());
            assert!(snap
                .gauge("shard_lookahead_ns", &[("workload", workload)])
                .is_some());
        }
    }

    #[test]
    fn metrics_export_surfaces_shard_health() {
        let r = run(quick_cfg(WorkloadKind::Echo, 1), 1);
        let reg = obs::MetricsRegistry::new();
        r.export_metrics(&reg);
        let snap = reg.snapshot();
        assert!(snap.gauge("shard_window_ns", &[("shard", "0")]).is_some());
        assert!(snap
            .gauge("shard_barrier_stalls", &[("shard", "1")])
            .is_some());
        assert_eq!(
            snap.gauge("shard_lookahead_ns", &[]),
            Some(r.lookahead_ns as f64)
        );
    }
}
