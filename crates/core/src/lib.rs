//! # NADINO — a DPU-centric serverless data plane (reproduction)
//!
//! This is the top-level crate of the NADINO reproduction: it assembles the
//! substrates ([`membuf`], [`rdma_sim`], [`dpu_sim`], [`dne`], [`ingress`],
//! [`runtime`], [`baselines`]) into complete clusters and reproduces every
//! experiment of the paper's evaluation (§4).
//!
//! ## Quick start
//!
//! ```
//! use nadino::cluster::{Cluster, ClusterConfig};
//! use nadino::workload::ClosedLoop;
//! use membuf::tenant::TenantId;
//! use runtime::ChainSpec;
//! use simcore::{Sim, SimDuration, SimTime};
//!
//! let mut sim = Sim::new();
//! let mut cluster = Cluster::new(&mut sim, ClusterConfig::default());
//! let tenant = TenantId(1);
//! cluster.add_tenant(&mut sim, tenant, 1).unwrap();
//!
//! // A 3-hop chain: fn 1 (node 0) -> fn 2 (node 1) -> fn 1 again.
//! let chain = ChainSpec::new("echo", tenant, vec![1, 2, 1]);
//! cluster.place(1, 0);
//! cluster.place(2, 1);
//!
//! let driver = ClosedLoop::new(SimTime::ZERO + SimDuration::from_millis(50));
//! cluster.register_chain(&chain, |_f| SimDuration::from_micros(10), driver.completion());
//! driver.start(&mut sim, &cluster, &chain, 4, 256);
//! sim.run();
//! assert!(driver.completed() > 100);
//! ```
//!
//! ## Experiments
//!
//! Each module under [`experiment`] regenerates one table or figure; the
//! `experiments` binary in the `bench` crate prints them all.

pub mod baseline_cluster;
pub mod boutique;
pub mod churn;
pub mod cluster;
pub mod experiment;
pub mod fleet;
pub mod fleetctl;
pub mod health;
pub mod report;
pub mod shard_cluster;
pub mod trace;
pub mod workload;

pub use cluster::{Cluster, ClusterConfig};
pub use fleetctl::{FleetConfig, FleetController, FleetCounters, FleetEvent, NodeLifecycle};
pub use health::{HealthConfig, HealthEvent, HealthMonitor, NodeState};
pub use workload::ClosedLoop;
