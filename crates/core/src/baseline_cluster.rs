//! Chain execution on the comparison systems.
//!
//! A [`BaselineCluster`] runs the same chains as the real NADINO cluster,
//! but over a [`baselines::BaselineEngine`] per node parameterized by the
//! system's [`baselines::SystemModel`]: kernel TCP hops for SPRIGHT,
//! one-sided-write-plus-copy hops for FUYAO, userspace TCP everywhere for
//! Junction, single-node shared memory for NightCore.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use baselines::{BaselineEngine, SystemModel};
use dpu_sim::soc::{Processor, ProcessorKind};
use runtime::ChainSpec;
use simcore::{Sim, SimDuration, SimTime};

struct BNode {
    cpu: Rc<RefCell<Processor>>,
    engine: BaselineEngine,
}

struct Inner {
    model: SystemModel,
    nodes: Vec<BNode>,
    placement: HashMap<u16, usize>,
}

/// A cluster running one of the §4.3 comparison systems.
#[derive(Clone)]
pub struct BaselineCluster {
    inner: Rc<RefCell<Inner>>,
}

impl BaselineCluster {
    /// Builds `workers` nodes with `host_cores` each for `model`.
    pub fn new(model: SystemModel, workers: usize, host_cores: usize) -> BaselineCluster {
        assert!(workers >= 1);
        let effective_workers = if model.single_node_only { 1 } else { workers };
        let engine_costs = model
            .engine
            .clone()
            .expect("baseline systems use the generic engine");
        let nodes = (0..effective_workers)
            .map(|_| BNode {
                cpu: Rc::new(RefCell::new(Processor::new(
                    ProcessorKind::HostCpu,
                    host_cores,
                ))),
                engine: BaselineEngine::new(engine_costs.clone()),
            })
            .collect();
        BaselineCluster {
            inner: Rc::new(RefCell::new(Inner {
                model,
                nodes,
                placement: HashMap::new(),
            })),
        }
    }

    /// Places a function (clamped to node 0 for single-node systems).
    pub fn place(&self, fn_id: u16, node: usize) {
        let mut inner = self.inner.borrow_mut();
        let node = if inner.model.single_node_only {
            0
        } else {
            node
        };
        assert!(node < inner.nodes.len());
        inner.placement.insert(fn_id, node);
    }

    /// Runs one request through `chain`, invoking `done` at completion.
    pub fn run_request(
        &self,
        sim: &mut Sim,
        chain: Rc<ChainSpec>,
        exec_cost: Rc<dyn Fn(u16) -> SimDuration>,
        payload: usize,
        done: Box<dyn FnOnce(&mut Sim)>,
    ) {
        self.step(sim, chain, exec_cost, payload, 0, done);
    }

    fn step(
        &self,
        sim: &mut Sim,
        chain: Rc<ChainSpec>,
        exec_cost: Rc<dyn Fn(u16) -> SimDuration>,
        payload: usize,
        hop: usize,
        done: Box<dyn FnOnce(&mut Sim)>,
    ) {
        let f = chain.hops[hop];
        // Execute the function's logic on its node's host cores.
        let exec_done = {
            let inner = self.inner.borrow();
            let node = *inner.placement.get(&f).expect("function placed");
            let cpu = inner.nodes[node].cpu.clone();
            drop(inner);
            let done = cpu.borrow_mut().run(sim.now(), exec_cost(f));
            done
        };
        let this = self.clone();
        sim.schedule_at(exec_done, move |sim| {
            let next = hop + 1;
            if next >= chain.hops.len() {
                done(sim);
                return;
            }
            let (same_node, src_engine, dst_engine, intra, via_engine, src_cpu) = {
                let inner = this.inner.borrow();
                let src = *inner.placement.get(&chain.hops[hop]).expect("placed");
                let dst = *inner.placement.get(&chain.hops[next]).expect("placed");
                (
                    src == dst,
                    inner.nodes[src].engine.clone(),
                    inner.nodes[dst].engine.clone(),
                    inner.model.intra.clone(),
                    inner.model.intra_via_engine,
                    inner.nodes[src].cpu.clone(),
                )
            };
            let this2 = this.clone();
            let cont: Box<dyn FnOnce(&mut Sim)> = Box::new(move |sim| {
                this2.step(sim, chain, exec_cost, payload, next, done);
            });
            if same_node {
                // Intra-node hop: IPC cost (on the node's engine for
                // designs whose engine mediates local messages, otherwise
                // on the host cores) plus, for designs with separate
                // pools, a memory-bound copy.
                let mut service = intra.cpu;
                if let Some(rate) = intra.copy_rate {
                    service += SimDuration::from_secs_f64(payload as f64 / rate);
                }
                let latency = intra.latency;
                if via_engine {
                    src_engine.process(
                        sim,
                        payload,
                        Box::new(move |sim| {
                            sim.schedule_after(latency, cont);
                        }),
                    );
                } else {
                    let cpu_done = src_cpu.borrow_mut().run(sim.now(), service);
                    sim.schedule_at(cpu_done + latency, cont);
                }
            } else {
                src_engine.send_to(sim, &dst_engine, payload, cont);
            }
        });
    }

    /// Charges `cost` on the host cores of the node hosting `fn_id` and
    /// returns the completion instant (used for worker-side TCP
    /// termination under deferred conversion).
    pub fn charge(&self, sim: &mut Sim, fn_id: u16, cost: SimDuration) -> simcore::SimTime {
        let inner = self.inner.borrow();
        let node = *inner.placement.get(&fn_id).expect("function placed");
        let cpu = inner.nodes[node].cpu.clone();
        drop(inner);
        let done = cpu.borrow_mut().run(sim.now(), cost);
        done
    }

    /// Whether the engines busy-poll (their cores count as saturated).
    pub fn engine_polls(&self) -> bool {
        self.inner
            .borrow()
            .model
            .engine
            .as_ref()
            .map(|e| e.polling)
            .unwrap_or(false)
    }

    /// Returns the number of nodes actually in use.
    pub fn node_count(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// Engine-core utilization across nodes (polling engines report 1.0
    /// per node, matching the paper's saturated-core observation).
    pub fn engine_utilization(&self, a: SimTime, b: SimTime) -> f64 {
        let inner = self.inner.borrow();
        inner.nodes.iter().map(|n| n.engine.utilization(a, b)).sum()
    }

    /// Host-core utilization across nodes.
    pub fn host_utilization(&self, a: SimTime, b: SimTime) -> f64 {
        let inner = self.inner.borrow();
        inner
            .nodes
            .iter()
            .map(|n| n.cpu.borrow().utilization_cores(a, b))
            .sum()
    }

    /// Cores burned regardless of load (polling receivers, schedulers).
    pub fn dedicated_cores(&self) -> usize {
        let inner = self.inner.borrow();
        inner.model.dedicated_cores_per_node * inner.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boutique;
    use baselines::SystemKind;
    use membuf::tenant::TenantId;
    use std::cell::Cell;

    fn run_one(kind: SystemKind) -> SimDuration {
        let model = SystemModel::for_kind(kind);
        let bc = BaselineCluster::new(model, 2, 32);
        for f in boutique::all_functions() {
            bc.place(f, boutique::hotspot_placement(f));
        }
        let chain = Rc::new(boutique::home_query(TenantId(1)));
        let mut sim = Sim::new();
        let finish: Rc<Cell<Option<SimTime>>> = Rc::new(Cell::new(None));
        let sink = finish.clone();
        bc.run_request(
            &mut sim,
            chain,
            Rc::new(boutique::exec_cost),
            boutique::PAYLOAD_BYTES,
            Box::new(move |sim| sink.set(Some(sim.now()))),
        );
        sim.run();
        finish.get().expect("request completed") - SimTime::ZERO
    }

    #[test]
    fn all_baseline_systems_complete_a_home_query() {
        for kind in [
            SystemKind::FuyaoF,
            SystemKind::FuyaoK,
            SystemKind::Junction,
            SystemKind::Spright,
            SystemKind::NightCore,
        ] {
            let d = run_one(kind);
            let ms = d.as_millis_f64();
            assert!(
                (0.5..=5.0).contains(&ms),
                "{kind:?} Home Query latency = {ms}ms"
            );
        }
    }

    #[test]
    fn spright_slower_than_fuyao_f_at_light_load() {
        // Kernel inter-node hops dominate SPRIGHT's chain latency.
        let spright = run_one(SystemKind::Spright).as_millis_f64();
        let fuyao = run_one(SystemKind::FuyaoF).as_millis_f64();
        assert!(spright > fuyao, "SPRIGHT {spright}ms vs FUYAO-F {fuyao}ms");
    }

    #[test]
    fn nightcore_collapses_to_one_node() {
        let bc = BaselineCluster::new(SystemModel::for_kind(SystemKind::NightCore), 2, 32);
        assert_eq!(bc.node_count(), 1);
        bc.place(boutique::fns::CART, 1); // clamped
        assert_eq!(
            *bc.inner
                .borrow()
                .placement
                .get(&boutique::fns::CART)
                .unwrap(),
            0
        );
    }

    #[test]
    fn dedicated_cores_reflect_polling_designs() {
        let fuyao = BaselineCluster::new(SystemModel::for_kind(SystemKind::FuyaoF), 2, 32);
        assert_eq!(fuyao.dedicated_cores(), 2);
        let spright = BaselineCluster::new(SystemModel::for_kind(SystemKind::Spright), 2, 32);
        assert_eq!(spright.dedicated_cores(), 0);
    }
}
