//! Ingress horizontal scaling (condensed Fig. 14).
//!
//! Ramps load onto the three ingress designs — NADINO's autoscaled
//! HTTP/TCP-to-RDMA converter, the autoscaled F-stack proxy and the
//! fixed-pool kernel proxy — and prints the per-second RPS, CPU usage and
//! worker-count traces.
//!
//! ```sh
//! cargo run --release --example ingress_scaling
//! ```

use nadino::experiment::fig14;

fn main() {
    println!("ramping one saturating client per step onto each ingress design\n");
    let fig = fig14::run(24);

    for trace in &fig.traces {
        println!(
            "--- {} (completed {}, dropped {}) ---",
            trace.ingress, trace.total_completed, trace.total_dropped
        );
        println!("{:>5} {:>10} {:>9} {:>8}", "t(s)", "RPS", "cpu", "workers");
        for s in &trace.samples {
            println!(
                "{:>5.0} {:>10.0} {:>9.2} {:>8}",
                s.at_secs, s.rps, s.cpu_cores, s.workers
            );
        }
        println!();
    }
    let nadino = fig.trace("NADINO").unwrap().total_completed;
    let kernel = fig.trace("K-Ingress").unwrap().total_completed;
    println!(
        "NADINO completed {:.1}x the requests of K-Ingress (paper: >5x)",
        nadino as f64 / kernel as f64
    );
}
