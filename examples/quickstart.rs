//! Quickstart: build a two-node NADINO cluster, deploy a three-hop
//! function chain and measure its end-to-end performance.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use membuf::tenant::TenantId;
use nadino::cluster::{Cluster, ClusterConfig};
use nadino::workload::ClosedLoop;
use runtime::ChainSpec;
use simcore::{Sim, SimDuration};

fn main() {
    // 1. A deterministic simulated testbed: two worker nodes, each with a
    //    BlueField-2-style DPU running the DNE on one wimpy ARM core.
    let mut sim = Sim::new();
    let mut cluster = Cluster::new(&mut sim, ClusterConfig::default());

    // 2. Provision a tenant: per-node unified memory pools, cross-processor
    //    mmap export to the DPU, pre-established RC connections.
    let tenant = TenantId(1);
    cluster
        .add_tenant(&mut sim, tenant, 1)
        .expect("tenant provisioning");

    // 3. Deploy a chain: fn 1 (node 0) -> fn 2 (node 1) -> fn 1 again.
    //    Each function runs 20us of application logic per invocation.
    let chain = ChainSpec::new("quickstart", tenant, vec![1, 2, 1]);
    cluster.place(1, 0);
    cluster.place(2, 1);

    // 4. Drive it with 8 closed-loop clients for 100 ms of virtual time.
    let stop = sim.now() + SimDuration::from_millis(100);
    let driver = ClosedLoop::new(stop);
    cluster.register_chain(
        &chain,
        |_| SimDuration::from_micros(20),
        driver.completion(),
    );
    driver.start(&mut sim, &cluster, &chain, 8, 512);
    let t0 = sim.now();
    sim.run();
    let t1 = sim.now();

    // 5. Report.
    let lat = driver.latency();
    println!("quickstart: 3-hop chain across 2 nodes, 8 closed-loop clients");
    println!("  completed : {} requests", driver.completed());
    println!("  throughput: {:.0} RPS", driver.rps());
    println!(
        "  latency   : mean {:.1}us  p50 {:.1}us  p99 {:.1}us",
        lat.mean().as_micros_f64(),
        lat.percentile(50.0).as_micros_f64(),
        lat.percentile(99.0).as_micros_f64(),
    );
    println!(
        "  DPU cores : {:.2} busy (both DNEs)",
        cluster.engine_utilization(t0, t1)
    );
    println!(
        "  host cores: {:.2} busy (function execution)",
        cluster.host_utilization(t0, t1)
    );
    let stats = cluster.nodes[0].dne.stats();
    println!(
        "  node0 DNE : {} submitted, {} sent, {} delivered, {} drops",
        stats.submitted, stats.tx_posted, stats.rx_delivered, stats.drops
    );
    assert!(driver.completed() > 0, "the chain must make progress");
}
