//! Threat (3) of NADINO's threat model: RDMA interference via QP
//! exhaustion — and how the DNE's mediated access defeats it.
//!
//! A malicious tenant that could talk to the RNIC directly would create
//! and keep active a large set of RC QPs, thrashing the RNIC's QP cache
//! and degrading every other tenant's latency (the ReDMArk/Harmonic
//! attack the paper cites). Because NADINO's DNE owns all QPs, it bounds
//! the *active* set with the shadow-QP mechanism: idle connections are
//! deactivated and stop occupying cache.
//!
//! Act two moves the attack up a layer: the same rogue floods the cluster
//! ingress with requests instead of QPs. The gateway's weight-aware
//! admission control sheds the flood (`503` + `Retry-After`) while the
//! compliant tenant keeps flowing.
//!
//! ```sh
//! cargo run --example rogue_tenant
//! ```

use std::cell::Cell;
use std::rc::Rc;

use dne::connpool::ConnPool;
use ingress::gateway::{Gateway, GatewayConfig, Reply};
use ingress::rss::FlowId;
use ingress::{AdmissionConfig, ReqCtx, Upstream};
use membuf::pool::{BufferPool, PoolConfig};
use membuf::tenant::TenantId;
use rdma_sim::{Fabric, RdmaCosts, WrId};
use simcore::{Sim, SimDuration, SimTime};

fn victim_echo_rtt(fabric: &Fabric, sim: &mut Sim, setup: &VictimSetup) -> f64 {
    fabric
        .post_recv(setup.rq_b, WrId(0), setup.pool_b.get().unwrap())
        .unwrap();
    let t0 = sim.now();
    let buf = setup.pool_a.get().unwrap();
    fabric.post_send(sim, setup.qp, WrId(1), buf, 0).unwrap();
    sim.run();
    let _ = fabric.poll_cq(setup.cq_b, 8);
    let _ = fabric.poll_cq(setup.cq_a, 8);
    (sim.now() - t0).as_micros_f64()
}

struct VictimSetup {
    qp: rdma_sim::fabric::QpHandle,
    cq_a: rdma_sim::fabric::CqId,
    cq_b: rdma_sim::fabric::CqId,
    rq_b: rdma_sim::fabric::RqId,
    pool_a: BufferPool,
    pool_b: BufferPool,
}

fn main() {
    // A small QP cache makes the effect visible quickly.
    let costs = RdmaCosts {
        qp_cache_entries: 32,
        qp_cache_miss_penalty: SimDuration::from_micros(6),
        ..RdmaCosts::default()
    };
    let fabric = Fabric::new(costs);
    let mut sim = Sim::new();
    let a = fabric.add_node();
    let b = fabric.add_node();

    let victim = TenantId(1);
    let rogue = TenantId(2);
    let mk_pool = |t: u16| {
        let mut cfg = PoolConfig::new(TenantId(t), 0, 4096, 256);
        cfg.segment_size = 256 * 1024;
        BufferPool::new(cfg).unwrap()
    };
    let pool_a = mk_pool(1);
    let pool_b = mk_pool(1);
    fabric.register_pool(a, pool_a.clone()).unwrap();
    fabric.register_pool(b, pool_b.clone()).unwrap();
    let cq_a = fabric.create_cq(a).unwrap();
    let cq_b = fabric.create_cq(b).unwrap();
    let rq_a = fabric.create_rq(a, victim).unwrap();
    let rq_b = fabric.create_rq(b, victim).unwrap();
    let (victim_qp, _) = fabric
        .connect(&mut sim, victim, a, cq_a, rq_a, b, cq_b, rq_b)
        .unwrap();

    // The rogue tenant's connection pool: 256 RC connections.
    let rogue_pool_a = mk_pool(2);
    fabric.register_pool(a, rogue_pool_a).unwrap();
    let rogue_rq_a = fabric.create_rq(a, rogue).unwrap();
    let rogue_rq_b = fabric.create_rq(b, rogue).unwrap();
    let mut conns = ConnPool::new();
    for _ in 0..256 {
        let (h, _) = fabric
            .connect(&mut sim, rogue, a, cq_a, rogue_rq_a, b, cq_b, rogue_rq_b)
            .unwrap();
        conns.add(rogue, b, h, SimTime::ZERO);
    }
    sim.run();
    fabric.set_qp_active(victim_qp, true).unwrap();
    let setup = VictimSetup {
        qp: victim_qp,
        cq_a,
        cq_b,
        rq_b,
        pool_a,
        pool_b,
    };

    println!("QP-exhaustion interference (RNIC cache: 32 active QPs)\n");
    let baseline = victim_echo_rtt(&fabric, &mut sim, &setup);
    println!("victim one-way latency, quiet RNIC     : {baseline:.1} us");

    // Attack: the rogue activates every connection it owns.
    for &qp in conns.conns(rogue, b) {
        fabric.set_qp_active(qp, true).unwrap();
    }
    let under_attack = victim_echo_rtt(&fabric, &mut sim, &setup);
    println!(
        "victim latency, 256 rogue QPs active   : {under_attack:.1} us  ({:.1}x worse)",
        under_attack / baseline
    );

    // Defence: the DNE's periodic full-sweep reaper deactivates idle
    // connections — even ones activated behind the pool's back — so the
    // rogue cannot keep QPs charged against the cache without traffic.
    let deactivated = conns.reap_all_idle(&fabric, sim.now());
    let protected = victim_echo_rtt(&fabric, &mut sim, &setup);
    println!(
        "victim latency after DNE reaping       : {protected:.1} us  ({deactivated} rogue QPs deactivated)"
    );
    assert!(under_attack > baseline * 1.5, "attack must be visible");
    assert!(protected < baseline * 1.2, "defence must restore latency");
    println!("\nthe DNE's mediated QP access bounds the damage a rogue tenant can do.");

    println!("\nrequest-flood interference (weight-aware admission control)\n");
    admission_defence();
}

/// Act two: the rogue floods the ingress with 8x the compliant tenant's
/// request rate on a third of the weight. The gateway's CoDel-style
/// admission controller scales each tenant's delay target and shedding
/// pressure by its weight share over its arrival share, so the flood is
/// shed back at the rogue while the compliant tenant rides out the storm.
fn admission_defence() {
    let victim = 1u16;
    let rogue = 2u16;
    let gw = Gateway::new(GatewayConfig {
        kind: ingress::stack::GatewayKind::KIngress,
        max_backlog: SimDuration::from_secs(10),
        admission: Some(AdmissionConfig {
            target: SimDuration::from_micros(300),
            interval: SimDuration::from_millis(1),
            retry_after_secs: 2,
        }),
        ..GatewayConfig::default()
    });
    gw.register_tenant(victim, 3);
    gw.register_tenant(rogue, 1);
    let mut sim = Sim::new();
    let upstream: Upstream = Rc::new(|sim: &mut Sim, _ctx: ReqCtx, reply: Reply| {
        sim.schedule_after(SimDuration::from_micros(5), move |sim| reply(sim, Ok(64)));
    });
    let victim_ok = Rc::new(Cell::new(0u64));
    // 40 bursts over 20ms: each burst is 8 rogue requests + 1 compliant.
    for burst in 0..40u32 {
        let at = SimTime::ZERO + SimDuration::from_micros(500 * burst as u64);
        let gw2 = gw.clone();
        let up = upstream.clone();
        let vk = victim_ok.clone();
        sim.schedule_at(at, move |sim| {
            for k in 0..8u32 {
                gw2.submit_tenant(
                    sim,
                    rogue,
                    FlowId::from_client(100 + burst * 8 + k, 0),
                    64,
                    up.clone(),
                    Box::new(|_, _| {}),
                );
            }
            let vk2 = vk.clone();
            gw2.submit_tenant(
                sim,
                victim,
                FlowId::from_client(burst, 0),
                64,
                up.clone(),
                Box::new(move |_sim, r| {
                    if r.is_ok() {
                        vk2.set(vk2.get() + 1);
                    }
                }),
            );
        });
    }
    sim.run();
    for (t, name) in [(victim, "victim (w=3)"), (rogue, "rogue  (w=1)")] {
        let s = gw.tenant_stats(t);
        println!(
            "{name}: {} submitted, {} completed, {} shed with Retry-After",
            s.accepted + s.shed + s.dropped,
            s.completed,
            s.shed
        );
    }
    let vs = gw.tenant_stats(victim);
    let rs = gw.tenant_stats(rogue);
    assert!(rs.shed > 0, "the flood must be shed");
    assert!(
        rs.shed > vs.shed,
        "shedding must land on the rogue ({} vs {})",
        rs.shed,
        vs.shed
    );
    assert!(
        victim_ok.get() >= 30,
        "the compliant tenant must ride out the flood ({}/40 completed)",
        victim_ok.get()
    );
    println!("\nthe gateway sheds the flood back at the rogue; the victim keeps its share.");
}
