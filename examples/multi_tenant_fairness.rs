//! Multi-tenant RDMA fairness: DWRR vs. FCFS (condensed Fig. 15).
//!
//! Three tenants with weights 6:1:2 contend for a DNE pinned at ~110 K RPS
//! on one DPU core. With DWRR the shares track the weights; with FCFS the
//! heavy tenant is starved by later arrivals.
//!
//! ```sh
//! cargo run --release --example multi_tenant_fairness
//! ```

use nadino::experiment::fig15;

fn main() {
    let scale = 0.05; // compress the paper's 240 s timeline to 12 s
    println!("three tenants, weights 6:1:2, DNE ceiling ~110K RPS");
    println!("timeline: T1 always on; T2 joins early; T3 bursts mid-run\n");
    let fig = fig15::run(scale);

    for run in &fig.runs {
        println!("--- {} scheduler ---", run.scheduler);
        // Report shares in the window where all three tenants are active.
        let (a, b) = (5.0, 7.0);
        let t1 = run.mean_rps(1, a, b);
        let t2 = run.mean_rps(2, a, b);
        let t3 = run.mean_rps(3, a, b);
        println!("shares with all three tenants active:");
        println!("  tenant 1 (w=6): {t1:>9.0} RPS");
        println!("  tenant 2 (w=1): {t2:>9.0} RPS");
        println!("  tenant 3 (w=2): {t3:>9.0} RPS");
        println!("  aggregate     : {:>9.0} RPS", t1 + t2 + t3);
        if t2 > 0.0 {
            println!("  ratios        : {:.1} : 1 : {:.1}", t1 / t2, t3 / t2);
        }
        println!();
    }
    println!("paper reference (DWRR): 65K / 11K / 22K - exactly 6 : 1 : 2");
}
