//! DAG-style dataflow: the Online Boutique home page as a fan-out tree.
//!
//! NADINO's unified I/O library carries more than linear chains: §3.5
//! layers RPC semantics and DAG dataflows on the same zero-copy
//! primitives. Here the frontend invokes five services *in parallel*
//! (recommendation itself consults the product catalog), joins on all the
//! responses and answers the client — and we compare the latency against
//! the sequential chain visiting the same services.
//!
//! ```sh
//! cargo run --example dag_fanout
//! ```

use std::cell::Cell;
use std::rc::Rc;

use membuf::tenant::TenantId;
use nadino::boutique::{self, fns};
use nadino::cluster::{Cluster, ClusterConfig};
use runtime::DagSpec;
use simcore::{Sim, SimTime};

fn place_all(cluster: &Cluster) {
    for f in boutique::all_functions() {
        cluster.place(f, boutique::hotspot_placement(f));
    }
}

fn main() {
    let tenant = TenantId(1);

    // Fan-out home page: frontend -> {currency, catalog, cart, rec, ad},
    // recommendation -> catalog.
    let dag = DagSpec::new(
        "home (fan-out)",
        tenant,
        fns::FRONTEND,
        &[
            (
                fns::FRONTEND,
                &[fns::CURRENCY, fns::CART, fns::RECOMMENDATION, fns::AD][..],
            ),
            (fns::RECOMMENDATION, &[fns::PRODUCT_CATALOG][..]),
        ],
    );
    let dag_us = {
        let mut sim = Sim::new();
        let mut cluster = Cluster::new(&mut sim, ClusterConfig::default());
        cluster.add_tenant(&mut sim, tenant, 1).unwrap();
        place_all(&cluster);
        let done: Rc<Cell<Option<SimTime>>> = Rc::new(Cell::new(None));
        let sink = done.clone();
        cluster.register_dag(
            &dag,
            boutique::exec_cost,
            Rc::new(move |sim, _| {
                sink.set(Some(sim.now()));
            }),
        );
        let t0 = sim.now();
        assert!(cluster.inject_dag(&mut sim, &dag, 1));
        sim.run();
        (done.get().expect("completed") - t0).as_micros_f64()
    };

    // The same services visited sequentially (the classic chain).
    let chain_us = {
        let mut sim = Sim::new();
        let mut cluster = Cluster::new(&mut sim, ClusterConfig::default());
        cluster.add_tenant(&mut sim, tenant, 1).unwrap();
        place_all(&cluster);
        let chain = boutique::home_query(tenant);
        let done: Rc<Cell<Option<SimTime>>> = Rc::new(Cell::new(None));
        let sink = done.clone();
        cluster.register_chain(
            &chain,
            boutique::exec_cost,
            Rc::new(move |sim, _| {
                sink.set(Some(sim.now()));
            }),
        );
        let t0 = sim.now();
        assert!(cluster.inject(&mut sim, &chain, 1, boutique::PAYLOAD_BYTES));
        sim.run();
        (done.get().expect("completed") - t0).as_micros_f64()
    };

    println!("home page over NADINO's data plane:");
    println!(
        "  sequential chain : {chain_us:>8.1} us  ({} exchanges)",
        12
    );
    println!(
        "  DAG fan-out      : {dag_us:>8.1} us  ({} messages, overlapped)",
        dag.messages_per_request()
    );
    println!("  speedup          : {:>8.2}x", chain_us / dag_us);
    assert!(dag_us < chain_us);
}
