//! Replaying a production-shaped invocation trace.
//!
//! Generates a deterministic synthetic trace — Zipf-skewed popularity over
//! four Online Boutique chains with diurnal rate modulation — and replays
//! it against a NADINO cluster, reporting per-chain latency.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use membuf::tenant::TenantId;
use nadino::boutique;
use nadino::cluster::{Cluster, ClusterConfig};
use nadino::trace::{generate, replay, TraceConfig};
use simcore::{Sim, SimDuration};

fn main() {
    let tenant = TenantId(1);
    let mut sim = Sim::new();
    let mut cluster = Cluster::new(&mut sim, ClusterConfig::default());
    cluster.add_tenant(&mut sim, tenant, 1).unwrap();
    for f in boutique::all_functions() {
        cluster.place(f, boutique::hotspot_placement(f));
    }

    let chains = vec![
        boutique::home_query(tenant),
        boutique::product_query(tenant),
        boutique::add_to_cart(tenant),
        boutique::serve_ads(tenant),
    ];
    let cfg = TraceConfig {
        mean_rps: 4_000.0,
        duration: SimDuration::from_secs(1),
        chains: chains.len(),
        zipf_s: 1.0,
        diurnal: true,
        seed: 2026,
    };
    let trace = generate(&cfg);
    println!(
        "replaying {} invocations over {} chains (Zipf s={}, diurnal)",
        trace.len(),
        chains.len(),
        cfg.zipf_s
    );

    let outcomes = replay(
        &mut sim,
        &cluster,
        &chains,
        boutique::exec_cost,
        &trace,
        boutique::PAYLOAD_BYTES,
    );
    println!(
        "{:<16} {:>8} {:>10} {:>10}",
        "chain", "invoked", "mean_us", "p99_us"
    );
    for o in &outcomes {
        println!(
            "{:<16} {:>8} {:>10.0} {:>10.0}",
            o.chain, o.invocations, o.mean_us, o.p99_us
        );
        assert_eq!(o.completed, o.invocations, "every invocation completes");
    }
    let total: u64 = outcomes.iter().map(|o| o.invocations).sum();
    assert_eq!(total as usize, trace.len());
    println!("\nall {total} invocations completed; popularity follows the Zipf skew.");
}
