//! Brownout: graceful degradation instead of collapse.
//!
//! A 3-node cluster behind the NADINO gateway with per-request deadlines
//! and adaptive per-tenant admission control. A bronze tenant ramps its
//! offered load well past its weight share while a gold tenant holds a
//! steady rate — then a node crashes mid-run. The health monitor turns the
//! delivery failures into a failover onto the standby node and feeds the
//! lost capacity back into admission control, so the gateway sheds the
//! overload (503 + `Retry-After`, bronze first) instead of letting queues
//! and tail latencies grow without bound.
//!
//! ```sh
//! cargo run --example brownout
//! ```

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use ingress::gateway::Reply;
use ingress::rss::FlowId;
use ingress::{AdmissionConfig, DeliveryFailed, Gateway, GatewayConfig};
use membuf::tenant::TenantId;
use nadino::cluster::{Cluster, ClusterConfig};
use nadino::health::HealthConfig;
use rdma_sim::FaultPlane;
use runtime::ChainSpec;
use simcore::{Sim, SimDuration, SimTime};

fn main() {
    let mut sim = Sim::new();
    let mut cluster = Cluster::new(
        &mut sim,
        ClusterConfig {
            workers: 3,
            ..ClusterConfig::default()
        },
    );
    let gold = TenantId(1);
    let bronze = TenantId(2);
    cluster.add_tenant(&mut sim, gold, 3).unwrap();
    cluster.add_tenant(&mut sim, bronze, 1).unwrap();
    // Both chains hop through node 1; node 2 is the standby for every hop.
    cluster.place_with_backup(1, 0, 2);
    cluster.place_with_backup(2, 1, 2);
    cluster.place_with_backup(3, 0, 2);
    cluster.place_with_backup(4, 1, 2);
    let cluster = Rc::new(cluster);

    let pending: Rc<RefCell<HashMap<u64, Reply>>> = Rc::new(RefCell::new(HashMap::new()));
    let gold_chain = ChainSpec::new("gold", gold, vec![1, 2, 1]);
    let bronze_chain = ChainSpec::new("bronze", bronze, vec![3, 4, 3]);
    let on_complete = {
        let pending = pending.clone();
        Rc::new(move |sim: &mut Sim, req: u64| {
            if let Some(reply) = pending.borrow_mut().remove(&req) {
                reply(sim, Ok(64));
            }
        })
    };
    cluster.register_chain(
        &gold_chain,
        |_| SimDuration::from_micros(5),
        on_complete.clone(),
    );
    cluster.register_chain(&bronze_chain, |_| SimDuration::from_micros(5), on_complete);
    {
        let pending = pending.clone();
        cluster.set_delivery_failure_handler(Rc::new(move |sim, failure| {
            if let Some(reply) = pending.borrow_mut().remove(&failure.req_id) {
                reply(sim, Err(DeliveryFailed));
            }
        }));
    }

    // The crash: node 1 goes dark for 2ms a third of the way in.
    cluster.fabric.install_fault_plane(FaultPlane::new(0xB120));
    let t0 = sim.now();
    let crash_from = t0 + SimDuration::from_millis(10);
    cluster.fabric.schedule_node_outage(
        cluster.nodes[1].id,
        crash_from,
        crash_from + SimDuration::from_millis(2),
    );
    let monitor = cluster.enable_health_monitor(
        &mut sim,
        HealthConfig::default(),
        t0 + SimDuration::from_millis(45),
    );

    let gateway = Gateway::new(GatewayConfig {
        deadline: Some(SimDuration::from_millis(3)),
        admission: Some(AdmissionConfig {
            target: SimDuration::from_micros(300),
            interval: SimDuration::from_millis(1),
            retry_after_secs: 1,
        }),
        max_backlog: SimDuration::from_secs(10),
        ..GatewayConfig::default()
    });
    gateway.register_tenant(gold.0, 3);
    gateway.register_tenant(bronze.0, 1);
    {
        let gw = gateway.clone();
        monitor.set_capacity_handler(Rc::new(move |_sim, f| gw.set_capacity_factor(f)));
    }

    let upstream_for = |chain: ChainSpec| -> ingress::Upstream {
        let cluster = cluster.clone();
        let pending = pending.clone();
        Rc::new(move |sim: &mut Sim, ctx: ingress::ReqCtx, reply: Reply| {
            let injected = cluster.inject_with_deadline(
                sim,
                &chain,
                ctx.req_id,
                256,
                SimTime::from_nanos(ctx.deadline_ns),
            );
            if injected {
                pending.borrow_mut().insert(ctx.req_id, reply);
            } else {
                reply(sim, Err(DeliveryFailed));
            }
        })
    };
    let gold_up = upstream_for(gold_chain);
    let bronze_up = upstream_for(bronze_chain);

    // 30ms of open-loop load in 50us ticks. Gold holds 1 request per tick;
    // bronze ramps from its fair share to a 4x flood and back.
    let resolved = Rc::new(Cell::new(0u64));
    let mut issued = 0u64;
    let mut flow = 0u32;
    for tick in 0..600u32 {
        let ms = tick as u64 * 50 / 1000;
        let bronze_rate = match ms {
            0..=9 => 1,
            10..=19 => 4,
            _ => 2,
        };
        for (tenant, rate, up) in [(gold.0, 1, &gold_up), (bronze.0, bronze_rate, &bronze_up)] {
            for _ in 0..rate {
                issued += 1;
                flow += 1;
                let resolved = resolved.clone();
                gateway.submit_tenant(
                    &mut sim,
                    tenant,
                    FlowId::from_client(flow, 0),
                    64,
                    up.clone(),
                    Box::new(move |_sim, _r| resolved.set(resolved.get() + 1)),
                );
            }
        }
        sim.run_for(SimDuration::from_micros(50));
    }
    sim.run();

    println!("brownout: 3-node cluster, node 1 crashes at 10ms for 2ms\n");
    println!("health transitions:");
    for e in monitor.events() {
        println!(
            "  {:>7.2}ms  node {}: {:?} -> {:?}",
            (e.at - t0).as_micros_f64() / 1000.0,
            e.node.0,
            e.from,
            e.to
        );
    }
    println!("\nper-tenant gateway accounting:");
    println!(
        "  {:<8} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7}",
        "tenant", "accepted", "completed", "shed", "expired", "failed", "dropped"
    );
    for (t, name) in [(gold.0, "gold"), (bronze.0, "bronze")] {
        let s = gateway.tenant_stats(t);
        println!(
            "  {:<8} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7}",
            name, s.accepted, s.completed, s.shed, s.expired, s.failed, s.dropped
        );
    }

    assert_eq!(resolved.get(), issued, "no request may hang");
    assert!(pending.borrow().is_empty(), "no reply may leak");
    let g = gateway.tenant_stats(gold.0);
    let b = gateway.tenant_stats(bronze.0);
    assert!(
        b.shed > g.shed,
        "bronze (flooding, weight 1) must shed before gold (weight 3)"
    );
    assert!(
        monitor
            .events()
            .iter()
            .any(|e| e.to == nadino::NodeState::Down),
        "the crash must drive node 1 Down"
    );
    assert!(
        monitor
            .events()
            .iter()
            .any(|e| e.from == nadino::NodeState::Draining && e.to == nadino::NodeState::Healthy),
        "node 1 must drain back to Healthy after the outage"
    );
    println!(
        "\nthe overload and the crash cost availability ({} sheds, {} failures), never liveness.",
        g.shed + b.shed,
        g.failed + b.failed
    );
}
