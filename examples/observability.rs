//! End-to-end observability: trace Online Boutique requests through every
//! pipeline stage and sample per-tenant engine metrics while they run.
//!
//! Two tenants share a two-node cluster: tenant 1 (weight 3) serves the
//! Home Query chain, tenant 2 (weight 1) serves ads. A cluster-wide
//! [`obs::Tracer`] records each request's stage intervals — gateway-free
//! here, so the spans run SK_MSG/Comch submit → DWRR queue → DNE TX →
//! connection pick → fabric flight → RX completion → RBR recovery → Comch
//! delivery → function execution — and a periodic sampler builds labelled
//! time series (TX queue depth, DWRR deficit, shadow-QP hit rate).
//!
//! Outputs:
//!   results/observability_trace.json    Perfetto / chrome://tracing JSON
//!   results/observability_metrics.json  metrics snapshot (JSON twin)
//!
//! ```sh
//! cargo run --release --example observability
//! ```

use std::rc::Rc;

use membuf::tenant::TenantId;
use nadino::boutique;
use nadino::cluster::{Cluster, ClusterConfig};
use nadino::report::render_stage_breakdown;
use nadino::workload::ClosedLoop;
use obs::{chrome_trace, MetricsRegistry, ToJson, Tracer};
use runtime::ChainSpec;
use simcore::{Sim, SimDuration};

fn main() {
    let mut sim = Sim::new();
    let mut cluster = Cluster::new(&mut sim, ClusterConfig::default());
    let t1 = TenantId(1);
    let t2 = TenantId(2);
    cluster.add_tenant(&mut sim, t1, 3).expect("tenant 1");
    cluster.add_tenant(&mut sim, t2, 1).expect("tenant 2");

    // Tenant 1 runs Home Query on the paper's hotspot placement; tenant 2
    // runs Serve Ads on its own function instances (ids offset by 100),
    // co-placed with the originals.
    let home = boutique::home_query(t1);
    for f in home.functions() {
        cluster.place(f, boutique::hotspot_placement(f));
    }
    let ads_base = boutique::serve_ads(t2);
    let ads = ChainSpec::new(
        &ads_base.name,
        t2,
        ads_base.hops.iter().map(|&f| f + 100).collect(),
    );
    for f in ads_base.functions() {
        cluster.place(f + 100, boutique::hotspot_placement(f));
    }

    // Cluster-wide tracing: one tracer sees a request's spans on both
    // nodes' engines, I/O libraries, and function containers.
    let tracer = Tracer::enabled();
    cluster.set_tracer(&tracer);

    let t0 = sim.now();
    let stop = t0 + SimDuration::from_millis(50);
    let home_driver = ClosedLoop::new(stop);
    cluster.register_chain(&home, boutique::exec_cost, home_driver.completion());
    let ads_driver = ClosedLoop::new(stop);
    cluster.register_chain(
        &ads,
        |f| boutique::exec_cost(f - 100),
        ads_driver.completion(),
    );
    home_driver.start(&mut sim, &cluster, &home, 8, 256);
    ads_driver.start(&mut sim, &cluster, &ads, 4, 256);

    // Periodic metrics sampling while the workload runs.
    let cluster = Rc::new(cluster);
    let reg = Rc::new(MetricsRegistry::new());
    cluster.start_obs_sampler(&mut sim, Rc::clone(&reg), SimDuration::from_millis(1), stop);
    sim.run();

    println!(
        "completed {} Home Query + {} Serve Ads requests in 50 virtual ms\n",
        home_driver.completed(),
        ads_driver.completed()
    );

    // 1. Perfetto trace: load results/observability_trace.json in
    //    https://ui.perfetto.dev or chrome://tracing.
    let records = tracer.records();
    let trace_path = std::path::Path::new("results/observability_trace.json");
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write(trace_path, chrome_trace(&records).to_string_pretty()).expect("write trace");
    println!(
        "wrote {} ({} spans, {} dropped)",
        trace_path.display(),
        records.len(),
        tracer.dropped()
    );

    // 2. Metrics snapshot: plain text here, JSON twin on disk.
    let snap = reg.snapshot();
    let metrics_path = std::path::Path::new("results/observability_metrics.json");
    std::fs::write(metrics_path, snap.to_json().to_string_pretty()).expect("write metrics");
    println!("wrote {}\n", metrics_path.display());

    // 3. Top-3 slowest pipeline stages by total attributed time.
    let totals = tracer.stage_totals();
    println!("top-3 slowest stages (by total time across all requests):");
    for t in totals.iter().take(3) {
        println!(
            "  {:14} {:>7} spans  total {:>8.1}ms  mean {:>7.2}us",
            t.stage.name(),
            t.spans,
            t.total_ns as f64 / 1e6,
            t.mean_us()
        );
    }

    // 4. Per-request stage coverage: every traced request crosses at least
    //    six distinct pipeline stages.
    let sample_req = records[0].req_id;
    let stages = tracer.stages_of(sample_req);
    println!(
        "\nrequest {sample_req} crossed {} distinct stages: {:?}",
        stages.len(),
        stages.iter().map(|s| s.name()).collect::<Vec<_>>()
    );

    // 5. The DNE's own per-stage latency accounting (always on, no tracer
    //    needed) rendered as the report table.
    for (idx, node) in cluster.nodes.iter().enumerate() {
        let stats = node.dne.stats();
        println!(
            "\n{}",
            render_stage_breakdown(
                &format!("DNE node {idx} stage latencies"),
                &[
                    ("tx_queue_wait", stats.tx_queue_wait),
                    ("sched_delay", stats.sched_delay),
                    ("post_to_completion", stats.post_to_completion),
                ],
            )
        );
    }

    // 6. Per-tenant series from the sampler (printed as the text
    //    exposition; the JSON twin has the full points).
    println!("metrics exposition (excerpt):");
    for line in snap.to_text().lines().filter(|l| {
        l.starts_with("dne_tx_queue_depth")
            || l.starts_with("dne_dwrr_deficit")
            || l.starts_with("shadow_qp_hit_rate")
            || l.starts_with("rbr_")
    }) {
        println!("  {line}");
    }

    // 7. Flight recorder: a seeded chaos run (5% wire loss plus a 1ms
    //    node-1 outage) exhausts some retry budgets; each typed
    //    DeliveryFailure freezes the recent-trace ring into a
    //    self-contained dump. The dump carries only virtual timestamps,
    //    so the same seed replays to a byte-identical file.
    flight_recorder_demo();
}

fn flight_recorder_demo() {
    use rdma_sim::FaultPlane;

    let mut sim = Sim::new();
    let mut cluster = Cluster::new(&mut sim, ClusterConfig::default());
    let tracer = Tracer::enabled();
    cluster.set_tracer(&tracer);
    cluster.enable_trace_pipeline(obs::PipelineConfig {
        tail_k: 8,
        flight_cap: 32,
        burn: Some(obs::BurnConfig {
            target_ns: 200_000,
            budget: 0.05,
            fast_window: SimDuration::from_millis(1),
            slow_window: SimDuration::from_millis(8),
            burn_threshold: 2.0,
            min_events: 4,
        }),
    });

    let tenant = TenantId(1);
    cluster.add_tenant(&mut sim, tenant, 1).expect("tenant");
    let chain = ChainSpec::new("echo", tenant, vec![1, 2, 1]);
    cluster.place(1, 0);
    cluster.place(2, 1);
    cluster.register_chain(&chain, |_| SimDuration::from_micros(5), Rc::new(|_, _| {}));
    cluster.set_delivery_failure_handler(Rc::new(|_, failure| {
        println!(
            "  delivery failure: req {} ({:?})",
            failure.req_id, failure.reason
        );
    }));

    let mut fp = FaultPlane::new(0xC4A0);
    fp.set_default_loss(0.05);
    fp.set_default_corruption(0.01);
    cluster.fabric.install_fault_plane(fp);
    let crash_from = sim.now() + SimDuration::from_millis(3);
    cluster.fabric.schedule_node_outage(
        cluster.nodes[1].id,
        crash_from,
        crash_from + SimDuration::from_millis(1),
    );

    println!("\nseeded chaos run (seed 0xC4A0, node-1 outage at +3ms):");
    for i in 0..200 {
        cluster.inject(&mut sim, &chain, 10_000 + i, 256);
        sim.run_for(SimDuration::from_micros(50));
    }
    sim.run();

    let dump = cluster
        .dump_flight_recorder(&sim)
        .expect("pipeline enabled");
    let dump_path = std::path::Path::new("results/flight_recorder.json");
    std::fs::write(dump_path, dump.to_string_pretty()).expect("write dump");
    cluster.with_trace_pipeline(|p| {
        println!(
            "flight recorder: {} dumps taken, ring holds {} traces ({} evicted)",
            p.dump_count(),
            p.flight().len(),
            p.flight().evicted()
        );
        println!(
            "tail sampler: kept {} traces ({} errors), discarded {}",
            p.tail().kept().len(),
            p.tail().errors().len(),
            p.tail().discarded()
        );
        let paths: Vec<_> = p
            .tail()
            .kept()
            .into_iter()
            .filter_map(|t| obs::critical_path::analyze(&t.spans))
            .collect();
        println!(
            "{}",
            obs::critical_path::render_breakdown(&obs::critical_path::tenant_breakdown(&paths))
        );
    });
    println!("wrote {}", dump_path.display());
}
