//! The Online Boutique workload on NADINO vs. the published baselines.
//!
//! Runs the paper's Home Query chain (13 hops over 10 microservices,
//! hotspot placement across two worker nodes) on NADINO (DNE), NADINO
//! (CNE) and the five comparison systems at 20 and 80 closed-loop
//! clients — a condensed Fig. 16 / Table 2.
//!
//! ```sh
//! cargo run --release --example online_boutique
//! ```

use baselines::SystemKind;
use nadino::experiment::fig16;

fn main() {
    println!("Online Boutique, Home Query chain (condensed Fig. 16 / Table 2)");
    println!("running 7 systems x 2 client counts...\n");
    let fig = fig16::run_filtered(150, &SystemKind::all(), &[20, 80]);

    println!("{}", fig.render());
    println!("{}", fig.render_table2());

    // Summarize the headline comparisons.
    let dne = fig.get("NADINO (DNE)", "Home Query", 80).unwrap();
    let report = |name: &str| {
        if let Some(r) = fig.get(name, "Home Query", 80) {
            println!(
                "  NADINO (DNE) vs {:13} {:.2}x RPS  ({:.0} vs {:.0})",
                name,
                dne.rps / r.rps,
                dne.rps,
                r.rps
            );
        }
    };
    println!("headline ratios at 80 clients (paper: CNE 1.3-1.8x, FUYAO-F 2.1-4.1x,");
    println!("SPRIGHT 2.4-4.1x, NightCore 5.1-20.9x, Junction >1.9x):");
    for name in [
        "NADINO (CNE)",
        "FUYAO-F",
        "FUYAO-K",
        "Junction",
        "SPRIGHT",
        "NightCore",
    ] {
        report(name);
    }
    println!(
        "\nNADINO (DNE) used {:.2} wimpy DPU cores for its whole data plane.",
        dne.engine_cores
    );
}
