//! Workspace umbrella crate for the NADINO reproduction.
//!
//! This crate re-exports every sub-crate so that examples and integration
//! tests at the repository root can reach the whole system through a single
//! dependency. Library users should depend on the individual crates (most
//! commonly [`nadino`]) directly.

pub use baselines;
pub use dne;
pub use dpu_sim;
pub use ingress;
pub use membuf;
pub use nadino;
pub use rdma_sim;
pub use runtime;
pub use simcore;
